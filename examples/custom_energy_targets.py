"""Exploring custom ES_x / PL_x tradeoffs (paper §5).

Shows how a performance engineer would pick a per-kernel energy goal:
sweep the whole ES/PL dial for one kernel, inspect the tradeoff ladder,
then submit the kernel live with a predictor (no precompiled plan) at the
chosen target.

Run:  python examples/custom_energy_targets.py
"""

import numpy as np

from repro import (
    EnergyTarget,
    NVIDIA_V100,
    SimulatedGPU,
    SynergyQueue,
    set_default_device,
)
from repro.apps import get_benchmark
from repro.core.models import EnergyModelBundle
from repro.core.predictor import FrequencyPredictor
from repro.experiments.report import format_table
from repro.experiments.sweep import sweep_kernel
from repro.experiments.training import microbench_training_set


def main() -> None:
    kernel = get_benchmark("black_scholes").kernel
    sweep = sweep_kernel(NVIDIA_V100, kernel)

    # The full ES/PL dial, resolved on measured data.
    rows = []
    for family in ("ES", "PL"):
        for percent in (10, 25, 50, 75, 90, 100):
            target = EnergyTarget.parse(f"{family}_{percent}")
            idx = sweep.resolve(target)
            rows.append(
                [
                    target.name,
                    f"{sweep.freqs_mhz[idx]:.0f}",
                    f"{1 - sweep.normalized_energy[idx]:+.1%}",
                    f"{sweep.speedup[idx]:.3f}x",
                ]
            )
    print(
        format_table(
            ["target", "core MHz", "energy saving", "speedup"],
            rows,
            title="Black-Scholes: the ES/PL tradeoff ladder (measured)",
        )
    )

    # Live prediction path: no compiled plan, the queue asks the models.
    print("\ntraining models for live target resolution ...")
    bundle = EnergyModelBundle().fit(
        microbench_training_set(NVIDIA_V100, freq_stride=8, random_count=16)
    )
    predictor = FrequencyPredictor(bundle, NVIDIA_V100)

    gpu = SimulatedGPU(NVIDIA_V100)
    set_default_device(gpu)
    queue = SynergyQueue(predictor=predictor)

    chosen = EnergyTarget.parse("ES_50")
    event = queue.submit(
        chosen, lambda h: h.parallel_for(kernel.work_items, kernel)
    )
    realized_idx = int(
        np.argmin(np.abs(sweep.freqs_mhz - event.record.core_mhz))
    )
    print(f"\nsubmitted with {chosen.name}: executed at "
          f"{event.record.core_mhz} MHz")
    print(f"realized (measured-sweep) energy saving: "
          f"{1 - sweep.normalized_energy[realized_idx]:+.1%} at "
          f"{sweep.speedup[realized_idx]:.3f}x speed")


if __name__ == "__main__":
    main()
