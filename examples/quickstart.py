"""Quickstart: the SYnergy API on one simulated V100.

Walks the paper's Listings 1-4:

1. energy profiling of a kernel and of the whole device,
2. a queue constructed with explicit (memory, core) clocks,
3. a kernel submitted with an energy target (MIN_EDP), resolved by models
   trained on micro-benchmarks,
4. mixing queues and per-submission clock overrides.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    InstructionMix,
    KernelIR,
    MIN_EDP,
    NVIDIA_V100,
    SimulatedGPU,
    SynergyCompiler,
    SynergyQueue,
    gpu_selector_v,
    set_default_device,
)
from repro.core.models import EnergyModelBundle
from repro.experiments.training import microbench_training_set
from repro.sycl import Accessor, Buffer, read_only, write_only


def main() -> None:
    gpu = SimulatedGPU(NVIDIA_V100)
    set_default_device(gpu)

    # --- Listing 1: energy profiling -----------------------------------
    q = SynergyQueue(gpu_selector_v)
    n = 1 << 24
    x = Buffer(np.linspace(0.0, 1.0, 1024, dtype=np.float32), name="x")
    z = Buffer(shape=1024, name="z")
    alpha = 2.5

    def saxpy_host(views) -> None:
        views["z"][:] = alpha * views["x"]

    saxpy = KernelIR(
        "saxpy",
        InstructionMix(float_add=1, float_mul=1, gl_access=3),
        work_items=n,
        host_fn=saxpy_host,
    )
    event = q.submit(
        lambda h: (
            Accessor(x, h, read_only),
            Accessor(z, h, write_only),
            h.parallel_for(n, saxpy),
        )[-1]
    )
    event.wait_and_throw()
    kernel_energy = q.kernel_energy_consumption(event)
    device_energy = q.device_energy_consumption()
    print(f"[listing 1] saxpy ran {event.duration_s * 1e3:.3f} ms "
          f"at {event.record.core_mhz} MHz")
    print(f"[listing 1] kernel energy (sensor): {kernel_energy:.4f} J, "
          f"device energy: {device_energy:.4f} J")
    print(f"[listing 1] host result z[42] = {z.data[42]:.4f} "
          f"(expected {alpha * x.data[42]:.4f})")

    # Device-only variant for the later listings (no host buffers bound).
    saxpy_device = KernelIR(
        "saxpy_device",
        InstructionMix(float_add=1, float_mul=1, gl_access=3),
        work_items=n,
    )

    # --- Listing 2: explicit frequency configuration -------------------
    low_core = NVIDIA_V100.core_freqs_mhz[60]
    q_low = SynergyQueue(877, low_core, gpu_selector_v)
    e_low = q_low.submit(lambda h: h.parallel_for(n, saxpy_device))
    print(f"\n[listing 2] queue pinned to {low_core} MHz -> kernel ran at "
          f"{e_low.record.core_mhz} MHz, drawing {e_low.record.avg_power_w:.1f} W "
          f"(vs {event.record.avg_power_w:.1f} W at default)")

    # --- Listing 3: per-kernel energy target ----------------------------
    print("\n[listing 3] training energy models on micro-benchmarks ...")
    training = microbench_training_set(NVIDIA_V100, freq_stride=12, random_count=8)
    bundle = EnergyModelBundle().fit(training)
    app = SynergyCompiler(bundle, NVIDIA_V100).compile([saxpy_device], [MIN_EDP])
    mem, core = app.plan.lookup("saxpy_device", MIN_EDP)
    q_target = SynergyQueue(gpu_selector_v, plan=app.plan)
    e_target = q_target.submit(MIN_EDP, lambda h: h.parallel_for(n, saxpy_device))
    print(f"[listing 3] MIN_EDP predicted clock: {core} MHz; kernel executed "
          f"at {e_target.record.core_mhz} MHz, energy "
          f"{q_target.kernel_energy_consumption(e_target, true_value=True):.4f} J")

    # --- Listing 4: mixing queues and per-submission overrides ----------
    q_default = SynergyQueue(gpu_selector_v)
    e_override = q_default.submit(
        877, NVIDIA_V100.max_core_mhz, lambda h: h.parallel_for(n, saxpy_device)
    )
    print(f"\n[listing 4] per-submission override ran at "
          f"{e_override.record.core_mhz} MHz (table max "
          f"{NVIDIA_V100.max_core_mhz} MHz)")
    q_default.reset_frequency()
    print(f"[listing 4] clocks restored to {gpu.core_mhz} MHz")


if __name__ == "__main__":
    main()
