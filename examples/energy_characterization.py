"""Per-kernel energy characterization across vendors (paper §8.2).

Sweeps a contrasting set of SYCL benchmarks over the full frequency tables
of the NVIDIA V100 and the AMD MI100 and prints, per kernel, the Pareto
front of the speedup/normalized-energy plane along with each energy
target's selection — a text rendition of Figs. 2, 7 and 8.

Run:  python examples/energy_characterization.py
"""

from repro.apps import get_benchmark
from repro.experiments.characterization import characterize
from repro.experiments.report import format_table
from repro.hw.specs import AMD_MI100, NVIDIA_V100
from repro.metrics.targets import ES_50, MIN_ED2P, MIN_EDP, MIN_ENERGY, PL_50

BENCHMARKS = ("gemm", "sobel3", "median", "lin_reg_coeff", "black_scholes")
TARGETS = (MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_50, PL_50)


def characterize_device(spec) -> None:
    print(f"\n=== {spec.name}: {len(spec.core_freqs_mhz)} core configurations, "
          f"default {spec.default_core_mhz} MHz ===")
    summary = []
    selections = []
    for name in BENCHMARKS:
        bench = get_benchmark(name)
        result = characterize(spec, bench.kernel)
        sweep = result.sweep
        summary.append(
            [
                name,
                bench.regime,
                f"[{result.pareto_speedup_min:.2f}, "
                f"{result.pareto_speedup_max:.2f}]",
                f"{result.max_energy_saving:.1%}",
                f"{result.loss_at_max_saving:.1%}",
            ]
        )
        row = [name]
        for target in TARGETS:
            idx = sweep.resolve(target)
            row.append(
                f"{sweep.freqs_mhz[idx]:.0f} MHz "
                f"({1 - sweep.normalized_energy[idx]:+.1%} E)"
            )
        selections.append(row)
    print(format_table(
        ["benchmark", "regime", "pareto speedup", "max saving", "loss @ max"],
        summary,
        title="Characterization summary",
    ))
    print()
    print(format_table(
        ["benchmark", *[t.name for t in TARGETS]],
        selections,
        title="Per-target frequency selections (measured sweeps)",
    ))


def main() -> None:
    characterize_device(NVIDIA_V100)
    characterize_device(AMD_MI100)
    print("\nNote the paper's headline contrasts: on the V100 the default "
          "clock is not the fastest (speedups > 1 exist) and memory-bound "
          "kernels save >20% energy almost for free; on the MI100 the "
          "default is always the best-performing configuration.")


if __name__ == "__main__":
    main()
