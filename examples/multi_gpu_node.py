"""Celerity-style multi-GPU execution on one node (paper §4).

SYnergy's API is inspired by Celerity, which splits SYCL work across
accelerators transparently. This example runs the same kernel on 1, 2 and
4 V100 boards through :class:`MultiGpuSynergyQueue`, with and without a
per-kernel energy target, and reports the time/energy scaling.

Run:  python examples/multi_gpu_node.py
"""

from repro.common.clock import VirtualClock
from repro.core.models import EnergyModelBundle
from repro.core.multigpu import MultiGpuSynergyQueue
from repro.core.predictor import FrequencyPredictor
from repro.experiments.report import format_table
from repro.experiments.training import microbench_training_set
from repro.hw.device import SimulatedGPU
from repro.hw.specs import NVIDIA_V100
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import MIN_ENERGY

KERNEL = KernelIR(
    "stencil27",
    InstructionMix(float_add=54, float_mul=54, gl_access=28),
    work_items=1 << 26,
    locality=0.6,
)


def main() -> None:
    print("training models for the MIN_ENERGY target ...")
    bundle = EnergyModelBundle().fit(
        microbench_training_set(NVIDIA_V100, freq_stride=10, random_count=8)
    )
    predictor = FrequencyPredictor(bundle, NVIDIA_V100)

    rows = []
    for n_gpus in (1, 2, 4):
        for target in (None, MIN_ENERGY):
            gpus = [
                SimulatedGPU(NVIDIA_V100, clock=VirtualClock())
                for _ in range(n_gpus)
            ]
            queue = MultiGpuSynergyQueue(gpus, predictor=predictor)
            devent = queue.parallel_for(KERNEL.work_items, KERNEL, target=target)
            queue.wait()
            rows.append(
                [
                    n_gpus,
                    target.name if target else "default",
                    f"{devent.time_s * 1e3:.2f}",
                    f"{devent.energy_j:.2f}",
                    devent.events[0].record.core_mhz,
                ]
            )
            queue.reset_frequency()
    print()
    print(
        format_table(
            ["GPUs", "target", "kernel time (ms)", "energy (J)", "core MHz"],
            rows,
            title="27-point stencil split across boards",
        )
    )
    print("\ntime scales ~1/N while total kernel energy stays ~flat; the "
          "MIN_ENERGY target shaves energy at every width.")


if __name__ == "__main__":
    main()
