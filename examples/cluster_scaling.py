"""Cluster-scale energy saving (paper §7-8.4) on a simulated Marconi-100.

End to end:

1. train the energy models on micro-benchmarks (deployment step 1, §3.2),
2. compile CloverLeaf's timestep kernels into a per-kernel frequency plan,
3. provision a cluster of IBM-Power9-like nodes with 4 restricted V100s
   each, tagged with the ``nvgpufreq`` GRES,
4. submit exclusive SLURM jobs (baseline + tuned); the nvgpufreq plugin's
   prologue temporarily lowers the NVML clock privileges and its epilogue
   restores a consistent performance state,
5. report weak-scaling time/energy per target — the Fig. 10 experiment.

Run:  python examples/cluster_scaling.py
"""

from repro.apps import CloverLeaf
from repro.core.compiler import SynergyCompiler
from repro.core.models import EnergyModelBundle
from repro.experiments.report import format_table
from repro.experiments.training import microbench_training_set
from repro.hw.specs import NVIDIA_V100
from repro.metrics.targets import ES_50, MIN_EDP, PL_50
from repro.mpi.launcher import launch_ranks
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler

TARGETS = (MIN_EDP, ES_50, PL_50)
GPU_COUNTS = (4, 8, 16)
STEPS = 3


def main() -> None:
    print("training energy models on micro-benchmarks (one-off per device)...")
    training = microbench_training_set(NVIDIA_V100, freq_stride=8, random_count=16)
    bundle = EnergyModelBundle().fit(training)

    app = CloverLeaf(steps=STEPS)
    compiled = SynergyCompiler(bundle, NVIDIA_V100).compile(
        list(app.timestep_kernels()), TARGETS
    )
    print(f"compiled {len(compiled.plan.kernel_names)} kernels x "
          f"{len(TARGETS)} targets into a frequency plan")

    rows = []
    for n_gpus in GPU_COUNTS:
        cluster = Cluster.build(
            NVIDIA_V100,
            n_nodes=n_gpus // 4,
            gpus_per_node=4,
            gres={NVGPUFREQ_GRES},
        )
        plugin = NvGpuFreqPlugin()
        scheduler = Scheduler(cluster, plugins=[plugin])
        baseline_energy = None
        for target in (None, *TARGETS):
            def payload(context, target=target):
                comm = launch_ranks(context)
                return CloverLeaf(steps=STEPS).run(
                    comm, target=target, plan=compiled.plan
                )

            job = scheduler.submit(
                JobSpec(
                    name=f"clover-{n_gpus}g-{target.name if target else 'default'}",
                    n_nodes=n_gpus // 4,
                    exclusive=True,
                    gres=frozenset({NVGPUFREQ_GRES}),
                    payload=payload,
                )
            )
            report = job.result
            if target is None:
                baseline_energy = report.gpu_energy_j
            saving = 1.0 - report.gpu_energy_j / baseline_energy
            rows.append(
                [
                    n_gpus,
                    report.target_name,
                    f"{report.elapsed_s:.3f}",
                    f"{report.gpu_energy_j:.1f}",
                    f"{saving:+.1%}",
                    job.state.value,
                ]
            )
        # After every job the plugin's epilogue restored the posture:
        assert all(
            gpu.api_restricted and gpu.core_mhz == NVIDIA_V100.default_core_mhz
            for node in cluster.nodes
            for gpu in node.gpus
        )
    print()
    print(
        format_table(
            ["GPUs", "target", "time (s)", "GPU energy (J)",
             "saving vs default", "job state"],
            rows,
            title="CloverLeaf weak scaling on the simulated cluster",
        )
    )
    print("\nevery node ended restored: default clocks, privileges re-raised")


if __name__ == "__main__":
    main()
