#!/usr/bin/env bash
# Local quality gate: tier-1 test suite, plus branch coverage when the
# `coverage` package is available (the floor lives in pyproject.toml's
# [tool.coverage.report] section). CI images without coverage installed
# still get the full test run — the gate degrades, it never skips tests.
# After tests: the repo determinism linter (always available — it ships in
# src/repro), ruff when installed, and the strict validation plane.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if python -c "import coverage" >/dev/null 2>&1; then
    echo "== pytest under coverage (fail_under from pyproject.toml) =="
    python -m coverage run -m pytest -x -q "$@"
    python -m coverage report
else
    echo "== coverage not installed; running plain pytest =="
    python -m pytest -x -q "$@"
fi

echo "== determinism lint (repro-synergy lint) =="
python -m repro.cli lint

echo "== static certification (scenario brackets + DEADLINE demo, strict) =="
python -m repro.cli certify --strict

echo "== static-analysis plane (kernel bank + certificates, strict) =="
python -m repro.cli validate --only analysis --strict

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "== ruff (rules pinned in pyproject.toml) =="
    python -m ruff check src tests 2>/dev/null || ruff check src tests
else
    echo "== ruff not installed; skipping style lint =="
fi

echo "== validation plane (invariants + differentials, strict) =="
python -m repro.cli validate --strict

echo "== adaptive plane (deadline semantics + thermal-drift chaos, strict) =="
python -m repro.cli validate --only adapt --strict

echo "== batched engine (vectorized vs scalar differential contract, strict) =="
python -m repro.cli validate --only engine --strict

echo "== service plane (tenancy invariants + replay identity, strict) =="
python -m repro.cli validate --only service --strict

echo "== distributed plane (graph soundness + multi-rank parity + global energy target, strict) =="
python -m repro.cli validate --only distributed --strict

echo "== loadgen smoke (quick: 8 tenants x 2k submissions, no JSON) =="
python -m repro.cli loadgen --quick --json ''
