"""Per-work-item access footprints and the intra-kernel race pass.

The front end lowers every subscript to an affine form over the work-item
id and the enclosing counted-loop variables. This pass finishes the job:
for every access it substitutes each concrete loop-value assignment
(loops are statically bounded, so their value sets enumerate) and reduces
each subscript dimension to ``coeff * id + const`` — the per-work-item
footprint. Two footprints on the same array conflict when the linear
Diophantine system ``a·g1 + c = b·g2 + d`` (one equation per dimension)
has a solution with distinct non-negative work-item ids ``g1 != g2``:

- store/store  → FE011 (write/write race),
- store/load   → FE012 (read/write race), *unless* the accesses are
  local-memory accesses in different barrier phases — the work-group
  barrier between them is exactly the ordering that makes tiled kernels
  (``median``, ``scalar_prod``) sound,
- a provably negative index, or a constant local-array index at or past
  the declared ``local(f32, SIZE)`` extent → FE013.

Only *provable* findings are reported: any dimension mentioning a symbol
the analysis cannot bind (the other id class, an unresolved scalar) makes
the pair undecidable and it is skipped. Witness ids assume at least two
work items — every kernel in the registry launches millions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from repro.frontend import diagnostics as D
from repro.frontend.cfg import (
    Access,
    AffineIndex,
    ArrayType,
    Block,
    CountedLoop,
    KernelCFG,
    Region,
    Space,
)

#: The id variable that distinguishes work items, per memory space: local
#: arrays are indexed by the local id, global arrays by the global id.
ID_VARS: dict[Space, str] = {Space.GLOBAL: "gid", Space.LOCAL: "lid"}

#: Cap on the joint loop-value enumeration per access (provable-only: an
#: access nested under more combinations than this is skipped).
COMBO_CAP = 512


@dataclass(frozen=True)
class ReducedAccess:
    """One access under one concrete loop assignment.

    ``dims`` holds ``(coeff, const)`` per subscript dimension: the
    element touched by work item ``g`` is ``coeff * g + const`` in that
    dimension. ``env`` is the loop assignment that produced it.
    """

    access: Access
    env: tuple[tuple[str, int], ...]
    dims: tuple[tuple[int, int], ...]


def _iter_access_loops(region: Region, loops: tuple[CountedLoop, ...]):
    for item in region.items:
        if isinstance(item, Block):
            for acc in item.accesses:
                yield acc, loops
        else:
            yield from _iter_access_loops(item.body, loops + (item,))


def iter_access_loops(cfg: KernelCFG):
    """Yield ``(access, enclosing_loops)`` over the kernel body."""
    yield from _iter_access_loops(cfg.body, ())


def _loop_combos(loops: tuple[CountedLoop, ...], cap: int):
    """Concrete loop assignments, or ``None`` when enumeration exceeds cap."""
    total = 1
    for loop in loops:
        total *= max(loop.trip_count, 0)
        if total > cap:
            return None
    if total == 0 and loops:
        return []  # a zero-trip loop body never executes
    names = [lp.var for lp in loops]
    return [
        tuple(zip(names, values))
        for values in itertools.product(*(lp.values() for lp in loops))
    ]


def _reduce_dim(
    affine: AffineIndex, id_var: str, env: dict[str, int]
) -> tuple[int, int] | None:
    """Reduce one dimension to ``(id_coeff, const)``; None if unresolved."""
    coeff = 0
    const = affine.const
    for name, k in affine.coeffs:
        if name == id_var:
            coeff += k
        elif name in env:
            const += k * env[name]
        else:
            return None
    return coeff, const


def iter_reduced_accesses(cfg: KernelCFG, *, combo_cap: int = COMBO_CAP):
    """Yield every provably-reducible :class:`ReducedAccess` of a kernel.

    Accesses with opaque subscripts, unresolved symbols, or loop nests
    beyond the enumeration cap are silently skipped (the pass only ever
    reasons about what it can prove).
    """
    for access, loops in iter_access_loops(cfg):
        if access.index is None:
            continue
        combos = _loop_combos(loops, combo_cap)
        if combos is None:
            continue
        id_var = ID_VARS[access.space]
        for combo in combos:
            env = dict(combo)
            dims = []
            ok = True
            for affine in access.index:
                reduced = _reduce_dim(affine, id_var, env)
                if reduced is None:
                    ok = False
                    break
                dims.append(reduced)
            if ok:
                yield ReducedAccess(access=access, env=combo, dims=tuple(dims))


def footprint(
    cfg: KernelCFG, id_value: int, *, combo_cap: int = COMBO_CAP
) -> set[tuple[str, bool, tuple[int, ...]]]:
    """The concrete elements one work item provably touches.

    Returns ``{(array, is_store, index_tuple)}`` with every reducible
    access evaluated at ``id = id_value`` — the shape the concrete
    -enumeration oracle in the property tests compares against.
    """
    out: set[tuple[str, bool, tuple[int, ...]]] = set()
    for red in iter_reduced_accesses(cfg, combo_cap=combo_cap):
        idx = tuple(coeff * id_value + const for coeff, const in red.dims)
        out.add((red.access.array, red.access.is_store, idx))
    return out


# ------------------------------------------------------------ conflict solve


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    """``(g, x, y)`` with ``a·x + b·y == g`` and ``g == gcd(a, b) >= 0``.

    Plain Euclid leaves the Bézout pair with the sign of its inputs;
    normalizing ``g`` positive keeps the lattice parametrization below
    correct for negative subscript coefficients (``out[c - gid]``).
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


def _solve_pair(
    dims_a: tuple[tuple[int, int], ...],
    dims_b: tuple[tuple[int, int], ...],
    work_items: int | None,
) -> tuple[int, int] | None:
    """A witness ``(g1, g2)`` with ``a·g1 + c == b·g2 + d`` per dimension,
    ``g1 != g2``, both non-negative (and below ``work_items`` if given);
    ``None`` when no such pair is provable.

    The solution set of each equation ``a·g1 - b·g2 = d - c`` is a lattice
    line in (g1, g2); intersecting dimensions leaves a plane, a line, a
    point, or nothing. Candidate witnesses are then checked exactly, so
    every returned pair genuinely collides.
    """
    if len(dims_a) != len(dims_b):
        return None

    # State: ("plane",) | ("line", p, q, r, s) with g1 = p+q·t, g2 = r+s·t
    # | ("fixed", g1, g2) | None.
    state: tuple | None = ("plane",)
    for (a, c), (b, d) in zip(dims_a, dims_b):
        rhs = d - c
        if state is None:
            return None
        if state[0] == "plane":
            if a == 0 and b == 0:
                state = ("plane",) if rhs == 0 else None
            elif a == 0:
                if rhs % b:
                    state = None
                else:
                    state = ("line", 0, 1, -rhs // b, 0)
            elif b == 0:
                if rhs % a:
                    state = None
                else:
                    state = ("line", rhs // a, 0, 0, 1)
            else:
                # Extended gcd: x·a + y·b = g  →  a·(x·rhs/g) - b·(-y·rhs/g) = rhs
                g, x0, y0 = _egcd(a, b)
                if rhs % g:
                    state = None
                else:
                    scale = rhs // g
                    state = ("line", x0 * scale, b // g, -y0 * scale, a // g)
        elif state[0] == "line":
            _, p, q, r, s = state
            k = a * q - b * s
            rhs2 = rhs - a * p + b * r
            if k == 0:
                state = state if rhs2 == 0 else None
            elif rhs2 % k:
                state = None
            else:
                t = rhs2 // k
                state = ("fixed", p + q * t, r + s * t)
        else:  # fixed
            _, g1, g2 = state
            if a * g1 - b * g2 != rhs:
                state = None

    if state is None:
        return None

    def _ok(g1: int, g2: int) -> bool:
        if g1 < 0 or g2 < 0 or g1 == g2:
            return False
        if work_items is not None and (g1 >= work_items or g2 >= work_items):
            return False
        # Exact re-check of every dimension: witnesses are never trusted
        # from the algebra alone.
        return all(
            a * g1 + c == b * g2 + d
            for (a, c), (b, d) in zip(dims_a, dims_b)
        )

    if state[0] == "plane":
        return (0, 1) if _ok(0, 1) else None
    if state[0] == "fixed":
        _, g1, g2 = state
        return (g1, g2) if _ok(g1, g2) else None

    _, p, q, r, s = state
    if q == s and p == r:
        return None  # the line is g1 == g2: one thread, never a race
    if q == 0 and s == 0:
        return (p, r) if _ok(p, r) else None
    # Feasible t interval from the non-negativity (and range) constraints.
    t_lo, t_hi = None, None

    def _bound(base: int, slope: int, upper: bool):
        nonlocal t_lo, t_hi
        # upper=False: base + slope·t >= 0; upper=True: base + slope·t <= N-1.
        if slope == 0:
            return
        if not upper:
            if slope > 0:
                lo = _ceil_div(-base, slope)
                t_lo = lo if t_lo is None else max(t_lo, lo)
            else:
                hi = _floor_div(base, -slope)
                t_hi = hi if t_hi is None else min(t_hi, hi)
        else:
            assert work_items is not None
            if slope > 0:
                hi = _floor_div(work_items - 1 - base, slope)
                t_hi = hi if t_hi is None else min(t_hi, hi)
            else:
                lo = _ceil_div(base - (work_items - 1), -slope)
                t_lo = lo if t_lo is None else max(t_lo, lo)

    _bound(p, q, upper=False)
    _bound(r, s, upper=False)
    if work_items is not None:
        _bound(p, q, upper=True)
        _bound(r, s, upper=True)
    if t_lo is not None and t_hi is not None and t_lo > t_hi:
        return None
    anchor = t_lo if t_lo is not None else (t_hi if t_hi is not None else 0)
    step = 1 if t_lo is not None or t_hi is None else -1
    # g1(t) == g2(t) at no more than one t (the line is not the diagonal),
    # so two consecutive feasible t values surely include a witness — scan
    # a couple extra for the exact re-check's sake.
    for i in range(4):
        t = anchor + step * i
        g1, g2 = p + q * t, r + s * t
        if _ok(g1, g2):
            return (g1, g2)
    return None


# -------------------------------------------------------------- diagnostics


def _site(access: Access) -> tuple[int, int]:
    return (access.line, access.col)


def analyze_races(
    cfg: KernelCFG,
    *,
    work_items: int | None = None,
    combo_cap: int = COMBO_CAP,
) -> tuple[D.Diagnostic, ...]:
    """FE011/FE012: provable cross-work-item conflicts in one kernel."""
    reduced = list(iter_reduced_accesses(cfg, combo_cap=combo_cap))
    found: dict[tuple, D.Diagnostic] = {}
    for i, ra in enumerate(reduced):
        for rb in reduced[i:]:
            a, b = ra.access, rb.access
            if a.array != b.array:
                continue
            if not (a.is_store or b.is_store):
                continue
            if a.space is Space.LOCAL and a.phase != b.phase:
                continue  # ordered by the work-group barrier between them
            witness = _solve_pair(ra.dims, rb.dims, work_items)
            if witness is None:
                continue
            store, other = (a, b) if a.is_store else (b, a)
            if a.is_store and b.is_store:
                code = D.WRITE_WRITE_RACE
                kind = "write/write"
            else:
                code = D.READ_WRITE_RACE
                kind = "read/write"
            key = (code, a.array, min(_site(a), _site(b)), max(_site(a), _site(b)))
            if key in found:
                continue
            g1, g2 = witness
            counterpart = (
                "itself"
                if _site(other) == _site(store)
                else f"the access at line {other.line}, col {other.col}"
            )
            found[key] = D.Diagnostic(
                code=code,
                message=(
                    f"cross-work-item {kind} race on {a.array!r}: work items "
                    f"{g1} and {g2} touch the same element (conflicts with "
                    f"{counterpart})"
                ),
                line=store.line,
                col=store.col,
                kernel=cfg.name,
            )
    return tuple(sorted(found.values(), key=lambda d: (d.line, d.col, d.code)))


def analyze_bounds(
    cfg: KernelCFG, *, combo_cap: int = COMBO_CAP
) -> tuple[D.Diagnostic, ...]:
    """FE013: statically-provable out-of-bounds accesses."""
    found: dict[tuple, D.Diagnostic] = {}
    for red in iter_reduced_accesses(cfg, combo_cap=combo_cap):
        access = red.access
        arr = cfg.params.get(access.array)
        size = arr.size if isinstance(arr, ArrayType) else None
        for dim, (coeff, const) in enumerate(red.dims):
            # Negative index, provable only where the id's value set is
            # known: every work-group contains local ids 0 and 1, but a
            # *global* stencil may be launched over an offset interior
            # range, so global-id-dependent subscripts are not judged.
            witness_id = None
            if coeff == 0:
                if const < 0:
                    witness_id = 0
            elif access.space is Space.LOCAL:
                for g in (0, 1):
                    if coeff * g + const < 0:
                        witness_id = g
                        break
            over = (
                size is not None
                and len(red.dims) == 1
                and coeff == 0
                and const >= size
            )
            if witness_id is None and not over:
                continue
            key = (access.array, access.line, access.col, dim)
            if key in found:
                continue
            if witness_id is not None:
                msg = (
                    f"index of {access.array!r} is provably negative "
                    f"({coeff * witness_id + const} at work item {witness_id})"
                )
            else:
                msg = (
                    f"index {const} of local array {access.array!r} is past "
                    f"its declared size {size}"
                )
            found[key] = D.Diagnostic(
                code=D.OUT_OF_BOUNDS,
                message=msg,
                line=access.line,
                col=access.col,
                kernel=cfg.name,
            )
    return tuple(sorted(found.values(), key=lambda d: (d.line, d.col)))


def analyze_kernel_cfg(
    cfg: KernelCFG,
    *,
    work_items: int | None = None,
    combo_cap: int = COMBO_CAP,
) -> tuple[D.Diagnostic, ...]:
    """The full race + bounds pass, sorted by source location."""
    out = analyze_races(cfg, work_items=work_items, combo_cap=combo_cap)
    out += analyze_bounds(cfg, combo_cap=combo_cap)
    return tuple(sorted(out, key=lambda d: (d.line, d.col, d.code)))
