"""Static plan certificates: makespan/energy bounds without execution.

Both executors evaluate a monotone ``(max, +)`` recurrence over kernel
durations, switch overheads and communication costs. Every ingredient of
that recurrence is known at compile time — the frequency plan fixes each
kernel's operating point, the graph fixes the dependency structure, the
scaler fixes the §4.4 overhead — so the recurrence can be evaluated over
:class:`~repro.analysis.interval.Interval` s instead of floats. Because
every operation used (interval ``add``, ``max``, non-negative ``scale``)
is monotone in both endpoints, walking the recurrence once at the lower
and once at the upper endpoints yields sound bounds: the virtual-time run
*must* land inside. ``validate --only analysis`` checks exactly that.

Two certificate shapes:

- :func:`certify_graph` — per-rank makespan/energy intervals for a
  :class:`~repro.core.compiler.GlobalFrequencyPlan` over a
  :class:`~repro.distributed.graph.CommandGraph`, mirroring the
  engine recurrence (``start = max(rank_clock, ready)``,
  ``rank_clock' = start + max(duration, OH·switch)``) with kernel physics
  from the same memoized operating tables the engines read. With known
  boot clocks every interval is degenerate (the walk *is* the executed
  schedule); ``boot="unknown"`` hulls over the first-switch uncertainty.
- :func:`certify_frequency_plan` — a single-device serial pass under a
  :class:`~repro.core.compiler.FrequencyPlan`: exact per-kernel static
  times/energies at the planned clocks, per-target makespan/energy
  intervals, and a feasibility verdict for DEADLINE / SLA_SLACK targets
  that *names a witness kernel* when it refutes the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.interval import Interval
from repro.common.errors import ValidationError
from repro.core.compiler import FrequencyPlan, GlobalFrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.distributed.graph import KERNEL, CommandGraph
from repro.hw.cache import models_for
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import DEADLINE_RTOL, EnergyTarget, TargetKind


def static_operating_point(
    spec: GPUSpec, kernel: KernelIR, core_mhz: int, mem_mhz: int
) -> tuple[float, float]:
    """Exact ``(time_s, power_w)`` at one clock pair, straight off the models.

    This is the scalar physics the reference executor commits per event
    (no power cap, so the board never throttles off the requested clock).
    """
    timing_model, power_model = models_for(spec)
    timing = timing_model.execute(kernel, core_mhz, mem_mhz)
    power = float(
        power_model.power(
            core_mhz, mem_mhz, timing.core_power_utilization, timing.u_mem
        )
    )
    return float(timing.time_s), power


# ----------------------------------------------------------- graph walk


@dataclass(frozen=True)
class GraphCertificate:
    """Static makespan/energy bounds for one plan over one graph."""

    device_name: str
    n_nodes: int
    n_kernels: int
    boot: str
    switch_overhead_s: float
    completion_s: Interval
    rank_time_s: tuple[Interval, ...]
    rank_energy_j: tuple[Interval, ...]
    total_energy_j: Interval
    sla_factor: float
    #: ``completion.hi <= sla × baseline completion``, when a MAX_PERF
    #: baseline certificate was supplied; ``None`` otherwise.
    global_bound_ok: bool | None = None
    baseline_completion_s: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "device_name": self.device_name,
            "n_nodes": self.n_nodes,
            "n_kernels": self.n_kernels,
            "boot": self.boot,
            "switch_overhead_s": self.switch_overhead_s,
            "completion_s": self.completion_s.as_dict(),
            "rank_energy_j": [iv.as_dict() for iv in self.rank_energy_j],
            "total_energy_j": self.total_energy_j.as_dict(),
            "sla_factor": self.sla_factor,
            "global_bound_ok": self.global_bound_ok,
            "baseline_completion_s": self.baseline_completion_s,
        }


def certify_graph(
    graph: CommandGraph,
    plan: GlobalFrequencyPlan,
    spec: GPUSpec,
    *,
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
    boot: str = "default",
    baseline: "GraphCertificate | None" = None,
) -> GraphCertificate:
    """Walk the engine recurrence over intervals; never touches a board.

    ``boot="default"`` assumes every rank starts at the driver-default
    clocks (what :func:`~repro.distributed.runner.build_comm` guarantees),
    making every bound degenerate — the certificate *is* the schedule.
    ``boot="unknown"`` leaves the pre-run clocks open: the lower walk
    skips each rank's first switch, the upper walk forces it; the
    endpoint argument keeps both sound because the recurrence is monotone
    in each advance. Energy is switch-independent, so it stays exact
    either way.

    Pass a MAX_PERF-plan certificate as ``baseline`` to statically prove
    the global SLA bound ``completion ≤ sla_factor × baseline``.
    """
    from repro.hw.device import SimulatedGPU

    from repro.engine.executor import operating_table

    if boot not in ("default", "unknown"):
        raise ValidationError(f"unknown boot mode {boot!r}")
    oh = float(switch_overhead_s)
    probe = SimulatedGPU(spec)  # table lookups only; never executes
    tables: dict[tuple[int, int], tuple] = {}
    core_index = {int(f): i for i, f in enumerate(spec.core_freqs_mhz)}

    n_ranks = graph.n_ranks
    zero = Interval.point(0.0)
    finish: list[Interval] = [zero] * len(graph.nodes)
    clock_now: list[Interval] = [zero] * n_ranks
    energy: list[Interval] = [zero] * n_ranks
    current: list[tuple[int, int] | None] = [
        (spec.default_core_mhz, spec.default_mem_mhz) if boot == "default"
        else None
        for _ in range(n_ranks)
    ]
    n_kernels = 0
    for node in graph.nodes:
        ready = zero
        for dep in node.deps:
            ready = ready.max(finish[dep])
        if node.kind != KERNEL:
            finish[node.nid] = ready.add(Interval.point(node.cost_s))
            continue
        n_kernels += 1
        kernel = node.kernel
        assert kernel is not None
        mem, core = plan.clocks_for(node.rank, kernel.name)
        key = (id(kernel), mem)
        tab = tables.get(key)
        if tab is None:
            tab = operating_table(probe, kernel, float(mem))
            tables[key] = tab
        try:
            ci = core_index[int(core)]
        except KeyError:
            raise ValidationError(
                f"core clock {core} MHz not in {spec.name}'s table"
            ) from None
        time_s = float(tab[0][ci])
        power_w = float(tab[3][ci])
        r = node.rank
        start = clock_now[r].max(ready)
        if current[r] is None:
            # Unknown boot clocks: the first launch may or may not switch.
            clock_now[r] = Interval(
                start.lo + time_s, start.hi + max(time_s, oh)
            )
        else:
            switched = (core, mem) != current[r]
            advance = max(time_s, oh) if switched else time_s
            clock_now[r] = start.add(Interval.point(advance))
        current[r] = (core, mem)
        finish[node.nid] = start.add(Interval.point(time_s))
        energy[r] = energy[r].add(Interval.point(power_w * time_s))

    completion = zero
    for iv in finish:
        completion = completion.max(iv)
    for iv in clock_now:
        completion = completion.max(iv)
    total = zero
    for iv in energy:
        total = total.add(iv)

    bound_ok: bool | None = None
    baseline_completion: float | None = None
    if baseline is not None:
        baseline_completion = baseline.completion_s.lo
        bound = plan.sla_factor * baseline_completion
        bound_ok = completion.hi <= bound * (1.0 + DEADLINE_RTOL)
    return GraphCertificate(
        device_name=spec.name,
        n_nodes=len(graph.nodes),
        n_kernels=n_kernels,
        boot=boot,
        switch_overhead_s=oh,
        completion_s=completion,
        rank_time_s=tuple(clock_now),
        rank_energy_j=tuple(energy),
        total_energy_j=total,
        sla_factor=float(plan.sla_factor),
        global_bound_ok=bound_ok,
        baseline_completion_s=baseline_completion,
    )


# ---------------------------------------------------- single-device plans


@dataclass(frozen=True)
class PlanCertificate:
    """Feasibility verdict + bounds for one compiled frequency plan.

    ``kernel_time_s``/``kernel_energy_j`` are *exact* static values at the
    planned clocks, keyed by ``(kernel_name, target_name)``. The per-
    target ``makespan_s`` interval covers one serial pass over the
    kernels: the lower endpoint is pure compute, the upper endpoint
    admits one clock switch per launch plus a boot and a reset switch.
    ``witness`` names the first kernel refuting a DEADLINE / SLA_SLACK
    target, with the full story in ``violations``.
    """

    device_name: str
    targets: tuple[str, ...]
    kernel_time_s: Mapping[tuple[str, str], float]
    kernel_energy_j: Mapping[tuple[str, str], float]
    makespan_s: Mapping[str, Interval]
    energy_j: Mapping[str, Interval]
    violations: tuple[str, ...] = ()
    witness: str | None = None
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S
    notes: tuple[str, ...] = field(default=())

    @property
    def feasible(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        return {
            "device_name": self.device_name,
            "targets": list(self.targets),
            "feasible": self.feasible,
            "witness": self.witness,
            "violations": list(self.violations),
            "makespan_s": {t: iv.as_dict() for t, iv in self.makespan_s.items()},
            "energy_j": {t: iv.as_dict() for t, iv in self.energy_j.items()},
            "kernel_time_s": {
                f"{k}::{t}": v for (k, t), v in self.kernel_time_s.items()
            },
            "kernel_energy_j": {
                f"{k}::{t}": v for (k, t), v in self.kernel_energy_j.items()
            },
            "notes": list(self.notes),
        }


def certify_frequency_plan(
    plan: FrequencyPlan,
    kernels: Sequence[KernelIR],
    targets: Sequence[EnergyTarget],
    spec: GPUSpec,
    *,
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
) -> PlanCertificate:
    """Statically prove — or refute, with a witness — a compiled plan.

    For every ``(kernel, target)`` pair the planned clocks are priced
    through the timing/power models. DEADLINE targets are refuted when
    the kernel's static time exceeds the deadline beyond the resolver's
    own tolerance (``DEADLINE_RTOL``); SLA_SLACK targets compare against
    ``slack × (fastest table time at the planned memory clock)``. Average
    power is additionally checked against the board's physical
    ``power_bounds`` envelope.
    """
    timing_model, power_model = models_for(spec)
    p_lo, p_hi = power_model.power_bounds()
    oh = float(switch_overhead_s)
    times: dict[tuple[str, str], float] = {}
    energies: dict[tuple[str, str], float] = {}
    makespan: dict[str, Interval] = {}
    energy_iv: dict[str, Interval] = {}
    violations: list[str] = []
    witness: str | None = None

    def refute(kernel_name: str, message: str) -> None:
        nonlocal witness
        violations.append(message)
        if witness is None:
            witness = kernel_name

    for target in targets:
        total_t = 0.0
        total_e = 0.0
        for kernel in kernels:
            mem, core = plan.lookup(kernel.name, target)
            t, p = static_operating_point(spec, kernel, core, mem)
            e = p * t
            times[(kernel.name, target.name)] = t
            energies[(kernel.name, target.name)] = e
            total_t += t
            total_e += e
            if not p_lo * (1.0 - DEADLINE_RTOL) <= p <= p_hi * (1.0 + DEADLINE_RTOL):
                refute(
                    kernel.name,
                    f"{kernel.name}/{target.name}: average power {p:.3f} W "
                    f"outside the board envelope [{p_lo:.3f}, {p_hi:.3f}]",
                )
            if target.kind is TargetKind.DEADLINE:
                deadline = float(target.value)  # validated positive
                if t > deadline * (1.0 + DEADLINE_RTOL):
                    refute(
                        kernel.name,
                        f"{kernel.name}/{target.name}: static time {t:.6e} s "
                        f"exceeds the {deadline:.6e} s deadline — the plan "
                        "is infeasible (witness kernel "
                        f"{kernel.name!r})",
                    )
            elif target.kind is TargetKind.SLA_SLACK:
                timing = timing_model.sweep(
                    kernel,
                    np.asarray(spec.core_freqs_mhz, dtype=float),
                    float(mem),
                )
                t_min = float(timing.time_s.min())
                bound = float(target.value) * t_min
                if t > bound * (1.0 + DEADLINE_RTOL):
                    refute(
                        kernel.name,
                        f"{kernel.name}/{target.name}: static time {t:.6e} s "
                        f"exceeds {target.value:g}× the fastest table time "
                        f"{t_min:.6e} s (witness kernel {kernel.name!r})",
                    )
        n = len(kernels)
        # Serial pass: compute is exact; every launch may pay at most one
        # switch (advance = max(t, oh) <= t + oh), plus one boot switch
        # into the plan and one reset back to driver defaults.
        makespan[target.name] = Interval(total_t, total_t + (n + 2) * oh)
        energy_iv[target.name] = Interval.point(total_e)

    return PlanCertificate(
        device_name=spec.name,
        targets=tuple(t.name for t in targets),
        kernel_time_s=times,
        kernel_energy_j=energies,
        makespan_s=makespan,
        energy_j=energy_iv,
        violations=tuple(violations),
        witness=witness,
        switch_overhead_s=oh,
    )
