"""Independent race/deadlock audit of distributed command graphs.

The builder in :mod:`repro.distributed.graph` derives RAW/WAR/WAW edges
with a 3-pass stateful algorithm. This module cross-checks it with a
different one: abstract-interpret each submitted wave's *declared*
:class:`~repro.sycl.distributed.DistributedAccess` sets (the
:class:`~repro.distributed.graph.WaveRecord` log — never the builder's
hazard state) into per-node block access sets, then demand that every
pair of conflicting accesses is ordered by a dependency *path*. A
conflict the builder failed to order surfaces as a race; a dependency
cycle (which would deadlock both executors) surfaces via Kahn's
algorithm.

The same conflict rule, applied to *timed* accesses recorded from a
simulated run, powers the regression harness that re-detects the
``Queue.memcpy`` source hazard when its fix is reverted: two intervals on
one buffer that overlap in virtual time with at least one writer are a
race the event graph failed to serialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.distributed.graph import GATHER, HALO, CommandGraph

#: Block-access kinds.
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class BlockAccess:
    """One node's access to one block of a distributed buffer."""

    nid: int
    block: tuple
    writes: bool
    label: str


@dataclass(frozen=True)
class GraphAudit:
    """Outcome of the shadow derivation over one command graph."""

    n_nodes: int
    pairs_checked: int
    races: tuple[str, ...]
    cycle: tuple[int, ...] | None

    @property
    def ok(self) -> bool:
        return not self.races and self.cycle is None

    def as_dict(self) -> dict[str, object]:
        return {
            "n_nodes": self.n_nodes,
            "pairs_checked": self.pairs_checked,
            "races": list(self.races),
            "cycle": list(self.cycle) if self.cycle is not None else None,
            "ok": self.ok,
        }


def find_cycle(deps: Mapping[int, Iterable[int]]) -> tuple[int, ...] | None:
    """A dependency cycle in ``{node: its deps}``, or ``None`` if acyclic.

    Kahn's algorithm: peel nodes with no unfinished dependencies; anything
    left afterwards sits on a cycle, and a walk along still-blocked
    dependencies inside that remainder recovers one explicitly.
    """
    pending = {n: set(d) for n, d in deps.items()}
    for reqs in pending.values():
        reqs.intersection_update(pending)  # ignore deps outside the graph
    dependants: dict[int, list[int]] = {n: [] for n in pending}
    for n, reqs in pending.items():
        for d in reqs:
            dependants[d].append(n)
    ready = [n for n, reqs in pending.items() if not reqs]
    while ready:
        n = ready.pop()
        for follower in dependants[n]:
            reqs = pending[follower]
            reqs.discard(n)
            if not reqs and follower in pending:
                ready.append(follower)
        del pending[n]
    if not pending:
        return None
    # Every remaining node has a remaining dependency; following them must
    # revisit a node within len(pending) steps.
    seen: dict[int, int] = {}
    path: list[int] = []
    node = next(iter(pending))
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = min(r for r in pending[node] if r in pending)
    return tuple(path[seen[node]:])


def _block_accesses(graph: CommandGraph) -> list[BlockAccess]:
    """Re-derive every (node, block) access from the submission log."""
    out: list[BlockAccess] = []
    for record in graph.submissions:
        if record.kind == "gather":
            assert record.buffer is not None and record.gather_nid is not None
            node = graph.nodes[record.gather_nid]
            for rank in range(graph.n_ranks):
                out.append(
                    BlockAccess(
                        nid=node.nid,
                        block=(record.buffer.name, rank),
                        writes=False,
                        label=node.label,
                    )
                )
            continue
        halo_of = dict(record.halo_nids)
        for ai, access in enumerate(record.accesses):
            buf = access.buffer.name
            for rank, knid in record.kernel_nids:
                kernel = graph.nodes[knid]
                if access.mode.reads:
                    out.append(
                        BlockAccess(knid, (buf, rank), False, kernel.label)
                    )
                if access.mode.writes:
                    out.append(
                        BlockAccess(knid, (buf, rank), True, kernel.label)
                    )
                hid = halo_of.get((rank, ai))
                if hid is None:
                    continue
                halo = graph.nodes[hid]
                # The transfer reads both neighbour blocks and materializes
                # the rank's ghost region, which only this wave's kernel
                # reads — the ghost block is keyed by wave so successive
                # exchanges never alias.
                for n in (rank - 1, rank + 1):
                    if 0 <= n < graph.n_ranks:
                        out.append(
                            BlockAccess(hid, (buf, n), False, halo.label)
                        )
                ghost = (buf, "ghost", rank, record.wave)
                out.append(BlockAccess(hid, ghost, True, halo.label))
                out.append(BlockAccess(knid, ghost, False, kernel.label))
    return out


def _ancestors(graph: CommandGraph) -> list[int]:
    """Per-node ancestor sets as bit masks (node ids are topological)."""
    anc = [0] * len(graph.nodes)
    for node in graph.nodes:
        mask = 1 << node.nid
        for dep in node.deps:
            mask |= anc[dep]
        anc[node.nid] = mask
    return anc


def audit_graph(graph: CommandGraph) -> GraphAudit:
    """Shadow-derive block accesses and verify every conflict is ordered.

    Returns a :class:`GraphAudit`; ``ok`` means the graph is certified
    race-free and deadlock-free under its declared access sets.
    """
    cycle = find_cycle({n.nid: n.deps for n in graph.nodes})
    anc = _ancestors(graph) if cycle is None else None

    by_block: dict[tuple, list[BlockAccess]] = {}
    for acc in _block_accesses(graph):
        by_block.setdefault(acc.block, []).append(acc)

    races: list[str] = []
    seen: set[tuple] = set()
    pairs = 0
    for block, accs in by_block.items():
        for i, a in enumerate(accs):
            for b in accs[i + 1:]:
                if a.nid == b.nid or not (a.writes or b.writes):
                    continue
                pairs += 1
                lo, hi = min(a.nid, b.nid), max(a.nid, b.nid)
                if anc is not None and (anc[hi] >> lo) & 1:
                    continue
                key = (block, lo, hi)
                if key in seen:
                    continue
                seen.add(key)
                kind = "write/write" if a.writes and b.writes else "read/write"
                races.append(
                    f"unordered {kind} conflict on block {block!r}: "
                    f"node {a.nid} ({a.label}) vs node {b.nid} ({b.label})"
                )
    return GraphAudit(
        n_nodes=len(graph.nodes),
        pairs_checked=pairs,
        races=tuple(sorted(races)),
        cycle=cycle,
    )


# ----------------------------------------------------- timed (event) audits


@dataclass(frozen=True)
class TimedAccess:
    """One operation's access to a buffer over a virtual-time interval.

    Built by test harnesses from an operation's *declared* semantics (a
    ``memcpy`` reads its source for the whole transfer, a fill writes its
    target), with ``start_s``/``end_s`` taken from the simulated events.
    """

    buffer: str
    writes: bool
    start_s: float
    end_s: float
    label: str


def audit_timed_accesses(
    accesses: Sequence[TimedAccess],
) -> tuple[tuple[TimedAccess, TimedAccess], ...]:
    """Conflicting pairs the event graph failed to serialize.

    Two accesses conflict when they touch the same buffer, at least one
    writes, they come from different operations, and their half-open
    intervals ``[start_s, end_s)`` overlap in virtual time.
    """
    conflicts: list[tuple[TimedAccess, TimedAccess]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.buffer != b.buffer or a.label == b.label:
                continue
            if not (a.writes or b.writes):
                continue
            if a.start_s < b.end_s and b.start_s < a.end_s:
                conflicts.append((a, b))
    return tuple(conflicts)
