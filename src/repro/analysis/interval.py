"""Closed-interval arithmetic for the certification pass.

Every certificate bound is an :class:`Interval` ``[lo, hi]``. The
operations used by the static executor walk (addition, scaling by a
non-negative factor, max, hull) are all monotone, so evaluating the
execution recurrence once at every interval's lower endpoint and once at
the upper endpoint yields sound bounds — the classic endpoint argument
for monotone dataflow. ``contains`` applies the certification plane's
relative slack (1e-12 by default) so measured floating-point sums that
re-associate against the static walk still land inside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError

#: Relative slack applied when checking that a measurement lies inside a
#: certified interval: covers float re-association between the static
#: walk and the engine's accumulation order, nothing more.
CONTAINS_RTOL = 1e-12


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValidationError("interval endpoints cannot be NaN")
        if self.lo > self.hi:
            raise ValidationError(f"interval lo {self.lo} > hi {self.hi}")

    @staticmethod
    def point(x: float) -> "Interval":
        """The degenerate interval ``[x, x]`` (an exact static value)."""
        return Interval(float(x), float(x))

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, k: float) -> "Interval":
        """Multiply by a non-negative scalar."""
        if k < 0:
            raise ValidationError(f"scale factor must be >= 0 ({k})")
        return Interval(self.lo * k, self.hi * k)

    def max(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, x: float, *, rtol: float = CONTAINS_RTOL) -> bool:
        """Whether ``x`` lies inside, up to the relative slack."""
        slack = rtol * max(abs(self.lo), abs(self.hi), abs(x))
        return self.lo - slack <= x <= self.hi + slack

    def as_dict(self) -> dict[str, float]:
        return {"lo": self.lo, "hi": self.hi}

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"[{self.lo:.6g}]"
        return f"[{self.lo:.6g}, {self.hi:.6g}]"
