"""Static certification plane (`repro.analysis`).

Three passes that reason about the system *without executing it*:

- :mod:`repro.analysis.footprints` — per-work-item access footprints over
  the front end's affine CFG, with cross-work-item race detection
  (FE011/FE012) and statically-provable out-of-bounds accesses (FE013);
- :mod:`repro.analysis.graphaudit` — an independent shadow derivation of
  the distributed command graph's hazards: conflicting block accesses
  must be ordered by a dependency path, and the graph must be
  deadlock-free (cross-checks the builder's 3-pass derivation);
- :mod:`repro.analysis.certify` — interval arithmetic over the timing and
  power models, deriving makespan/energy bounds for frequency plans and
  typed :class:`~repro.analysis.certify.PlanCertificate` s that prove or
  refute DEADLINE/SLA feasibility before any virtual-time run.

`repro-synergy certify` drives all three; ``validate --only analysis``
asserts every certificate brackets the measured engine run.
"""

from repro.analysis.interval import Interval
from repro.analysis.footprints import (
    ReducedAccess,
    analyze_bounds,
    analyze_kernel_cfg,
    analyze_races,
    footprint,
    iter_reduced_accesses,
)
from repro.analysis.graphaudit import (
    GraphAudit,
    TimedAccess,
    audit_graph,
    audit_timed_accesses,
    find_cycle,
)
from repro.analysis.certify import (
    GraphCertificate,
    PlanCertificate,
    certify_frequency_plan,
    certify_graph,
)

__all__ = [
    "Interval",
    "ReducedAccess",
    "analyze_bounds",
    "analyze_kernel_cfg",
    "analyze_races",
    "footprint",
    "iter_reduced_accesses",
    "GraphAudit",
    "TimedAccess",
    "audit_graph",
    "audit_timed_accesses",
    "find_cycle",
    "GraphCertificate",
    "PlanCertificate",
    "certify_frequency_plan",
    "certify_graph",
]
