"""Certificates for the golden scenarios: static brackets vs. live runs.

Each certifier derives makespan/energy bounds for one seeded end-to-end
scenario (the :mod:`repro.obs.scenarios` registry plus the distributed
weak-scaling stencil graph) **without running it**, then replays the
scenario and checks the measured quantities land inside the intervals.
The static side only touches the timing/power models and the declared
scenario recipe (launch counts, plan clocks, network constants); the
measured side is the same virtual-time machinery the golden-trace tests
snapshot. A bracket failure therefore means the two independent
derivations of the paper's §7 physics disagree — exactly the class of
bug ``validate --only analysis`` exists to catch.

Bound tightness varies by scenario, deliberately:

- ``single-gpu`` replays the §4 queue recurrence symbolically — the
  upper endpoints are *exact* (the certificate is the schedule) and the
  energy interval is a point.
- ``slurm-faults`` knows the plan clocks and the interconnect constants
  but not the switch/fault interleaving: compute+comm is exact, the
  upper endpoint admits one switch per launch plus the full §4.4 retry
  backoff ladder for the injected NVML fault.
- ``thermal-drift`` cannot know which clocks the throttle windows and
  the adaptive ladder will visit, but every operating point lands on the
  board's clock table, so per-launch hulls over the full (mem × core)
  grid bound all four comparison runs at once.
- ``multi-tenant`` is admission-controlled (a rejected submission runs
  nothing), so only the energy upper bound is informative.
- ``weak-scaling`` defers to :func:`~repro.analysis.certify.certify_graph`
  (degenerate intervals under known boot clocks) and additionally runs
  the command-graph race/deadlock audit and the global SLA bound proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.certify import (
    PlanCertificate,
    certify_frequency_plan,
    certify_graph,
    static_operating_point,
)
from repro.analysis.graphaudit import audit_graph
from repro.analysis.interval import Interval
from repro.apps.cloverleaf import CloverLeaf
from repro.apps.syclbench.definitions import get_benchmark
from repro.common.errors import ConfigurationError
from repro.core.compiler import FrequencyPlan, SynergyCompiler
from repro.core.frequency import (
    DEFAULT_BACKOFF_CAP_S,
    DEFAULT_MAX_RETRIES,
    DEFAULT_SWITCH_OVERHEAD_S,
)
from repro.core.predictor import FrequencyPredictor
from repro.core.queue import SynergyQueue
from repro.core.sweepcache import scoped_cache
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.cache import models_for
from repro.hw.device import SimulatedGPU
from repro.hw.specs import NVIDIA_V100, GPUSpec, get_spec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import DEADLINE, MIN_EDP
from repro.mpi.launcher import launch_ranks
from repro.mpi.network import NetworkModel
from repro.obs.scenarios import SINGLE_GPU_KERNELS, _train_linear
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler


# --------------------------------------------------------------- records


@dataclass(frozen=True)
class BracketCheck:
    """One measured quantity against its static interval."""

    quantity: str
    interval: Interval
    measured: float

    @property
    def ok(self) -> bool:
        return self.interval.contains(self.measured)

    def as_dict(self) -> dict[str, object]:
        return {
            "quantity": self.quantity,
            "interval": self.interval.as_dict(),
            "measured": self.measured,
            "ok": self.ok,
        }

    def format(self) -> str:
        status = "ok" if self.ok else "OUTSIDE"
        return (
            f"{self.quantity}: {self.measured:.6e} in "
            f"{self.interval} [{status}]"
        )


@dataclass(frozen=True)
class ScenarioCertificate:
    """Static bounds, measured values and extra proof obligations."""

    scenario: str
    checks: tuple[BracketCheck, ...]
    #: Named boolean obligations beyond bracketing (audit clean, SLA
    #: bound proved, ...); all must hold for the certificate to stand.
    assertions: tuple[tuple[str, bool], ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks) and all(
            ok for _, ok in self.assertions
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "checks": [c.as_dict() for c in self.checks],
            "assertions": {name: ok for name, ok in self.assertions},
            "notes": list(self.notes),
        }


def _grid_hull(spec: GPUSpec, kernel: KernelIR) -> tuple[float, float, float, float]:
    """``(t_min, t_max, e_min, e_max)`` over the full (mem × core) table.

    Sound per-launch bounds whenever the effective operating point is a
    table entry — which the board guarantees: application clocks, plan
    clocks, power-limit throttling and injected thermal caps all resolve
    to supported table clocks.
    """
    timing_model, power_model = models_for(spec)
    cores = np.asarray(spec.core_freqs_mhz, dtype=float)
    t_lo = e_lo = float("inf")
    t_hi = e_hi = 0.0
    for mem in spec.mem_freqs_mhz:
        timing = timing_model.sweep(kernel, cores, float(mem))
        power = np.asarray(
            power_model.power(
                cores, float(mem), timing.core_power_utilization, timing.u_mem
            ),
            dtype=float,
        )
        energy = power * np.asarray(timing.time_s, dtype=float)
        t_lo = min(t_lo, float(np.min(timing.time_s)))
        t_hi = max(t_hi, float(np.max(timing.time_s)))
        e_lo = min(e_lo, float(np.min(energy)))
        e_hi = max(e_hi, float(np.max(energy)))
    return t_lo, t_hi, e_lo, e_hi


# ------------------------------------------------------------ single-gpu


def certify_single_gpu(seed: int = 7) -> ScenarioCertificate:
    """Symbolic replay of the single-V100 MIN_EDP tuning scenario.

    The predicted clocks are a pure function of the trained bundle, so
    the §4 queue recurrence (``advance = max(t, OH)`` on a switch, ``t``
    otherwise, plus one reset switch at the end) can be walked without a
    board. The lower endpoint drops every switch; the upper endpoint *is*
    the schedule.
    """
    spec = NVIDIA_V100
    oh = DEFAULT_SWITCH_OVERHEAD_S
    with scoped_cache():
        bundle = _train_linear(seed)
        predictor = FrequencyPredictor(bundle, spec)
        kernels = [get_benchmark(name).kernel for name in SINGLE_GPU_KERNELS]
        mid_core = int(spec.core_freqs_mhz[len(spec.core_freqs_mhz) // 2])
        launches: list[tuple[KernelIR, int, int]] = []
        for _round in range(2):
            for kernel in kernels:
                mem, core = predictor.predict_frequency(kernel, MIN_EDP)
                launches.append((kernel, int(mem), int(core)))
        fixed = kernels[0]
        launches.append((fixed, int(spec.default_mem_mhz), mid_core))

        compute = 0.0
        energy = 0.0
        now = 0.0
        defaults = (spec.default_core_mhz, spec.default_mem_mhz)
        current = defaults
        for kernel, mem, core in launches:
            t, p = static_operating_point(spec, kernel, core, mem)
            switched = (core, mem) != current
            now += max(t, oh) if switched else t
            current = (core, mem)
            compute += t
            energy += p * t
        if current != defaults:
            now += oh  # queue.reset_frequency pays one switch back
        makespan = Interval(compute, now)
        energy_iv = Interval.point(energy)

        # Measured: the golden scenario verbatim, minus the tracing.
        gpu = SimulatedGPU(spec, index=0)
        queue = SynergyQueue(gpu, predictor=FrequencyPredictor(bundle, spec))
        events = []
        for _round in range(2):
            for kernel in kernels:
                events.append(
                    queue.submit(
                        MIN_EDP,
                        lambda h, k=kernel: h.parallel_for(k.work_items, k),
                    )
                )
        events.append(
            queue.submit(
                int(spec.default_mem_mhz),
                mid_core,
                lambda h: h.parallel_for(fixed.work_items, fixed),
            )
        )
        queue.kernel_energy_consumption(events[0])
        queue.kernel_energy_consumption(events[-1])
        queue.device_energy_consumption()
        queue.profiler.reset_window()
        queue.device_energy_consumption()
        queue.reset_frequency()
        measured_makespan = float(gpu.clock.now)
        measured_energy = float(queue.summary()["kernel_energy_j"])
    return ScenarioCertificate(
        scenario="single-gpu",
        checks=(
            BracketCheck("makespan_s", makespan, measured_makespan),
            BracketCheck("kernel_energy_j", energy_iv, measured_energy),
        ),
        notes=(
            f"{len(launches)} launches; upper makespan endpoint replays "
            "the switch walk exactly, energy is a point interval",
        ),
    )


# ----------------------------------------------------------- slurm-faults


def certify_slurm_faults(seed: int = 7) -> ScenarioCertificate:
    """Bracket the 4-node SLURM CloverLeaf run with one NVML fault.

    Compute and collective costs are exact (plan clocks × timing model,
    ring halo + allreduce over the default interconnect constants); the
    elapsed upper endpoint admits one clock switch per launch plus the
    full retry/backoff ladder for the single injected transient fault.
    Board energy includes idle draw, so its upper bound is the peak-power
    envelope over the elapsed upper bound.
    """
    spec = NVIDIA_V100
    oh = DEFAULT_SWITCH_OVERHEAD_S
    app = CloverLeaf(steps=2)
    n_ranks = 4
    with scoped_cache():
        bundle = _train_linear(seed)
        compiled = SynergyCompiler(bundle, spec).compile(
            app.timestep_kernels(), [MIN_EDP]
        )
        step_time = 0.0
        step_energy = 0.0
        for kernel in compiled.kernels:
            mem, core = compiled.plan.lookup(kernel.name, MIN_EDP)
            t, p = static_operating_point(spec, kernel, core, mem)
            step_time += t
            step_energy += p * t

        node_of_rank = list(range(n_ranks))  # 4 nodes × 1 GPU
        net = NetworkModel()
        halo = app.halo_bytes()
        hop = [
            max(
                net.transfer_time(halo, node_of_rank[r], node_of_rank[(r - 1) % n_ranks]),
                net.transfer_time(halo, node_of_rank[r], node_of_rank[(r + 1) % n_ranks]),
            )
            for r in range(n_ranks)
        ]
        reduce_s = net.allreduce_time(8.0, node_of_rank)
        comm_lo = app.steps * (2.0 * min(hop) + reduce_s)
        comm_hi = app.steps * (2.0 * max(hop) + reduce_s)

        launches = app.steps * len(compiled.kernels)  # per rank
        fault_extra = DEFAULT_MAX_RETRIES * oh + DEFAULT_BACKOFF_CAP_S
        compute = app.steps * step_time
        elapsed = Interval(
            compute + comm_lo,
            compute + comm_hi + (launches + 2) * oh + fault_extra,
        )
        p_peak = models_for(spec)[1].power_bounds()[1]
        energy_iv = Interval(
            n_ranks * app.steps * step_energy,
            n_ranks * elapsed.hi * p_peak,
        )

        # Measured: the golden scenario verbatim, minus the tracing.
        fault_plan = FaultPlan(
            seed=seed,
            specs=(FaultSpec(site="nvml.set_clocks", at_s=0.0, count=1),),
        )
        cluster = Cluster.build(
            spec,
            n_nodes=n_ranks,
            gpus_per_node=1,
            gres={NVGPUFREQ_GRES},
            fault_plan=fault_plan,
        )
        scheduler = Scheduler(cluster, plugins=[NvGpuFreqPlugin()])

        def payload(context):
            comm = launch_ranks(context)
            return app.run(comm, target=MIN_EDP, plan=compiled.plan)

        job = scheduler.submit(
            JobSpec(
                name="cloverleaf-min_edp",
                n_nodes=n_ranks,
                exclusive=True,
                gres=frozenset({NVGPUFREQ_GRES}),
                payload=payload,
            )
        )
        report = job.result
    return ScenarioCertificate(
        scenario="slurm-faults",
        checks=(
            BracketCheck("elapsed_s", elapsed, float(report.elapsed_s)),
            BracketCheck("gpu_energy_j", energy_iv, float(report.gpu_energy_j)),
        ),
        assertions=(
            ("job absorbed the transient NVML fault", report.clock_retries >= 1),
            ("no kernel degraded to default clocks", report.degraded_kernels == 0),
        ),
        notes=(
            f"{launches} launches/rank over {n_ranks} ranks; retry ladder "
            f"budget {fault_extra:.3e} s in the upper endpoint",
        ),
    )


# ---------------------------------------------------------- thermal-drift


def certify_thermal_drift(seed: int = 7) -> ScenarioCertificate:
    """Bracket the four-way adaptive-chaos comparison with grid hulls.

    Throttle windows and ladder escalations move clocks unpredictably,
    but never off the board's table, so per-launch (mem × core) hulls
    bound all four measured runs (the sizing probe is excluded from the
    comparison's summaries, matching the measured side).
    """
    from repro.adapt.chaos import (
        ROUNDS,
        STREAMS,
        run_thermal_drift_comparison,
        scenario_kernels,
    )

    spec = NVIDIA_V100
    oh = DEFAULT_SWITCH_OVERHEAD_S
    n_runs = 4
    with scoped_cache():
        kernels = scenario_kernels()
        hulls = [_grid_hull(spec, kernel) for kernel in kernels]
        per_kernel = n_runs * STREAMS * ROUNDS
        run_launches = STREAMS * ROUNDS * len(kernels)
        elapsed = Interval(
            per_kernel * sum(h[0] for h in hulls),
            per_kernel * sum(h[1] for h in hulls)
            + n_runs * (run_launches + 4) * oh,
        )
        energy_iv = Interval(
            per_kernel * sum(h[2] for h in hulls),
            per_kernel * sum(h[3] for h in hulls),
        )
        comparison = run_thermal_drift_comparison(seed=seed)
        runs = (
            comparison.max_perf,
            comparison.static_clean,
            comparison.static_fault,
            comparison.adaptive_fault,
        )
        measured_t = float(sum(r.elapsed_s for r in runs))
        measured_e = float(sum(r.energy_j for r in runs))
    return ScenarioCertificate(
        scenario="thermal-drift",
        checks=(
            BracketCheck("elapsed_s", elapsed, measured_t),
            BracketCheck("kernel_energy_j", energy_iv, measured_e),
        ),
        notes=(
            f"{per_kernel} launches per kernel across the four compared "
            "runs; bounds hull the full clock table (throttle-safe)",
        ),
    )


# ----------------------------------------------------------- multi-tenant


def certify_multi_tenant(seed: int = 7) -> ScenarioCertificate:
    """Energy cap for the seeded 8-tenant service-plane session.

    Admission control may reject or leave submissions pending, so the
    only sound static statement is the upper bound: every drained
    submission runs its kernel once at some table operating point.
    Makespan is ill-defined for the plane (shards idle-wait between
    seeded arrivals), so this certificate is energy-only.
    """
    from repro.service.loadgen import DEFAULT_KERNELS, run_service_session

    spec = NVIDIA_V100
    n_submissions = 128
    with scoped_cache():
        cap = max(
            _grid_hull(spec, get_benchmark(name).kernel)[3]
            for name in DEFAULT_KERNELS
        )
        energy_iv = Interval(0.0, n_submissions * cap)
        service = run_service_session(
            seed=seed,
            n_tenants=8,
            n_submissions=n_submissions,
            n_partitions=4,
            n_cycles=4,
        )
        cluster = service.report()["cluster"]
        measured = float(cluster["kernel_energy_j"])
        drained = int(cluster["drained"])
    return ScenarioCertificate(
        scenario="multi-tenant",
        checks=(BracketCheck("kernel_energy_j", energy_iv, measured),),
        assertions=(
            ("drained submissions within the admitted cap", drained <= n_submissions),
        ),
        notes=(
            f"energy-only certificate: {drained} drained of "
            f"{n_submissions} submissions, per-launch cap {cap:.6e} J",
        ),
    )


# ----------------------------------------------------------- weak-scaling


def certify_weak_scaling(spec_name: str = "A100") -> ScenarioCertificate:
    """Certify the distributed weak-scaling stencil graph end to end.

    Exercises all three analysis passes at once: the interval walk of
    :func:`~repro.analysis.certify.certify_graph` (with the MAX_PERF
    baseline proving the global SLA bound), the command-graph race and
    deadlock audit, and the bracket against the vectorized engine.
    Boot clocks are known (``build_comm`` boards start at driver
    defaults), so every interval is degenerate and the bracket is an
    equality test at ``CONTAINS_RTOL``.
    """
    from repro.core.compiler import plan_global_frequencies
    from repro.distributed.runner import build_comm, run_graph
    from repro.distributed.stencil import build_stencil_graph

    spec = get_spec(spec_name)
    with scoped_cache():
        comm = build_comm(spec, 12)
        graph = build_stencil_graph(comm, steps=3, elems_per_rank=1 << 18)
        rank_kernels = graph.rank_kernels()
        plan = plan_global_frequencies(
            spec, rank_kernels, sla_factor=1.25, cache=True
        )
        baseline_plan = plan_global_frequencies(
            spec, rank_kernels, sla_factor=1.25, objective="MAX_PERF", cache=True
        )
        baseline_cert = certify_graph(graph, baseline_plan, spec)
        cert = certify_graph(graph, plan, spec, baseline=baseline_cert)
        audit = audit_graph(graph)
        result = run_graph(graph, comm, plan)
        checks = [
            BracketCheck(
                "completion_s", cert.completion_s, float(result.completion_s)
            ),
            BracketCheck(
                "total_energy_j",
                cert.total_energy_j,
                float(result.rank_energy_j.sum()),
            ),
        ]
        checks.extend(
            BracketCheck(
                f"rank{r}_energy_j",
                cert.rank_energy_j[r],
                float(result.rank_energy_j[r]),
            )
            for r in range(comm.size)
        )
    return ScenarioCertificate(
        scenario="weak-scaling",
        checks=tuple(checks),
        assertions=(
            ("command-graph audit clean", audit.ok),
            ("global SLA bound proved", bool(cert.global_bound_ok)),
        ),
        notes=(
            f"{cert.n_kernels} kernels / {cert.n_nodes} graph nodes over "
            f"{comm.size} ranks on {spec.name}; engine mode {result.mode}",
            f"completion {cert.completion_s} <= {cert.sla_factor:g} x "
            f"MAX_PERF baseline {cert.baseline_completion_s:.6e} s",
        ),
    )


# ---------------------------------------------------------- DEADLINE demo


def deadline_demo(seed: int = 7) -> tuple[PlanCertificate, PlanCertificate]:
    """A feasible and a deliberately infeasible DEADLINE certificate.

    Both plans pin the board's fastest clocks for the single-GPU kernel
    set. The feasible deadline doubles the slowest static time, so the
    proof goes through; the infeasible one halves the *fastest* static
    time, which no supported clock can meet — the refutation names the
    first witness kernel. The ``seed`` argument is accepted for symmetry
    with the scenario certifiers (the demo is deterministic either way).
    """
    del seed  # deterministic: static physics only
    spec = NVIDIA_V100
    with scoped_cache():
        kernels = [get_benchmark(name).kernel for name in SINGLE_GPU_KERNELS]
        mem = int(spec.default_mem_mhz)
        top = int(max(spec.core_freqs_mhz))
        times = {
            k.name: static_operating_point(spec, k, top, mem)[0]
            for k in kernels
        }
        feasible = DEADLINE(2.0 * max(times.values()))
        infeasible = DEADLINE(0.5 * min(times.values()))
        entries = {}
        for k in kernels:
            entries[(k.name, feasible.name)] = (mem, top)
            entries[(k.name, infeasible.name)] = (mem, top)
        plan = FrequencyPlan(device_name=spec.name, entries=entries)
        cert_ok = certify_frequency_plan(plan, kernels, [feasible], spec)
        cert_bad = certify_frequency_plan(plan, kernels, [infeasible], spec)
    return cert_ok, cert_bad


# --------------------------------------------------------------- registry


CERTIFIERS: Mapping[str, Callable[..., ScenarioCertificate]] = {
    "single-gpu": certify_single_gpu,
    "slurm-faults": certify_slurm_faults,
    "thermal-drift": certify_thermal_drift,
    "multi-tenant": certify_multi_tenant,
    "weak-scaling": lambda seed=7: certify_weak_scaling(),
}


def certify_scenarios(
    seed: int = 7, scenarios: Sequence[str] | None = None
) -> dict[str, ScenarioCertificate]:
    """Run the named certifiers (all of them by default), in registry order."""
    names = list(CERTIFIERS) if scenarios is None else list(scenarios)
    unknown = sorted(set(names) - set(CERTIFIERS))
    if unknown:
        raise ConfigurationError(
            f"unknown scenario(s) {unknown}; known: {sorted(CERTIFIERS)}"
        )
    return {name: CERTIFIERS[name](seed=seed) for name in names}
