"""The deadline-budgeted adaptive controller.

:class:`AdaptiveController` drives a :class:`~repro.core.queue.SynergyQueue`
through a stream of kernels under a per-stream deadline, choosing each
launch's clock by the current :class:`~repro.adapt.ladder.LadderLevel`:

- **MODEL / REFRESHED** — split the remaining deadline budget over the
  remaining launches (proportionally to each kernel's predicted nominal
  time), then pick the minimum-energy clock whose *calibrated* predicted
  time fits the launch's share (:func:`~repro.metrics.targets
  .deadline_index`); if no clock fits, catch up at the top clock,
- **STATIC** — replay the frozen compile-time plan entry,
- **MAX_PERF** — pin the top clock.

Every measured launch feeds the :class:`~repro.adapt.drift.DriftDetector`;
a drift event at MODEL escalates to REFRESHED and incrementally refreshes
the model bundle from the recent measurement window (falling back to
STATIC if the window cannot support a refresh). At REFRESHED, drift on a
*new* ``(kernel, metric)`` stream folds the evidence into another refresh
— each refresh is a retry with a richer window — while an "up" drift on a
stream that already forced a refresh proves refreshing is not working and
falls back to STATIC. From STATIC, a measured launch overrunning its
budget share beyond ``miss_grace`` pins MAX_PERF. The ladder is monotone:
a controller never un-escalates within its lifetime (one degraded board).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adapt.drift import DriftDetector, DriftEvent
from repro.adapt.ladder import DegradationLadder, LadderLevel
from repro.common.errors import ConfigurationError, ReproError, ValidationError
from repro.core.compiler import FrequencyPlan
from repro.core.models import DESIGN_COLUMNS, EnergyModelBundle, TrainingSet
from repro.core.predictor import FrequencyPredictor
from repro.core.queue import SynergyQueue
from repro.kernelir.features import extract_features
from repro.kernelir.kernel import KernelIR
from repro.metrics.energy import ed2p, edp
from repro.metrics.targets import DEADLINE_RTOL, EnergyTarget, deadline_index
from repro.obs.session import TraceSession, resolve_trace

#: Floor applied to predicted shapes before scaling (mirrors the predictor).
_SHAPE_FLOOR = 1e-12


@dataclass(frozen=True)
class LaunchOutcome:
    """One adaptive launch: the decision, the budget and the measurement."""

    kernel: str
    level: LadderLevel
    core_mhz: int  # requested clock (the board may cap it under throttle)
    allocated_s: float  # this launch's share of the remaining deadline budget
    measured_s: float
    energy_j: float  # true per-launch energy (accounting, not the sensor)
    predicted_s: float | None  # None for calibration / STATIC / MAX_PERF
    met: bool  # measured time fit the allocated share
    calibration: bool  # first-sighting top-clock calibration launch

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "level": self.level.name,
            "core_mhz": self.core_mhz,
            "allocated_s": self.allocated_s,
            "measured_s": self.measured_s,
            "energy_j": self.energy_j,
            "predicted_s": self.predicted_s,
            "met": self.met,
            "calibration": self.calibration,
        }


@dataclass(frozen=True)
class StreamReport:
    """One deadline-scoped stream of launches."""

    deadline_s: float
    elapsed_s: float
    energy_j: float
    met: bool
    final_level: LadderLevel
    launches: tuple[LaunchOutcome, ...]

    def as_dict(self) -> dict:
        return {
            "deadline_s": self.deadline_s,
            "elapsed_s": self.elapsed_s,
            "energy_j": self.energy_j,
            "met": self.met,
            "final_level": self.final_level.name,
            "launches": [launch.as_dict() for launch in self.launches],
        }


class AdaptiveController:
    """Supervises a queue's clock choices under deadlines and drift.

    ``window`` bounds the rolling measurement window feeding model
    refreshes; ``min_refresh_rows`` is the smallest window a refresh will
    accept (fewer rows fall through to the STATIC rung);
    ``miss_grace`` is the multiplicative tolerance on a launch's budget
    share before a measured overrun escalates the ladder.
    """

    def __init__(
        self,
        queue: SynergyQueue,
        bundle: EnergyModelBundle,
        static_plan: FrequencyPlan,
        static_target: EnergyTarget,
        *,
        detector: DriftDetector | None = None,
        ladder: DegradationLadder | None = None,
        trace: TraceSession | None = None,
        window: int = 32,
        min_refresh_rows: int = 8,
        refresh_fraction: float = 0.5,
        miss_grace: float = 1.25,
    ) -> None:
        if int(window) < 1:
            raise ValidationError(f"window must be >= 1 ({window!r})")
        if int(min_refresh_rows) < 2:
            raise ValidationError(
                f"min_refresh_rows must be >= 2 ({min_refresh_rows!r})"
            )
        if not miss_grace >= 1.0:
            raise ValidationError(f"miss_grace must be >= 1.0 ({miss_grace!r})")
        self.queue = queue
        self.gpu = queue.device.gpu
        self.spec = self.gpu.spec
        self.bundle = bundle
        self.static_plan = static_plan
        self.static_target = static_target
        self.trace = resolve_trace(trace)
        self.detector = (
            detector if detector is not None else DriftDetector(trace=trace)
        )
        self.ladder = ladder if ladder is not None else DegradationLadder(trace)
        self.predictor = FrequencyPredictor(bundle, self.spec, trace=trace)
        self._freqs = np.asarray(self.spec.core_freqs_mhz, dtype=float)
        self._max_idx = int(np.argmax(self._freqs))
        self.min_refresh_rows = int(min_refresh_rows)
        self.refresh_fraction = float(refresh_fraction)
        self.miss_grace = float(miss_grace)
        self.refresh_count = 0
        # Per-kernel (time, energy) calibration scales from live launches.
        self._scales: dict[str, tuple[float, float]] = {}
        # Per-kernel (freq index, measured s) anchor of the latest
        # calibration, for the physical lower bound on predicted times.
        self._anchors: dict[str, tuple[int, float]] = {}
        # (kernel, metric) streams whose "up" drift already forced a
        # refresh: a second firing proves refreshing is not the fix.
        self._drifted_up: set[tuple[str, str]] = set()
        # Rolling (kernel, requested core, measured s, measured J) rows.
        self._window: deque[tuple[KernelIR, int, float, float]] = deque(
            maxlen=int(window)
        )

    # -------------------------------------------------------------- streams

    def run_stream(
        self,
        kernels: Sequence[KernelIR],
        *,
        deadline_s: float,
        rounds: int = 1,
    ) -> StreamReport:
        """Run ``rounds`` passes over ``kernels`` against one deadline."""
        if not kernels:
            raise ValidationError("run_stream needs at least one kernel")
        if not deadline_s > 0.0:
            raise ValidationError(f"deadline_s must be positive ({deadline_s!r})")
        if int(rounds) < 1:
            raise ValidationError(f"rounds must be >= 1 ({rounds!r})")
        sequence = [kernel for _ in range(int(rounds)) for kernel in kernels]
        start_t = self.gpu.clock.now
        start_events = len(self.queue.events)
        outcomes = [
            self._launch(sequence, pos, start_t, float(deadline_s))
            for pos in range(len(sequence))
        ]
        self.queue.wait()
        elapsed = self.gpu.clock.now - start_t
        energy = sum(
            event.record.energy_j
            for event in self.queue.events[start_events:]
            if event.record is not None
        )
        met = elapsed <= deadline_s * (1.0 + DEADLINE_RTOL)
        self.trace.count("adapt.streams")
        if not met:
            self.trace.count("adapt.stream_misses")
        self.trace.instant(
            self.gpu.clock.now,
            "adapt",
            "adapt.stream",
            "met" if met else "missed",
            deadline_s=float(deadline_s),
            elapsed_s=float(elapsed),
            level=self.ladder.level.name,
        )
        return StreamReport(
            deadline_s=float(deadline_s),
            elapsed_s=float(elapsed),
            energy_j=float(energy),
            met=met,
            final_level=self.ladder.level,
            launches=tuple(outcomes),
        )

    # ------------------------------------------------------------- launches

    def _launch(
        self,
        sequence: Sequence[KernelIR],
        pos: int,
        start_t: float,
        deadline_s: float,
    ) -> LaunchOutcome:
        kernel = sequence[pos]
        budget = start_t + deadline_s - self.gpu.clock.now
        allocated = self._allocate(sequence, pos, budget)
        level = self.ladder.level
        calibration = False
        predicted_s: float | None = None
        predicted_j: float | None = None
        if level <= LadderLevel.REFRESHED:
            scales = self._scales.get(kernel.name)
            if scales is None:
                # First sighting: measure once at the top clock to anchor
                # the predicted shapes to absolute seconds/joules.
                calibration = True
                idx = self._max_idx
            else:
                abs_t, abs_e = self._calibrated_curves(kernel, scales)
                idx = deadline_index(abs_t, abs_e, max(allocated, 0.0))
                if abs_t[idx] > allocated:
                    # No clock is predicted to fit the share: catch up at
                    # the top clock rather than trusting a stale argmin.
                    idx = self._max_idx
                predicted_s = float(abs_t[idx])
                predicted_j = float(abs_e[idx])
            core = int(self.spec.core_freqs_mhz[idx])
        elif level is LadderLevel.STATIC:
            core = self._static_core(kernel)
        else:
            core = int(self.spec.core_freqs_mhz[self._max_idx])

        event = self.queue.submit(
            self.spec.default_mem_mhz,
            core,
            lambda h, k=kernel: h.parallel_for(k.work_items, k),
        )
        event.wait()
        measured_s = event.duration_s
        measured_j = self.queue.kernel_energy_consumption(event)
        assert event.record is not None
        t_end = event.end_s
        self._window.append((kernel, core, measured_s, measured_j))
        if calibration:
            self._calibrate(kernel, core, measured_s, measured_j)
        elif predicted_s is not None and predicted_j is not None:
            self._absorb_residuals(
                t_end, kernel, measured_s, predicted_s, measured_j, predicted_j
            )
            # Track: re-anchor the scales to this measurement, so the
            # detector sees *innovations* (changes), not the model's
            # constant per-kernel shape bias accumulated forever.
            self._calibrate(kernel, core, measured_s, measured_j)
        met = allocated > 0.0 and measured_s <= allocated * (1.0 + DEADLINE_RTOL)
        if (
            not calibration
            and self.ladder.level >= LadderLevel.STATIC
            and measured_s > max(allocated, 0.0) * self.miss_grace
        ):
            # From STATIC up there is no residual stream left to catch
            # degradation — a measured budget overrun is the signal. The
            # current (post-residual) rung decides: a launch whose drift
            # just forced the static fallback *and* blew its share shows
            # the frozen plan cannot protect the deadline either.
            self._escalate_miss(t_end, kernel, measured_s, allocated)
        return LaunchOutcome(
            kernel=kernel.name,
            level=level,
            core_mhz=core,
            allocated_s=float(allocated),
            measured_s=float(measured_s),
            energy_j=float(event.record.energy_j),
            predicted_s=predicted_s,
            met=met,
            calibration=calibration,
        )

    # ---------------------------------------------------------- predictions

    def _calibrated_curves(
        self, kernel: KernelIR, scales: tuple[float, float]
    ) -> tuple[np.ndarray, np.ndarray]:
        curves = self.predictor.metric_curves(kernel)
        abs_t = np.maximum(curves["time"], _SHAPE_FLOOR) * scales[0]
        abs_e = np.maximum(curves["energy"], _SHAPE_FLOOR) * scales[1]
        anchor = self._anchors.get(kernel.name)
        if anchor is not None:
            # Deadline-safety guard against a refresh gone optimistic:
            # floor every predicted time at perfect frequency scaling
            # from the latest measurement. Above the anchor clock this is
            # a physical bound (runtime cannot improve super-linearly in
            # clock); below it, it prices every kernel as compute-bound —
            # pessimistic for memory-bound kernels, which costs saving,
            # never the deadline.
            idx, measured_s = anchor
            bound = measured_s * (self._freqs[idx] / self._freqs)
            abs_t = np.maximum(abs_t, bound)
        return abs_t, abs_e

    def _calibrate(
        self, kernel: KernelIR, core_mhz: int, measured_s: float, measured_j: float
    ) -> None:
        """Anchor a kernel's predicted shapes to one live measurement."""
        curves = self.predictor.metric_curves(kernel)
        idx = int(np.argmin(np.abs(self._freqs - core_mhz)))
        scale_t = measured_s / float(max(curves["time"][idx], _SHAPE_FLOOR))
        scale_e = measured_j / float(max(curves["energy"][idx], _SHAPE_FLOOR))
        self._scales[kernel.name] = (scale_t, scale_e)
        self._anchors[kernel.name] = (idx, float(measured_s))
        self.predictor.calibrate(kernel, scale_t, scale_e)

    def _nominal_s(self, kernel: KernelIR) -> float | None:
        """Calibrated predicted time at the top clock (budget weighting)."""
        scales = self._scales.get(kernel.name)
        if scales is None:
            return None
        curves = self.predictor.metric_curves(kernel)
        return scales[0] * float(max(curves["time"][self._max_idx], _SHAPE_FLOOR))

    def _allocate(
        self, sequence: Sequence[KernelIR], pos: int, budget_s: float
    ) -> float:
        """This launch's share of the remaining budget (nominal-weighted)."""
        if budget_s <= 0.0:
            return 0.0
        nominals = [self._nominal_s(kernel) for kernel in sequence[pos:]]
        known = [value for value in nominals if value is not None]
        fallback = sum(known) / len(known) if known else 1.0
        weights = [value if value is not None else fallback for value in nominals]
        return budget_s * weights[0] / sum(weights)

    def _static_core(self, kernel: KernelIR) -> int:
        """The frozen plan's clock; a missing entry pins MAX_PERF."""
        try:
            _mem, core = self.static_plan.lookup(kernel.name, self.static_target)
            return int(core)
        except ConfigurationError as exc:
            self.ladder.escalate_to(
                self.gpu.clock.now,
                LadderLevel.MAX_PERF,
                "static-plan-missing",
                detail=str(exc),
            )
            return int(self.spec.core_freqs_mhz[self._max_idx])

    # --------------------------------------------------------------- ladder

    def _absorb_residuals(
        self,
        t: float,
        kernel: KernelIR,
        measured_s: float,
        predicted_s: float,
        measured_j: float,
        predicted_j: float,
    ) -> None:
        events: list[DriftEvent] = []
        for metric, measured, predicted in (
            ("time", measured_s, predicted_s),
            ("energy", measured_j, predicted_j),
        ):
            fired = self.detector.observe(
                t, kernel.name, metric, measured, predicted
            )
            if fired is not None:
                events.append(fired)
        if not events:
            return
        detail = ";".join(f"{e.kernel}/{e.metric}/{e.direction}" for e in events)
        up = [event for event in events if event.direction == "up"]
        level = self.ladder.level
        if level is LadderLevel.MODEL:
            self.ladder.escalate_to(t, LadderLevel.REFRESHED, "drift", detail)
            self._drifted_up.update((e.kernel, e.metric) for e in up)
            self._try_refresh(t)
        elif level is LadderLevel.REFRESHED:
            repeats = [
                e for e in up if (e.kernel, e.metric) in self._drifted_up
            ]
            if repeats:
                # This stream already drifted up and forced a refresh;
                # firing again means refreshing is not the fix — stop
                # trusting online prediction, replay the frozen plan.
                self.ladder.escalate_to(t, LadderLevel.STATIC, "drift", detail)
                self.detector.reset()
            else:
                # A stream drifting for the first time (or pure "down"
                # pessimism after a throttle window ends): fold the new
                # evidence into another refresh rather than retreating.
                self._drifted_up.update((e.kernel, e.metric) for e in up)
                self._try_refresh(t)

    def _escalate_miss(
        self, t: float, kernel: KernelIR, measured_s: float, allocated_s: float
    ) -> None:
        detail = f"{kernel.name}: {measured_s:.6f}s > {allocated_s:.6f}s share"
        self.ladder.escalate(t, "deadline-miss", detail)

    def _try_refresh(self, t: float) -> None:
        """Refresh the bundle from the live window; fall back on failure."""
        try:
            window = self._window_training_set()
            self.bundle.refresh(window, fraction=self.refresh_fraction)
        except ReproError as exc:
            self.ladder.escalate_to(
                t, LadderLevel.STATIC, "refresh-failed", detail=str(exc)
            )
            self.detector.reset()
            return
        self.predictor.invalidate()
        self._recalibrate()
        self.detector.reset()
        self.refresh_count += 1
        self.trace.count("adapt.refreshes")
        self.trace.instant(
            t, "adapt", "adapt.refresh", "bundle", rows=window.n_samples
        )

    # --------------------------------------------------------------- window

    def _window_training_set(self) -> TrainingSet:
        """Assemble the rolling window into a refresh training set."""
        rows = list(self._window)
        if len(rows) < self.min_refresh_rows:
            raise ValidationError(
                f"refresh window has {len(rows)} rows; "
                f"needs >= {self.min_refresh_rows}"
            )
        if len({core for _, core, _, _ in rows}) < 2:
            raise ValidationError(
                "refresh window covers a single clock; needs >= 2 for a fit"
            )
        ids: dict[str, int] = {}
        X = np.empty((len(rows), len(DESIGN_COLUMNS)))
        time_s = np.empty(len(rows))
        energy_j = np.empty(len(rows))
        kernel_ids = np.empty(len(rows), dtype=int)
        for i, (kernel, core, measured_s, measured_j) in enumerate(rows):
            X[i, :-1] = extract_features(kernel)
            X[i, -1] = core
            time_s[i] = measured_s
            energy_j[i] = measured_j
            kernel_ids[i] = ids.setdefault(kernel.name, len(ids))
        return TrainingSet(
            X=X,
            time_s=time_s,
            energy_j=energy_j,
            edp_js=np.asarray(edp(energy_j, time_s)),
            ed2p_js2=np.asarray(ed2p(energy_j, time_s)),
            device_name=self.spec.name,
            kernel_ids=kernel_ids,
        )

    def _recalibrate(self) -> None:
        """Re-anchor scales from each kernel's most recent window row."""
        latest: dict[str, tuple[KernelIR, int, float, float]] = {}
        for kernel, core, measured_s, measured_j in self._window:
            latest[kernel.name] = (kernel, core, measured_s, measured_j)
        for kernel, core, measured_s, measured_j in latest.values():
            self._calibrate(kernel, core, measured_s, measured_j)
