"""Streaming adaptation plane: drift detection and the degradation ladder.

SYnergy's frequency plans are *static*: compiled once from models trained
on a healthy board. When the device's power/time curve shifts at runtime —
a thermal-throttle window, an aged power model — the plan silently goes
stale. ``repro.adapt`` wraps the static pipeline in a supervised
degradation ladder (ROADMAP item 3, after the deadline-aware contract of
arXiv:2004.08177):

- :mod:`~repro.adapt.drift` — a CUSUM-style residual monitor over
  measured-vs-predicted per-launch time/energy, emitting typed
  :class:`~repro.adapt.drift.DriftEvent`s,
- :mod:`~repro.adapt.ladder` — the four-level escalation state machine
  (MODEL → REFRESHED → STATIC → MAX_PERF), monotone in severity,
- :mod:`~repro.adapt.controller` — the deadline-budgeted streaming
  controller driving a :class:`~repro.core.queue.SynergyQueue`,
- :mod:`~repro.adapt.chaos` — the seeded thermal-drift chaos scenario
  comparing the adaptive ladder against a stale static plan.
"""

from repro.adapt.controller import AdaptiveController, LaunchOutcome, StreamReport
from repro.adapt.drift import DriftDetector, DriftEvent
from repro.adapt.ladder import DegradationLadder, LadderLevel, LadderTransition

__all__ = [
    "AdaptiveController",
    "LaunchOutcome",
    "StreamReport",
    "DriftDetector",
    "DriftEvent",
    "DegradationLadder",
    "LadderLevel",
    "LadderTransition",
]
