"""The degradation ladder: a monotone four-level escalation machine.

When drift or deadline misses are detected the controller never "tries
things" ad hoc — it walks a fixed ladder of increasingly conservative
policies, each trading energy saving for confidence:

- ``MODEL``     — predicted curves from the (possibly refreshed) bundle,
- ``REFRESHED`` — the bundle has been incrementally refreshed from the
  live measurement window; predictions now reflect the shifted regime,
- ``STATIC``    — abandon online prediction, replay the frozen
  compile-time plan (the SYnergy baseline),
- ``MAX_PERF``  — pin the top clock; correctness over saving.

Transitions are monotone by construction — :meth:`DegradationLadder
.escalate_to` refuses to move down — so severity can only increase over a
board's degraded lifetime, and every transition is logged as a typed
:class:`LadderTransition` plus an ``adapt.transition`` trace instant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.session import TraceSession, resolve_trace


class LadderLevel(enum.IntEnum):
    """Ladder rungs, ordered by severity (higher = more conservative)."""

    MODEL = 0
    REFRESHED = 1
    STATIC = 2
    MAX_PERF = 3


@dataclass(frozen=True)
class LadderTransition:
    """One escalation step, with the evidence that forced it."""

    t: float
    from_level: LadderLevel
    to_level: LadderLevel
    reason: str  # e.g. "drift", "deadline-miss", "refresh-failed"
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready form (transition logs are replay-compared)."""
        return {
            "t": self.t,
            "from": self.from_level.name,
            "to": self.to_level.name,
            "reason": self.reason,
            "detail": self.detail,
        }


class DegradationLadder:
    """Tracks the current rung and records every escalation."""

    def __init__(self, trace: TraceSession | None = None) -> None:
        self._level = LadderLevel.MODEL
        self.trace = resolve_trace(trace)
        self.transitions: list[LadderTransition] = []

    @property
    def level(self) -> LadderLevel:
        """The current rung."""
        return self._level

    def escalate_to(
        self, t: float, level: LadderLevel, reason: str, detail: str = ""
    ) -> LadderTransition | None:
        """Move up to ``level``; no-op (returns None) if already at or past it.

        Monotonicity is enforced here rather than validated after the
        fact: there is no API to de-escalate, so a transition log that
        ever moves down cannot be produced.
        """
        level = LadderLevel(level)
        if level <= self._level:
            return None
        transition = LadderTransition(
            t=float(t),
            from_level=self._level,
            to_level=level,
            reason=reason,
            detail=detail,
        )
        self._level = level
        self.transitions.append(transition)
        self.trace.count("adapt.transitions")
        self.trace.instant(
            float(t),
            "adapt",
            "adapt.transition",
            f"{transition.from_level.name}->{level.name}",
            reason=reason,
            detail=detail,
        )
        return transition

    def escalate(
        self, t: float, reason: str, detail: str = ""
    ) -> LadderTransition | None:
        """Move up exactly one rung (no-op at ``MAX_PERF``)."""
        if self._level is LadderLevel.MAX_PERF:
            return None
        return self.escalate_to(t, LadderLevel(self._level + 1), reason, detail)
