"""Seeded thermal-drift chaos scenario: adaptive ladder vs stale static plan.

Four runs on fresh V100 boards, all over the same kernel stream and the
same per-stream deadlines (derived from a clean top-clock reference run):

- ``max-perf``      — every launch at the top clock (clean board); its
  per-stream times, scaled by :data:`DEADLINE_SLACK`, define the deadlines
  and its energy is the savings baseline,
- ``static-clean``  — the compile-time SLA plan on a clean board: the
  pre-drift energy saving,
- ``static-fault``  — the *same frozen plan* under two injected
  ``hw.thermal_throttle`` windows: the plan is stale during the windows
  and (by construction of the scenario) misses at least one deadline,
- ``adaptive-fault``— the :class:`~repro.adapt.controller
  .AdaptiveController` under the identical fault plan: drift detection,
  an incremental model refresh, static fallback and finally a MAX_PERF
  pin — a full ladder traversal — while missing no deadline.

Everything is a pure function of ``seed`` and virtual time, so the drift
event and ladder transition logs replay byte-for-byte (checked by the
``adapt`` validation section and the ``thermal-drift`` golden trace).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.adapt.controller import AdaptiveController, StreamReport
from repro.apps.syclbench.definitions import get_benchmark
from repro.core.compiler import FrequencyPlan, SynergyCompiler
from repro.core.models import EnergyModelBundle
from repro.core.queue import SynergyQueue
from repro.experiments.training import microbench_training_set
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.device import SimulatedGPU
from repro.hw.specs import NVIDIA_V100
from repro.kernelir.kernel import KernelIR
from repro.kernelir.microbench import generate_microbenchmarks
from repro.metrics.targets import DEADLINE_RTOL, SLA_SLACK, EnergyTarget
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.obs.session import TraceSession, absorb_fault_log, absorb_queue

#: Kernels in each stream (§8 suite members, scaled like the ablation
#: bench so every launch spans several power-sensor sampling periods).
KERNEL_NAMES: tuple[str, ...] = ("sobel7", "nbody", "syrk")
WORK_ITEMS = 1 << 26
MIX_SCALE = 32.0

#: Stream shape: per-stream passes over the kernel bank, and stream count.
ROUNDS = 2
STREAMS = 6

#: Deadline slack over the top-clock stream time, and the (tighter) SLA
#: slack the static plan is compiled for — its margin under the deadline
#: is what the throttle windows eat.
DEADLINE_SLACK = 1.4
COMPILE_SLACK = 1.35

#: The two throttle windows, in units of the top-clock stream time ``T``:
#: a sustained stream-2 cap that the model rungs ride out via drift-driven
#: refreshes, and a harsh late cap that proves refreshing is no longer
#: enough, forcing the static fallback and finally the MAX_PERF pin.
WINDOW1 = {"start": 1.23, "duration": 0.3, "cap_mhz": 480}
WINDOW2 = {"start": 5.38, "duration": 0.25, "cap_mhz": 550}

#: Refresh window floor for the adaptive run: the first drift fires on
#: stream 2's opening launch, when the rolling window holds stream 1's
#: six rows plus the drifting launch itself.
MIN_REFRESH_ROWS = 6


@dataclass(frozen=True)
class RunSummary:
    """Deadline and energy outcome of one run (all streams)."""

    label: str
    streams_met: int
    streams_missed: int
    elapsed_s: float
    energy_j: float
    stream_elapsed_s: tuple[float, ...]
    stream_met: tuple[bool, ...]

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "streams_met": self.streams_met,
            "streams_missed": self.streams_missed,
            "elapsed_s": self.elapsed_s,
            "energy_j": self.energy_j,
            "stream_elapsed_s": list(self.stream_elapsed_s),
            "stream_met": list(self.stream_met),
        }


@dataclass(frozen=True)
class ThermalDriftComparison:
    """The four-run comparison plus the adaptive run's event logs."""

    seed: int
    deadlines_s: tuple[float, ...]
    max_perf: RunSummary
    static_clean: RunSummary
    static_fault: RunSummary
    adaptive_fault: RunSummary
    drift_events: tuple[dict, ...]
    transitions: tuple[dict, ...]
    refreshes: int
    stream_reports: tuple[StreamReport, ...]

    @property
    def static_saving(self) -> float:
        """Pre-drift energy saving of the static plan vs the top clock."""
        return 1.0 - self.static_clean.energy_j / self.max_perf.energy_j

    @property
    def adaptive_saving(self) -> float:
        """Adaptive energy saving under the fault plan vs the top clock."""
        return 1.0 - self.adaptive_fault.energy_j / self.max_perf.energy_j

    @property
    def recovery_fraction(self) -> float:
        """Fraction of the pre-drift saving the ladder recovers."""
        if self.static_saving <= 0.0:
            return 0.0
        return self.adaptive_saving / self.static_saving

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "deadlines_s": list(self.deadlines_s),
            "runs": [
                run.as_dict()
                for run in (
                    self.max_perf,
                    self.static_clean,
                    self.static_fault,
                    self.adaptive_fault,
                )
            ],
            "drift_events": list(self.drift_events),
            "transitions": list(self.transitions),
            "refreshes": self.refreshes,
            "static_saving": self.static_saving,
            "adaptive_saving": self.adaptive_saving,
            "recovery_fraction": self.recovery_fraction,
        }


def scenario_kernels() -> list[KernelIR]:
    """The scaled kernel bank every run streams over."""
    kernels = []
    for name in KERNEL_NAMES:
        kernel = get_benchmark(name).kernel
        kernels.append(
            dataclasses.replace(
                kernel.with_work_items(WORK_ITEMS),
                mix=kernel.mix.scaled(MIX_SCALE),
            )
        )
    return kernels


def train_adaptive_bundle(seed: int) -> EnergyModelBundle:
    """Linear time + small random-forest energy bundle (refresh-capable).

    Trained on the micro-benchmark suite scaled to the scenario's launch
    magnitude so the scenario kernels sit inside (not 10^6× outside) the
    training feature range — extrapolating the basis-expanded models far
    off-distribution produces meaningless shapes.
    """
    suite = [
        dataclasses.replace(
            kernel.with_work_items(WORK_ITEMS), mix=kernel.mix.scaled(MIX_SCALE)
        )
        for kernel in generate_microbenchmarks(random_count=8)
    ]
    training = microbench_training_set(NVIDIA_V100, freq_stride=12, kernels=suite)
    return EnergyModelBundle(
        time_factory=LinearRegression,
        energy_factory=lambda: RandomForestRegressor(
            n_estimators=16, max_depth=12, min_samples_leaf=2, seed=seed
        ),
        edp_factory=LinearRegression,
        ed2p_factory=LinearRegression,
        seed=seed,
    ).fit(training)


def _summarize(
    label: str,
    gpu: SimulatedGPU,
    queue: SynergyQueue,
    kernels: Sequence[KernelIR],
    deadlines: Sequence[float],
    submit_one,
) -> RunSummary:
    """Run back-to-back deadline streams through ``submit_one``."""
    stream_elapsed: list[float] = []
    stream_met: list[bool] = []
    total_energy = 0.0
    for deadline in deadlines:
        t0 = gpu.clock.now
        n0 = len(queue.events)
        for _ in range(ROUNDS):
            for kernel in kernels:
                submit_one(kernel).wait()
        queue.wait()
        elapsed = gpu.clock.now - t0
        stream_elapsed.append(float(elapsed))
        stream_met.append(elapsed <= deadline * (1.0 + DEADLINE_RTOL))
        total_energy += sum(
            event.record.energy_j
            for event in queue.events[n0:]
            if event.record is not None
        )
    met = sum(stream_met)
    return RunSummary(
        label=label,
        streams_met=met,
        streams_missed=len(stream_met) - met,
        elapsed_s=float(sum(stream_elapsed)),
        energy_j=float(total_energy),
        stream_elapsed_s=tuple(stream_elapsed),
        stream_met=tuple(stream_met),
    )


def _run_max_perf(
    kernels: Sequence[KernelIR], deadlines: Sequence[float]
) -> RunSummary:
    gpu = SimulatedGPU(NVIDIA_V100, index=0)
    queue = SynergyQueue(gpu)
    top = int(max(NVIDIA_V100.core_freqs_mhz))
    return _summarize(
        "max-perf",
        gpu,
        queue,
        kernels,
        deadlines,
        lambda kernel: queue.submit(
            NVIDIA_V100.default_mem_mhz,
            top,
            lambda h, k=kernel: h.parallel_for(k.work_items, k),
        ),
    )


def _run_static(
    label: str,
    plan: FrequencyPlan,
    target: EnergyTarget,
    kernels: Sequence[KernelIR],
    deadlines: Sequence[float],
    fault_plan: FaultPlan | None,
) -> RunSummary:
    gpu = SimulatedGPU(NVIDIA_V100, index=0)
    if fault_plan is not None:
        gpu.fault_injector = fault_plan.injector(None)
    queue = SynergyQueue(gpu, plan=plan)
    return _summarize(
        label,
        gpu,
        queue,
        kernels,
        deadlines,
        lambda kernel: queue.submit(
            target, lambda h, k=kernel: h.parallel_for(k.work_items, k)
        ),
    )


def _fault_plan(seed: int, stream_s: float) -> FaultPlan:
    """The two throttle windows, positioned in units of the stream time."""
    specs = tuple(
        FaultSpec(
            site="hw.thermal_throttle",
            at_s=window["start"] * stream_s,
            duration_s=window["duration"] * stream_s,
            param=window["cap_mhz"],
            target=0,
        )
        for window in (WINDOW1, WINDOW2)
    )
    return FaultPlan(seed=seed, specs=specs)


def run_thermal_drift_comparison(
    seed: int = 7, trace: TraceSession | None = None
) -> ThermalDriftComparison:
    """Run the four-way comparison; only the adaptive run is traced."""
    kernels = scenario_kernels()
    bundle = train_adaptive_bundle(seed)
    target = SLA_SLACK(COMPILE_SLACK)
    compiled = SynergyCompiler(bundle, NVIDIA_V100).compile(kernels, [target])

    # Top-clock reference: defines deadlines, fault-window placement and
    # the savings baseline. Probe one stream first to size the deadlines.
    probe = _run_max_perf(kernels, (float("inf"),))
    stream_s = probe.stream_elapsed_s[0]
    deadlines = tuple(DEADLINE_SLACK * stream_s for _ in range(STREAMS))
    max_perf = _run_max_perf(kernels, deadlines)
    fault_plan = _fault_plan(seed, stream_s)

    static_clean = _run_static(
        "static-clean", compiled.plan, target, kernels, deadlines, None
    )
    static_fault = _run_static(
        "static-fault", compiled.plan, target, kernels, deadlines, fault_plan
    )

    # Adaptive run: a fresh board under the identical fault plan, with the
    # trace threaded through the queue, detector, ladder and injector.
    gpu = SimulatedGPU(NVIDIA_V100, index=0)
    injector = fault_plan.injector(trace)
    gpu.fault_injector = injector
    queue = SynergyQueue(gpu, trace=trace)
    controller = AdaptiveController(
        queue,
        bundle,
        compiled.plan,
        target,
        trace=trace,
        min_refresh_rows=MIN_REFRESH_ROWS,
    )
    reports = [
        controller.run_stream(kernels, deadline_s=deadline, rounds=ROUNDS)
        for deadline in deadlines
    ]
    adaptive = RunSummary(
        label="adaptive-fault",
        streams_met=sum(report.met for report in reports),
        streams_missed=sum(not report.met for report in reports),
        elapsed_s=float(sum(report.elapsed_s for report in reports)),
        energy_j=float(sum(report.energy_j for report in reports)),
        stream_elapsed_s=tuple(report.elapsed_s for report in reports),
        stream_met=tuple(report.met for report in reports),
    )

    comparison = ThermalDriftComparison(
        seed=seed,
        deadlines_s=deadlines,
        max_perf=max_perf,
        static_clean=static_clean,
        static_fault=static_fault,
        adaptive_fault=adaptive,
        drift_events=tuple(e.as_dict() for e in controller.detector.events),
        transitions=tuple(t.as_dict() for t in controller.ladder.transitions),
        refreshes=controller.refresh_count,
        stream_reports=tuple(reports),
    )
    if trace is not None and trace.enabled:
        absorb_queue(trace, queue)
        absorb_fault_log(trace, injector.log)
        trace.gauge("adapt.final_level", float(controller.ladder.level))
        trace.gauge("adapt.static_saving", comparison.static_saving)
        trace.gauge("adapt.adaptive_saving", comparison.adaptive_saving)
        trace.gauge("adapt.recovery_fraction", comparison.recovery_fraction)
    return comparison
