"""Windowed drift detection over measured-vs-predicted residuals.

The adaptive controller feeds every non-calibration launch into a
:class:`DriftDetector`: the measured time/energy from the
:class:`~repro.core.profiling.EnergyProfiler` path against the value the
model bundle predicted for the requested clock. The detector runs a
two-sided CUSUM per ``(kernel, metric)`` stream on the log-ratio residual
``r = log(measured / predicted)``:

- ``pos ← max(0, pos + r − slack)`` accumulates persistent slow-downs /
  over-consumption beyond the ``slack`` dead-band,
- ``neg ← max(0, neg − r − slack)`` accumulates the opposite direction
  (the model became pessimistic, e.g. a throttle window just ended).

Crossing ``threshold`` emits a typed :class:`DriftEvent`, resets that
stream and bumps the ``adapt.drift_events`` counter — so the event log is
a deterministic function of the residual sequence, replayable byte-for-
byte under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.obs.session import TraceSession, resolve_trace

#: The two residual streams a launch feeds.
DRIFT_METRICS: tuple[str, ...] = ("time", "energy")


@dataclass(frozen=True)
class DriftEvent:
    """One detector firing: a sustained residual shift on one stream."""

    t: float
    kernel: str
    metric: str  # "time" | "energy"
    direction: str  # "up" = measured above prediction, "down" = below
    statistic: float  # CUSUM value at the crossing
    threshold: float
    samples: int  # residuals absorbed on this stream since its last reset

    def as_dict(self) -> dict:
        """JSON-ready form (drift logs are replay-compared byte-for-byte)."""
        return {
            "t": self.t,
            "kernel": self.kernel,
            "metric": self.metric,
            "direction": self.direction,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "samples": self.samples,
        }


class _StreamState:
    """Mutable CUSUM state for one ``(kernel, metric)`` stream."""

    __slots__ = ("pos", "neg", "samples")

    def __init__(self) -> None:
        self.pos = 0.0
        self.neg = 0.0
        self.samples = 0


class DriftDetector:
    """Two-sided CUSUM residual monitor emitting :class:`DriftEvent` s.

    ``slack`` is the per-sample dead-band on the log-ratio residual: it
    must exceed the model's typical shape error, or healthy bias would
    accumulate into false alarms. ``threshold`` is the accumulated excess
    that fires; ``min_samples`` gates firing until a stream has absorbed
    enough residuals to mean anything.
    """

    def __init__(
        self,
        *,
        slack: float = 0.08,
        threshold: float = 0.5,
        min_samples: int = 2,
        trace: TraceSession | None = None,
    ) -> None:
        if not slack > 0.0:
            raise ValidationError(f"slack must be positive ({slack!r})")
        if not threshold > 0.0:
            raise ValidationError(f"threshold must be positive ({threshold!r})")
        if int(min_samples) < 1:
            raise ValidationError(f"min_samples must be >= 1 ({min_samples!r})")
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.trace = resolve_trace(trace)
        self.events: list[DriftEvent] = []
        self._streams: dict[tuple[str, str], _StreamState] = {}

    def observe(
        self, t: float, kernel: str, metric: str, measured: float, predicted: float
    ) -> DriftEvent | None:
        """Absorb one residual; return the event if this sample fires.

        ``t`` is the virtual timestamp of the measurement (used for the
        event and its trace instant). Non-positive measurements or
        predictions are rejected: the residual is a log-ratio.
        """
        if metric not in DRIFT_METRICS:
            raise ValidationError(
                f"unknown drift metric {metric!r}; known: {list(DRIFT_METRICS)}"
            )
        if not (measured > 0.0 and predicted > 0.0):
            raise ValidationError(
                f"drift residuals need positive measured/predicted values "
                f"({measured!r}, {predicted!r})"
            )
        residual = math.log(measured / predicted)
        key = (kernel, metric)
        state = self._streams.get(key)
        if state is None:
            state = self._streams[key] = _StreamState()
        state.samples += 1
        state.pos = max(0.0, state.pos + residual - self.slack)
        state.neg = max(0.0, state.neg - residual - self.slack)
        if state.samples < self.min_samples:
            return None
        if state.pos > self.threshold:
            direction, statistic = "up", state.pos
        elif state.neg > self.threshold:
            direction, statistic = "down", state.neg
        else:
            return None
        event = DriftEvent(
            t=float(t),
            kernel=kernel,
            metric=metric,
            direction=direction,
            statistic=float(statistic),
            threshold=self.threshold,
            samples=state.samples,
        )
        self.events.append(event)
        self._streams[key] = _StreamState()
        self.trace.count("adapt.drift_events")
        self.trace.instant(
            float(t),
            "adapt",
            "adapt.drift",
            f"{kernel}/{metric}",
            direction=direction,
            statistic=float(statistic),
            samples=event.samples,
        )
        return event

    def reset(self) -> None:
        """Forget all stream state (events survive).

        Called after a model refresh: post-refresh residuals are measured
        against a different model, so pre-refresh accumulation is void.
        """
        self._streams.clear()
