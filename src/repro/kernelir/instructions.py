"""Static instruction mix of a device kernel.

The ten instruction classes mirror Table 1 of the paper exactly; they are the
quantities the SYnergy compiler pass extracts from SYCL kernels and feeds to
the energy models. Counts are *static per-work-item* counts — the number of
instructions of each class in the kernel body for one work-item.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ValidationError


@dataclass(frozen=True, slots=True)
class InstructionMix:
    """Per-work-item static instruction counts (Table 1 of the paper).

    Attributes
    ----------
    int_add:
        Integer additions and subtractions.
    int_mul:
        Integer multiplications.
    int_div:
        Integer divisions.
    int_bw:
        Integer bitwise operations.
    float_add:
        Floating point additions and subtractions.
    float_mul:
        Floating point multiplications.
    float_div:
        Floating point divisions.
    sf:
        Special functions (``exp``, ``log``, ``sqrt``, trigonometry, ...).
    gl_access:
        Global memory accesses (loads + stores).
    loc_access:
        Local (shared) memory accesses.
    """

    int_add: float = 0.0
    int_mul: float = 0.0
    int_div: float = 0.0
    int_bw: float = 0.0
    float_add: float = 0.0
    float_mul: float = 0.0
    float_div: float = 0.0
    sf: float = 0.0
    gl_access: float = 0.0
    loc_access: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)):
                raise ValidationError(f"instruction count {f.name} must be numeric")
            if value < 0:
                raise ValidationError(
                    f"instruction count {f.name} cannot be negative ({value!r})"
                )

    def as_dict(self) -> dict[str, float]:
        """Return the mix as an ordered ``{class: count}`` mapping."""
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}

    @property
    def compute_ops(self) -> float:
        """Total arithmetic operations (everything except memory accesses)."""
        return (
            self.int_add
            + self.int_mul
            + self.int_div
            + self.int_bw
            + self.float_add
            + self.float_mul
            + self.float_div
            + self.sf
        )

    @property
    def memory_ops(self) -> float:
        """Total memory operations (global + local)."""
        return self.gl_access + self.loc_access

    @property
    def total_ops(self) -> float:
        """Total static instruction count."""
        return self.compute_ops + self.memory_ops

    def arithmetic_intensity(self, word_bytes: int = 4) -> float:
        """Compute ops per byte of *global* traffic (roofline x-axis).

        Kernels that never touch global memory get ``inf`` — they are purely
        compute-bound by construction.
        """
        traffic = self.gl_access * word_bytes
        if traffic == 0:
            return float("inf")
        return self.compute_ops / traffic

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a copy with every count multiplied by ``factor``.

        Used by the micro-benchmark generator to sweep work per item while
        preserving the instruction *ratio* of a template kernel.
        """
        if factor < 0:
            raise ValidationError(f"scale factor cannot be negative ({factor!r})")
        return InstructionMix(**{k: v * factor for k, v in self.as_dict().items()})
