"""Synthetic micro-benchmark generation for model training (paper §6.1).

The paper builds its training set not from existing benchmarks but from
micro-benchmarks spanning the space of instruction mixes. The generator below
produces :class:`~repro.kernelir.kernel.KernelIR` kernels along three axes:

- *archetypes*: pure streams of one instruction class (isolates per-class
  frequency sensitivity),
- *roofline ramps*: fixed memory traffic with increasing compute per byte
  (sweeps the compute-bound/memory-bound transition where the interesting
  energy behaviour lives),
- *random mixes*: Dirichlet-weighted combinations of all classes (fills the
  space between the structured points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR

#: Instruction classes that the archetype generator emits pure streams of.
_ARCHETYPE_CLASSES: tuple[str, ...] = (
    "int_add",
    "int_mul",
    "int_div",
    "int_bw",
    "float_add",
    "float_mul",
    "float_div",
    "sf",
)


@dataclass(frozen=True)
class MicrobenchGenerator:
    """Deterministic micro-benchmark factory.

    Parameters
    ----------
    seed:
        Root seed for the random-mix axis.
    work_items:
        Launch size shared by all generated kernels; large enough that
        kernel runtimes dominate the 15 ms power-sampling granularity.
    """

    seed: int = 7
    work_items: int = 1 << 22

    #: Work-per-item scales for the archetype axis: spans light stencils to
    #: heavy unrolled loop nests, so application kernels fall inside (not
    #: outside) the training feature range.
    ARCHETYPE_SCALES: tuple[float, ...] = (16.0, 64.0, 256.0)

    def archetypes(self) -> list[KernelIR]:
        """Pure single-class compute kernels plus pure memory kernels."""
        kernels: list[KernelIR] = []
        for ops_per_item in self.ARCHETYPE_SCALES:
            for cls in _ARCHETYPE_CLASSES:
                mix = InstructionMix(**{cls: ops_per_item, "gl_access": 2.0})
                kernels.append(
                    KernelIR(
                        name=f"mb_pure_{cls}_{int(ops_per_item)}",
                        mix=mix,
                        work_items=self.work_items,
                    )
                )
        kernels.append(
            KernelIR(
                name="mb_pure_gl_stream",
                mix=InstructionMix(float_add=1.0, gl_access=8.0),
                work_items=self.work_items,
            )
        )
        kernels.append(
            KernelIR(
                name="mb_pure_loc_access",
                mix=InstructionMix(float_add=2.0, gl_access=2.0, loc_access=16.0),
                work_items=self.work_items,
            )
        )
        return kernels

    def roofline_ramp(self, steps: int = 9) -> list[KernelIR]:
        """Kernels sweeping arithmetic intensity from ~0.25 to ~128 ops/byte."""
        kernels: list[KernelIR] = []
        for i in range(steps):
            compute = 2.0 ** (i + 1)  # 2, 4, ..., 2^steps flops per item
            mix = InstructionMix(
                float_add=compute * 0.5,
                float_mul=compute * 0.5,
                gl_access=2.0,
            )
            kernels.append(
                KernelIR(
                    name=f"mb_roofline_{i:02d}",
                    mix=mix,
                    work_items=self.work_items,
                )
            )
        return kernels

    def random_mixes(self, count: int = 24) -> list[KernelIR]:
        """Dirichlet-weighted random instruction mixes (seeded).

        Scales are log-uniform over [8, 800] total ops per item and
        localities uniform over [0, 0.9), covering the streaming-to-cached
        spectrum of real applications.
        """
        rng = make_rng(self.seed)
        names = list(_ARCHETYPE_CLASSES) + ["gl_access", "loc_access"]
        kernels: list[KernelIR] = []
        for i in range(count):
            weights = rng.dirichlet(alpha=[0.6] * len(names))
            scale = float(np.exp(rng.uniform(np.log(8.0), np.log(800.0))))
            counts = {n: float(w * scale) for n, w in zip(names, weights)}
            # Every kernel touches memory at least once per item: a kernel
            # with no output would be dead code for a real compiler.
            counts["gl_access"] = max(counts["gl_access"], 1.0)
            locality = float(rng.uniform(0.0, 0.9))
            kernels.append(
                KernelIR(
                    name=f"mb_random_{i:03d}",
                    mix=InstructionMix(**counts),
                    work_items=self.work_items,
                    locality=locality,
                )
            )
        return kernels

    def generate(self, random_count: int = 24) -> list[KernelIR]:
        """Full micro-benchmark suite: archetypes + ramp + random mixes."""
        return self.archetypes() + self.roofline_ramp() + self.random_mixes(random_count)


def generate_microbenchmarks(
    seed: int = 7, random_count: int = 24, work_items: int = 1 << 22
) -> list[KernelIR]:
    """Convenience wrapper building the default training suite."""
    return MicrobenchGenerator(seed=seed, work_items=work_items).generate(random_count)
