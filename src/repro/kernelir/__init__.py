"""Kernel intermediate representation and static analysis.

This package plays the role of the paper's compiler integration (§3.1, §6.1):
kernels are represented as :class:`~repro.kernelir.kernel.KernelIR` objects
carrying a static instruction mix, and
:func:`~repro.kernelir.features.extract_features` is the feature-extraction
pass that produces the 10-dimensional static feature vector of Table 1.
:mod:`~repro.kernelir.microbench` generates the synthetic micro-benchmarks
used to build the training set.
"""

from repro.kernelir.features import FEATURE_NAMES, extract_features, feature_matrix
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR
from repro.kernelir.microbench import MicrobenchGenerator, generate_microbenchmarks

__all__ = [
    "InstructionMix",
    "KernelIR",
    "FEATURE_NAMES",
    "extract_features",
    "feature_matrix",
    "MicrobenchGenerator",
    "generate_microbenchmarks",
]
