"""The static feature-extraction compiler pass (paper §6.1, Table 1).

In the paper this is an LLVM pass over the SYCL kernel; here it is a pass
over :class:`~repro.kernelir.kernel.KernelIR`. The output is the feature
vector

``k = (k_int_add, k_int_mul, k_int_div, k_int_bw, k_float_add, k_float_mul,
k_float_div, k_sf, k_gl_access, k_loc_access)``

in exactly the order of the paper, suitable for stacking into the training
matrix ``T = (k, f, e, t, edp, ed2p)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.kernelir.kernel import KernelIR

#: Feature names in the canonical (paper) order.
FEATURE_NAMES: tuple[str, ...] = (
    "int_add",
    "int_mul",
    "int_div",
    "int_bw",
    "float_add",
    "float_mul",
    "float_div",
    "sf",
    "gl_access",
    "loc_access",
)

#: Dimensionality of the static feature vector.
N_FEATURES: int = len(FEATURE_NAMES)


def extract_features(kernel: KernelIR) -> np.ndarray:
    """Extract the Table-1 static feature vector from one kernel.

    Returns a float vector of shape ``(10,)`` ordered as
    :data:`FEATURE_NAMES`. Counts are static per-work-item counts, exactly
    what the paper's compiler pass computes (launch size is a runtime
    property and is deliberately *not* part of the static vector).

    ``k_gl_access`` is the *effective* DRAM access count: the pass runs
    after the compiler's locality/caching analysis, so accesses served from
    on-chip storage are discounted. Without this the models are blind to
    the cached-vs-streaming distinction that dominates a kernel's energy
    behaviour (a tiled GEMM would look like a bandwidth monster).
    """
    mix = kernel.mix.as_dict()
    vec = np.array([mix[name] for name in FEATURE_NAMES], dtype=float)
    gl_index = FEATURE_NAMES.index("gl_access")
    vec[gl_index] *= 1.0 - kernel.locality
    return vec


def feature_matrix(kernels: Iterable[KernelIR]) -> np.ndarray:
    """Stack feature vectors of many kernels into an ``(n, 10)`` matrix."""
    rows = [extract_features(k) for k in kernels]
    if not rows:
        return np.empty((0, N_FEATURES), dtype=float)
    return np.vstack(rows)


def describe_features(vector: Sequence[float]) -> dict[str, float]:
    """Label a raw feature vector with the Table-1 feature names."""
    values = list(vector)
    if len(values) != N_FEATURES:
        raise ValueError(
            f"expected {N_FEATURES} features, got {len(values)}"
        )
    return dict(zip(FEATURE_NAMES, map(float, values)))
