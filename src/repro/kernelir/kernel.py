"""Kernel IR: what the SYnergy compiler pass sees for one ``parallel_for``.

A :class:`KernelIR` couples a static :class:`~repro.kernelir.instructions.
InstructionMix` with the launch geometry (number of work-items) and memory
word size. Optionally it carries a host-side ``compute`` callable so example
programs can perform the real computation on NumPy arrays while the simulated
GPU models its time/energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.common.errors import ValidationError
from repro.kernelir.instructions import InstructionMix

#: Signature of an optional host-side implementation of the kernel. It gets
#: the accessor views requested in the command group, keyed by buffer name.
HostFunction = Callable[[Mapping[str, object]], None]


@dataclass(frozen=True)
class KernelIR:
    """Static description of a device kernel.

    Attributes
    ----------
    name:
        Unique kernel name (used for profiling, model lookup and reports).
    mix:
        Static per-work-item instruction counts.
    work_items:
        Global launch size (total work-items).
    word_bytes:
        Bytes moved per global/local memory access (4 for ``float``).
    locality:
        Fraction of global accesses served by cache/coalescing in ``[0, 1)``;
        higher locality means less DRAM traffic per static access. Stencils
        and matmul-style kernels have high locality, streaming kernels low.
    host_fn:
        Optional host-side implementation executed when the kernel runs.
    """

    name: str
    mix: InstructionMix
    work_items: int
    word_bytes: int = 4
    locality: float = 0.0
    host_fn: HostFunction | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("kernel name cannot be empty")
        if self.work_items <= 0:
            raise ValidationError(
                f"kernel {self.name!r}: work_items must be positive "
                f"({self.work_items!r})"
            )
        if self.word_bytes <= 0:
            raise ValidationError(
                f"kernel {self.name!r}: word_bytes must be positive "
                f"({self.word_bytes!r})"
            )
        if not 0.0 <= self.locality < 1.0:
            raise ValidationError(
                f"kernel {self.name!r}: locality must be in [0, 1) "
                f"({self.locality!r})"
            )

    @property
    def global_bytes(self) -> float:
        """Total DRAM traffic in bytes after locality filtering."""
        return (
            self.mix.gl_access
            * self.work_items
            * self.word_bytes
            * (1.0 - self.locality)
        )

    @property
    def total_compute_ops(self) -> float:
        """Total dynamic arithmetic operations across all work-items."""
        return self.mix.compute_ops * self.work_items

    @property
    def arithmetic_intensity(self) -> float:
        """Compute ops per byte of DRAM traffic (post-locality roofline)."""
        if self.global_bytes == 0:
            return float("inf")
        return self.total_compute_ops / self.global_bytes

    def with_work_items(self, work_items: int) -> "KernelIR":
        """Return a copy launched over a different global size."""
        return replace(self, work_items=work_items)

    def with_name(self, name: str) -> "KernelIR":
        """Return a copy under a different name (e.g. per-iteration tags)."""
        return replace(self, name=name)
