"""Wave-vectorized execution of distributed command graphs.

The scalar reference (:func:`repro.distributed.runner.run_graph_scalar`)
walks a :class:`~repro.distributed.graph.CommandGraph` node by node
through per-rank SYnergy queues. This module evaluates the identical
recurrence in NumPy, one *wave* (builder call) at a time:

- per-rank clock walk, in the scalar path's exact float order —
  ``start = max(rank_clock, ready)``, ``rank_clock' = start +
  max(duration, OH·switch)`` (``a + max(b, c)`` equals
  ``max(a + b, a + c)`` bitwise by monotonicity of ``+``),
- the dependency frontier as one finish array indexed by node id,
  gathered through per-wave padded dependency matrices,
- kernel durations/powers from the batched engine's memoized operating
  tables (:func:`repro.engine.executor.operating_table`) — the same
  columns the single-queue fast path uses, so sweep-cache entries are
  shared,
- switch decisions replayed statically: the per-rank clock-request
  sequence is known at graph compile time, so redundancy skipping is a
  pure prefix walk.

Communication costs were computed once at graph build and are shared
with the scalar path, so comm timelines agree bitwise; kernel physics
agree within rel 1e-12 (the vectorized sweep vs scalar ``execute``, the
same contract as the single-queue engine). The whole computation is
*pure* — boards, queues and clocks are left untouched — which is what
lets the weak-scaling benchmark sweep thousands of ranks in milliseconds
and the differential harness replay both paths on one communicator.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.core.compiler import GlobalFrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.distributed.graph import GATHER, HALO, KERNEL, CommandGraph
from repro.engine.executor import operating_table


def _dep_matrix(nodes, sentinel: int) -> np.ndarray:
    """Dependency ids padded to a rectangle; ``sentinel`` rows read 0.0."""
    width = max((len(n.deps) for n in nodes), default=0)
    width = max(width, 1)
    mat = np.full((len(nodes), width), sentinel, dtype=np.int64)
    for i, node in enumerate(nodes):
        if node.deps:
            mat[i, : len(node.deps)] = node.deps
    return mat


def execute_graph_batched(
    graph: CommandGraph,
    comm,
    plan: GlobalFrequencyPlan,
    *,
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
):
    """Evaluate a command graph in bulk; returns an ``ExecutionResult``.

    Preconditions (the :func:`repro.distributed.runner.run_graph` facade
    enforces them and falls back to the scalar reference otherwise): no
    fault injector, no power caps, homogeneous board specs.
    """
    from repro.distributed.runner import ExecutionResult

    gpus = comm.gpus
    if comm.size != graph.n_ranks:
        raise ValidationError(
            f"graph spans {graph.n_ranks} ranks; communicator has {comm.size}"
        )
    spec = gpus[0].spec
    core_index = {int(f): i for i, f in enumerate(spec.core_freqs_mhz)}
    oh = float(switch_overhead_s)

    # --- static precompute: per-kernel-node physics and switch flags ----
    n = len(graph.nodes)
    kernel_nodes = [node for node in graph.nodes if node.kind == KERNEL]
    tables: dict[tuple[int, int], tuple] = {}
    time_of = np.zeros(n)
    power_of = np.zeros(n)
    switch_of = np.zeros(n, dtype=bool)
    current = [(g.core_mhz, g.mem_mhz) for g in gpus]
    for node in kernel_nodes:
        kernel = node.kernel
        mem, core = plan.clocks_for(node.rank, kernel.name)
        key = (id(kernel), mem)
        tab = tables.get(key)
        if tab is None:
            tab = operating_table(gpus[node.rank], kernel, float(mem))
            tables[key] = tab
        try:
            ci = core_index[int(core)]
        except KeyError:
            raise ValidationError(
                f"core clock {core} MHz not in {spec.name}'s table"
            ) from None
        time_of[node.nid] = tab[0][ci]
        power_of[node.nid] = tab[3][ci]
        # Redundancy-skipped switch walk, replayed statically: the scaler
        # changes clocks only when the request differs from the board.
        switch_of[node.nid] = (core, mem) != current[node.rank]
        current[node.rank] = (core, mem)

    # --- the wave walk ---------------------------------------------------
    finish = np.zeros(n + 1)  # slot n: padding sentinel, reads 0.0
    start_s = np.zeros(n)
    clock_now = np.asarray([g.clock.now for g in gpus])
    rank_energy = np.zeros(comm.size)
    rank_switches = np.zeros(comm.size, dtype=np.int64)
    i = 0
    nodes = graph.nodes
    while i < n:
        wave = nodes[i].wave
        j = i
        halos = []
        kernels = []
        others = []
        while j < n and nodes[j].wave == wave:
            node = nodes[j]
            if node.kind == KERNEL:
                kernels.append(node)
            elif node.kind == HALO:
                halos.append(node)
            else:
                others.append(node)
            j += 1
        # Halo transfers first (they precede kernels within a wave by
        # construction): finish = dependency-ready + network cost, no GPU
        # occupancy — the overlap with compute falls out of the frontier.
        if halos:
            nids = np.asarray([h.nid for h in halos])
            ready = finish[_dep_matrix(halos, n)].max(axis=1)
            start_s[nids] = ready
            finish[nids] = ready + np.asarray([h.cost_s for h in halos])
        if kernels:
            nids = np.asarray([k.nid for k in kernels])
            ranks = np.asarray([k.rank for k in kernels])
            ready = finish[_dep_matrix(kernels, n)].max(axis=1)
            time_s = time_of[nids]
            sw = switch_of[nids]
            start = np.maximum(clock_now[ranks], ready)
            clock_now[ranks] = start + np.where(
                sw, np.maximum(time_s, oh), time_s
            )
            start_s[nids] = start
            finish[nids] = start + time_s
            np.add.at(rank_energy, ranks, power_of[nids] * time_s)
            np.add.at(rank_switches, ranks, sw)
        for node in others:  # gather waves are singleton
            ready = float(finish[list(node.deps)].max()) if node.deps else 0.0
            start_s[node.nid] = ready
            finish[node.nid] = ready + node.cost_s
        i = j

    finish_s = finish[:n].copy()
    counts = graph.counts()
    completion = float(
        max(finish_s.max(initial=0.0), clock_now.max(initial=0.0))
    )
    return ExecutionResult(
        mode="batched",
        fallback=None,
        start_s=start_s,
        finish_s=finish_s,
        rank_time_s=clock_now,
        rank_energy_j=rank_energy,
        rank_switches=rank_switches,
        completion_s=completion,
        n_kernels=counts.get(KERNEL, 0),
        n_transfers=counts.get(HALO, 0) + counts.get(GATHER, 0),
    )
