"""Vectorized virtual-time engine (ROADMAP item 2).

Batched scenario execution: many in-flight kernels (and many jobs)
advance per NumPy pass instead of one per Python call. The struct-of-
arrays batch representations live in :mod:`repro.engine.batch`, the
batched advance in :mod:`repro.engine.executor`, and the declarative
job payloads plus per-node energy reductions in
:mod:`repro.engine.payload`.

The per-event scalar path stays intact as the reference implementation:
``repro-synergy validate --only engine`` runs the differential contract
(batched vs scalar — identical clock plans, times/energies within
rel 1e-12, identical counter aggregates), and the golden traces keep
replaying through the scalar path byte-for-byte.
"""

from repro.engine.batch import JobBatch, KernelBatch
from repro.engine.executor import BatchResult, execute_batch
from repro.engine.payload import (
    KernelBatchPayload,
    board_energies,
    plan_from_sweeps,
)

__all__ = [
    "BatchResult",
    "JobBatch",
    "KernelBatch",
    "KernelBatchPayload",
    "board_energies",
    "execute_batch",
    "plan_from_sweeps",
]
