"""Struct-of-arrays batch representations.

:class:`KernelBatch` holds one queue's worth of kernel submissions as
parallel tuples/arrays — kernels, clock requests, and (after resolution)
the contiguous clock/frequency-plan-index arrays the executor broadcasts
over. :class:`JobBatch` is the scheduler-level analogue for
``Scheduler.submit_many``: job specs in, aggregate job arrays out.

Request forms mirror :meth:`repro.core.queue.SynergyQueue.submit`:

- a bare :class:`~repro.kernelir.kernel.KernelIR` (queue clocks or
  driver defaults apply),
- ``(EnergyTarget, kernel)`` — resolved through the plan/predictor,
- ``(mem_mhz, core_mhz, kernel)`` — explicit clocks, validated at
  assembly time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget
from repro.slurm.job import Job, JobSpec

#: One submission request: kernel plus an optional clock request.
#: ``request`` is ``None`` (no per-submission request), an
#: :class:`EnergyTarget`, or an explicit ``(mem_mhz, core_mhz)`` pair.
Request = "None | EnergyTarget | tuple[int, int]"


@dataclass(frozen=True)
class KernelBatch:
    """A batch of kernel submissions in struct-of-arrays form."""

    kernels: tuple[KernelIR, ...]
    requests: tuple[object, ...]

    def __post_init__(self) -> None:
        if len(self.kernels) != len(self.requests):
            raise ValidationError(
                f"kernels/requests length mismatch "
                f"({len(self.kernels)} vs {len(self.requests)})"
            )

    def __len__(self) -> int:
        return len(self.kernels)

    @classmethod
    def from_requests(cls, requests: Iterable[object]) -> "KernelBatch":
        """Assemble a batch from submit-style request items.

        Each item is a bare :class:`KernelIR`, ``(EnergyTarget, kernel)``
        or ``(mem_mhz, core_mhz, kernel)`` — the same three forms
        :meth:`SynergyQueue.submit` accepts, minus the command-group
        indirection (batched submissions are dependency-free
        ``parallel_for`` launches).
        """
        kernels: list[KernelIR] = []
        reqs: list[object] = []
        for item in requests:
            if isinstance(item, KernelIR):
                kernels.append(item)
                reqs.append(None)
            elif (
                isinstance(item, tuple)
                and len(item) == 2
                and isinstance(item[0], EnergyTarget)
                and isinstance(item[1], KernelIR)
            ):
                kernels.append(item[1])
                reqs.append(item[0])
            elif (
                isinstance(item, tuple)
                and len(item) == 3
                and isinstance(item[0], int)
                and isinstance(item[1], int)
                and isinstance(item[2], KernelIR)
            ):
                kernels.append(item[2])
                reqs.append((item[0], item[1]))
            else:
                raise ValidationError(
                    "batch items must be KernelIR, (EnergyTarget, KernelIR) "
                    f"or (mem_mhz, core_mhz, KernelIR); got {item!r}"
                )
        return cls(kernels=tuple(kernels), requests=tuple(reqs))

    def validate_explicit_clocks(self, spec: GPUSpec) -> None:
        """Submit-time validation of every explicit clock pair.

        Mirrors the scalar path, where an invalid pair raises in
        ``submit`` rather than later inside ``_pre_kernel`` — for a batch
        the whole assembly is validated before anything executes.
        """
        unique = {r for r in self.requests if isinstance(r, tuple)}
        for mem_mhz, core_mhz in unique:
            spec.validate_clocks(mem_mhz, core_mhz)


@dataclass(frozen=True)
class ResolvedBatch:
    """A :class:`KernelBatch` with every clock request made concrete.

    Contiguous arrays, one entry per submission: the effective
    application clocks (after carrying queue clocks / previous clocks
    forward for request-free submissions), the index of each core clock
    in the device frequency table (the *frequency-plan index* the
    executor gathers timing/power columns with), and the effective-
    switch mask against the running clock state.
    """

    batch: KernelBatch
    #: Effective application memory clock per submission (int MHz).
    mem_mhz: np.ndarray
    #: Effective application core clock per submission (int MHz).
    core_mhz: np.ndarray
    #: Index of ``core_mhz`` in ``spec.core_freqs_mhz``.
    core_index: np.ndarray
    #: True where applying submission ``i`` changes the board clocks.
    switches: np.ndarray

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def n_switches(self) -> int:
        """Number of effective clock changes in the batch."""
        return int(np.count_nonzero(self.switches))


@dataclass(frozen=True)
class JobBatch:
    """A batch of job submissions for ``Scheduler.submit_many``."""

    specs: tuple[JobSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def from_specs(cls, specs: Sequence[JobSpec]) -> "JobBatch":
        """Assemble a job batch, rejecting non-``JobSpec`` items early."""
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, JobSpec):
                raise ValidationError(
                    f"JobBatch items must be JobSpec, got {spec!r}"
                )
        return cls(specs=specs)

    @property
    def n_nodes(self) -> np.ndarray:
        """Requested node counts, one entry per job."""
        return np.asarray([s.n_nodes for s in self.specs], dtype=int)

    @staticmethod
    def collect(jobs: Sequence[Job]) -> dict[str, np.ndarray]:
        """Struct-of-arrays view over completed jobs.

        One aggregate pass over a ``submit_many`` result: ids, states,
        start/end times and accounted GPU energies as contiguous arrays
        (NaN where a job never started/ended or was not accounted).
        """
        return {
            "job_id": np.asarray([j.job_id for j in jobs], dtype=int),
            "state": np.asarray([j.state.value for j in jobs], dtype=object),
            "start_s": np.asarray(
                [np.nan if j.start_time_s is None else j.start_time_s for j in jobs],
                dtype=float,
            ),
            "end_s": np.asarray(
                [np.nan if j.end_time_s is None else j.end_time_s for j in jobs],
                dtype=float,
            ),
            "gpu_energy_j": np.asarray(
                [np.nan if j.gpu_energy_j is None else j.gpu_energy_j for j in jobs],
                dtype=float,
            ),
        }


def resolve_effective_clocks(
    batch: KernelBatch,
    resolved: "list[tuple[int, int] | None]",
    current: tuple[int, int],
) -> ResolvedBatch:
    """Carry clock requests forward into effective per-submission clocks.

    ``resolved`` holds one ``(mem_mhz, core_mhz)`` per submission (or
    ``None`` where the submission makes no request and inherits whatever
    clocks are then in effect); ``current`` is the board's
    ``(core_mhz, mem_mhz)`` application-clock state at batch start. The
    effective clocks replicate the scalar path exactly: a request-free
    submission runs at the previous submission's effective clocks, and
    the switch mask marks submissions whose request actually changes the
    board state (the redundancy skip of ``FrequencyScaler``).
    """
    n = len(batch)
    cur_core, cur_mem = current
    req_mem = np.empty(n, dtype=int)
    req_core = np.empty(n, dtype=int)
    has_req = np.zeros(n, dtype=bool)
    for i, pair in enumerate(resolved):
        if pair is None:
            req_mem[i] = 0
            req_core[i] = 0
        else:
            req_mem[i], req_core[i] = pair
            has_req[i] = True
    # Carry-forward: index of the latest request at or before each slot.
    latest = np.maximum.accumulate(np.where(has_req, np.arange(n), -1))
    eff_mem = np.where(latest >= 0, req_mem[np.maximum(latest, 0)], cur_mem)
    eff_core = np.where(latest >= 0, req_core[np.maximum(latest, 0)], cur_core)
    prev_core = np.concatenate(([cur_core], eff_core[:-1]))
    prev_mem = np.concatenate(([cur_mem], eff_mem[:-1]))
    switches = (eff_core != prev_core) | (eff_mem != prev_mem)
    return ResolvedBatch(
        batch=batch,
        mem_mhz=eff_mem,
        core_mhz=eff_core,
        core_index=np.zeros(n, dtype=int),  # filled by the executor
        switches=switches,
    )


# ``core_index`` is assigned by the executor once the device table is
# known; keep the dataclass frozen by rebuilding instead of mutating.
def with_core_index(resolved: ResolvedBatch, spec: GPUSpec) -> ResolvedBatch:
    """Attach frequency-table indices for the effective core clocks."""
    table = np.asarray(spec.core_freqs_mhz, dtype=int)
    idx = np.searchsorted(table, resolved.core_mhz)
    idx = np.clip(idx, 0, len(table) - 1)
    if not np.array_equal(table[idx], resolved.core_mhz):
        bad = resolved.core_mhz[table[idx] != resolved.core_mhz]
        raise ValidationError(
            f"core clocks not in the device table: {sorted(set(bad.tolist()))}"
        )
    return ResolvedBatch(
        batch=resolved.batch,
        mem_mhz=resolved.mem_mhz,
        core_mhz=resolved.core_mhz,
        core_index=idx,
        switches=resolved.switches,
    )
