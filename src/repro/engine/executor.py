"""Batched virtual-time advance for one SYnergy queue.

:func:`execute_batch` replays what a loop of per-event
``SynergyQueue.submit`` calls would do — target resolution, redundancy-
skipped clock switches with §4.4 overhead, throttled operating points,
serial execution on the device timeline — but computes the physics in
broadcasted NumPy passes over per-kernel operating-point tables
(:meth:`TimingModel.sweep` + :meth:`PowerModel.power`, memoized in the
keyed sweep cache) and commits the device/scaler/queue state in bulk.

Exactness contract (checked by ``repro-synergy validate --only engine``):

- resolved clock plans, switch decisions and throttled operating points
  are *identical* to the scalar path,
- times and energies agree within rel 1e-12 (the vectorized sweep and
  the scalar ``execute`` differ by ~1 ulp in ``pow``),
- counter aggregates (kernels executed, switches, plan lookups) match.

The timeline recurrence is evaluated in the exact float order of the
scalar path: with ``n_i`` the virtual time after submission ``i``,
``start_i = n_(i-1)`` and ``n_i = n_(i-1) + max(d_i, OH·switch_i)``
(float ``a + max(b, c)`` equals ``max(a+b, a+c)`` bitwise by
monotonicity), so one ``cumsum`` reproduces the scalar clock walk.

When exact per-event semantics cannot be replayed in bulk — an armed
fault injector, an enabled inline validator, or a clock switch on an
API-restricted board — the batch falls back to the per-event scalar
path, which *is* the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.batch import (
    KernelBatch,
    ResolvedBatch,
    resolve_effective_clocks,
    with_core_index,
)
from repro.hw.device import KernelExecutionRecord
from repro.metrics.targets import EnergyTarget
from repro.sycl.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.queue import SynergyQueue


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched submission, in struct-of-arrays form.

    ``core_mhz`` holds the *executed* (possibly throttled) core clocks;
    ``app_core_mhz``/``app_mem_mhz`` the effective application clocks
    (``None`` when the batch ran through the scalar fallback, which does
    not reconstruct them). ``fallback`` names the reason the scalar path
    was used, or ``None`` for the vectorized fast path.
    """

    events: tuple[Event, ...]
    start_s: np.ndarray
    end_s: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray
    avg_power_w: np.ndarray
    core_mhz: np.ndarray
    mem_mhz: np.ndarray
    app_core_mhz: np.ndarray | None = None
    app_mem_mhz: np.ndarray | None = None
    n_switches: int = 0
    fallback: str | None = None

    def __post_init__(self) -> None:
        for arr in (
            self.start_s, self.end_s, self.time_s, self.energy_j,
            self.avg_power_w, self.core_mhz, self.mem_mhz,
            self.app_core_mhz, self.app_mem_mhz,
        ):
            if arr is not None:
                arr.setflags(write=False)

    def __len__(self) -> int:
        return len(self.events)

    def summary(self) -> dict[str, float]:
        """Aggregate totals over the batch."""
        return {
            "kernels": float(len(self.events)),
            "kernel_time_s": float(np.sum(self.time_s)),
            "kernel_energy_j": float(np.sum(self.energy_j)),
            "clock_switches": float(self.n_switches),
        }


def _empty_result() -> BatchResult:
    z = np.zeros(0)
    return BatchResult(
        events=(),
        start_s=z,
        end_s=np.zeros(0),
        time_s=np.zeros(0),
        energy_j=np.zeros(0),
        avg_power_w=np.zeros(0),
        core_mhz=np.zeros(0, dtype=int),
        mem_mhz=np.zeros(0, dtype=int),
        app_core_mhz=np.zeros(0, dtype=int),
        app_mem_mhz=np.zeros(0, dtype=int),
    )


def _result_from_events(
    events: list[Event], n_switches: int, fallback: str
) -> BatchResult:
    records = [e.record for e in events]
    return BatchResult(
        events=tuple(events),
        start_s=np.asarray([r.start_s for r in records], dtype=float),
        end_s=np.asarray([r.end_s for r in records], dtype=float),
        time_s=np.asarray([r.time_s for r in records], dtype=float),
        energy_j=np.asarray([r.energy_j for r in records], dtype=float),
        avg_power_w=np.asarray([r.avg_power_w for r in records], dtype=float),
        core_mhz=np.asarray([r.core_mhz for r in records], dtype=int),
        mem_mhz=np.asarray([r.mem_mhz for r in records], dtype=int),
        n_switches=n_switches,
        fallback=fallback,
    )


def _fallback_scalar(
    queue: "SynergyQueue", batch: KernelBatch, reason: str
) -> BatchResult:
    """Replay the batch through the per-event reference path."""
    switches_before = queue.scaler.switch_count
    events: list[Event] = []
    for kernel, request in zip(batch.kernels, batch.requests):
        cgf = lambda h, k=kernel: h.parallel_for(k.work_items, k)  # noqa: E731
        if isinstance(request, EnergyTarget):
            events.append(queue.submit(request, cgf))
        elif isinstance(request, tuple):
            events.append(queue.submit(request[0], request[1], cgf))
        else:
            events.append(queue.submit(cgf))
    return _result_from_events(
        events, queue.scaler.switch_count - switches_before, reason
    )


def operating_table(gpu, kernel, mem_mhz: float):
    """Timing/power columns over the full core table at one memory clock.

    Returns read-only ``(time_s, u_core, u_mem, power_w)`` arrays aligned
    with ``spec.core_freqs_mhz``, memoized in the keyed sweep cache. The
    columns depend only on the device *spec* (timing/power models are
    shared per spec), so the single-queue fast path and the multi-rank
    graph engine (:mod:`repro.engine.multirank`) share cache entries.
    """
    from repro.core.sweepcache import resolve_cache

    spec = gpu.spec
    table = np.asarray(spec.core_freqs_mhz, dtype=float)

    def compute():
        timing = gpu.timing_model.sweep(kernel, table, float(mem_mhz))
        power = np.asarray(
            gpu.power_model.power(
                table,
                float(mem_mhz),
                timing.core_power_utilization,
                timing.u_mem,
            ),
            dtype=float,
        )
        return (timing.time_s, timing.u_core, timing.u_mem, power)

    store = resolve_cache(None)
    if store is None:
        value = compute()
        for arr in value:
            arr.setflags(write=False)
        return value
    return store.get_or_compute(store.engine_key(spec, kernel, table, mem_mhz), compute)


def _resolve_requests(queue: "SynergyQueue", batch: KernelBatch):
    """Per-submission clock resolution, matching the scalar path's calls.

    Targets go through the queue's plan/predictor with the same counter
    semantics (``predict.plan_lookups`` per plan hit, ``predict.calls``
    per predictor inference); request-free submissions inherit the queue
    clocks or, absent those, the running board clocks (``None`` here).
    """
    resolved: list[tuple[int, int] | None] = []
    traced = queue.trace.enabled
    # Untraced, target resolution is pure (plan/predictor lookups are
    # deterministic per (kernel, target)), so repeated pairs hit a memo.
    # Traced runs keep the per-submission calls for exact counter parity
    # with the scalar path (one ``predict.plan_lookups`` per submission).
    memo: dict[tuple[int, int], tuple[int, int]] = {}
    inherit = queue._queue_clocks
    for kernel, request in zip(batch.kernels, batch.requests):
        if isinstance(request, EnergyTarget):
            if traced:
                resolved.append(queue._resolve_target(kernel, request))
            else:
                key = (id(kernel), id(request))
                clocks = memo.get(key)
                if clocks is None:
                    clocks = queue._resolve_target(kernel, request)
                    memo[key] = clocks
                resolved.append(clocks)
        elif isinstance(request, tuple):
            resolved.append(request)
        else:
            resolved.append(inherit)
    return resolved


def _choose_operating_points(
    queue: "SynergyQueue", resolved: ResolvedBatch
) -> tuple[np.ndarray, ...]:
    """Gather per-submission timing/power at the throttled operating point.

    Returns ``(exec_core_mhz, time_s, u_core, u_mem, power_w)`` arrays.
    Replicates ``SimulatedGPU._throttled_operating_point``: at the
    application clocks the kernel may exceed the board power limit; it
    then runs at the highest core clock at or below the application
    clock whose power fits, or the lowest table clock if nothing fits.
    """
    gpu = queue.device.gpu
    spec = gpu.spec
    table = np.asarray(spec.core_freqs_mhz, dtype=int)
    groups: dict[tuple[int, int], int] = {}
    members: list[tuple[object, int]] = []
    group_ids: list[int] = []
    for kernel, mem in zip(resolved.batch.kernels, resolved.mem_mhz.tolist()):
        key = (id(kernel), mem)
        idx = groups.get(key)
        if idx is None:
            idx = len(members)
            groups[key] = idx
            members.append((kernel, mem))
        group_ids.append(idx)
    group_of = np.asarray(group_ids, dtype=int)
    tables = [operating_table(gpu, k, float(m)) for k, m in members]
    time_mat = np.stack([t[0] for t in tables])
    u_core_mat = np.stack([t[1] for t in tables])
    u_mem_mat = np.stack([t[2] for t in tables])
    power_mat = np.stack([t[3] for t in tables])

    req_idx = resolved.core_index
    if gpu.power_limit_w >= gpu.default_power_limit_w:
        # Unconstrained board: modeled power is strictly below the peak
        # at every operating point, so throttling never engages.
        chosen = req_idx
    else:
        ok = power_mat <= gpu.power_limit_w
        ranked = np.where(ok, np.arange(len(table))[None, :], -1)
        best_upto = np.maximum.accumulate(ranked, axis=1)
        chosen = best_upto[group_of, req_idx]
        chosen = np.where(chosen >= 0, chosen, 0)
    return (
        table[chosen],
        time_mat[group_of, chosen],
        u_core_mat[group_of, chosen],
        u_mem_mat[group_of, chosen],
        power_mat[group_of, chosen],
    )


def execute_batch(queue: "SynergyQueue", batch: KernelBatch) -> BatchResult:
    """Advance one queue through a whole batch of kernel submissions."""
    gpu = queue.device.gpu
    tr = queue.trace
    track = queue._track
    n = len(batch)
    if n == 0:
        # Zero-kernel batches are no-ops but still leave a well-formed,
        # empty trace span so downstream tooling sees the submission.
        if tr.enabled:
            now = gpu.clock.now
            tr.add_span(
                track, "engine.batch", "batch[0]", now, now,
                kernels=0, switches=0, fallback=None,
            )
            tr.count("engine.batches")
        return _empty_result()

    batch.validate_explicit_clocks(gpu.spec)
    if gpu.fault_injector is not None or queue.validator.enabled:
        reason = "faults" if gpu.fault_injector is not None else "validator"
        return _traced_fallback(queue, batch, reason)

    resolved = _resolve_requests(queue, batch)
    rb = resolve_effective_clocks(
        batch, resolved, (gpu.core_mhz, gpu.mem_mhz)
    )
    if gpu.api_restricted and rb.n_switches:
        # A clock change on a restricted board must fail exactly like the
        # per-event path (vendor error after the overhead charge); replay
        # scalar rather than emulating each vendor's failure shape.
        return _traced_fallback(queue, batch, "restricted")
    rb = with_core_index(rb, gpu.spec)

    if not tr.enabled:
        return _execute_fast(queue, rb)
    with tr.span(
        gpu.clock, track, "engine.batch", f"batch[{n}]",
    ) as sp:
        result = _execute_fast(queue, rb)
        sp.set(kernels=n, switches=result.n_switches, fallback=None)
    tr.count("engine.batches")
    tr.count("engine.batched_kernels", n)
    # Tenancy tag, attached only when the queue has an owner (the service
    # plane) so ownerless golden traces stay byte-identical.
    extra = {} if queue.owner is None else {"owner": queue.owner}
    for event in result.events:
        record = event.record
        tr.add_span(
            track, "queue.kernel", record.kernel_name,
            event.start_s, event.end_s,
            core_mhz=record.core_mhz,
            mem_mhz=record.mem_mhz,
            energy_j=record.energy_j,
            degraded=False,
            **extra,
        )
        tr.observe("kernel.time_s", record.time_s)
        tr.observe("kernel.energy_j", record.energy_j)
    tr.count("queue.kernels_executed", n)
    if result.n_switches:
        tr.count("freq.switches", result.n_switches)
    return result


def _traced_fallback(
    queue: "SynergyQueue", batch: KernelBatch, reason: str
) -> BatchResult:
    tr = queue.trace
    if not tr.enabled:
        result = _fallback_scalar(queue, batch, reason)
    else:
        with tr.span(
            queue.device.gpu.clock, queue._track, "engine.batch",
            f"batch[{len(batch)}]",
        ) as sp:
            result = _fallback_scalar(queue, batch, reason)
            sp.set(kernels=len(batch), switches=result.n_switches, fallback=reason)
        tr.count("engine.batches")
        tr.count("engine.fallbacks")
    return result


def _execute_fast(queue: "SynergyQueue", rb: ResolvedBatch) -> BatchResult:
    """The vectorized commit: physics, timeline, and bulk state update."""
    gpu = queue.device.gpu
    scaler = queue.scaler
    n = len(rb)
    exec_core, time_s, u_core, u_mem, power_w = _choose_operating_points(
        queue, rb
    )

    # Virtual-time walk, in the scalar path's exact float order:
    # n_i = n_(i-1) + max(d_i, OH·switch_i), start_i = n_(i-1).
    oh = scaler.switch_overhead_s
    step = np.where(rb.switches, np.maximum(time_s, oh), time_s)
    # cumsum folds left-to-right, the same float order as the scalar
    # `clock.advance` walk; seeding with `now` keeps the origin in-fold.
    clockline = np.cumsum(np.concatenate(([gpu.clock.now], step)))
    start_s = clockline[:-1]
    end_s = start_s + time_s
    energy_j = power_w * time_s

    # Commit: clock plan, scaler charges, power timeline, clock advance.
    switch_idx = np.flatnonzero(rb.switches)
    if switch_idx.size:
        gpu.apply_clock_plan(
            (start_s[switch_idx] + oh).tolist(),
            list(
                zip(
                    rb.core_mhz[switch_idx].tolist(),
                    rb.mem_mhz[switch_idx].tolist(),
                )
            ),
        )
        scaler.charge_batched(int(switch_idx.size))
    gpu.extend_power_timeline(start_s, end_s, power_w)
    final = float(clockline[-1])
    if final > gpu.clock.now:
        gpu.clock.advance_to(final)

    # Bulk ndarray→Python conversion (``tolist`` converts in C) feeding
    # positional dataclass construction: this loop is the remaining
    # per-kernel Python cost of the fast path, so it stays lean.
    device_name = gpu.spec.name
    records = [
        KernelExecutionRecord(
            kernel.name, device_name, core, mem, t0, t1, e, p, uc, um
        )
        for kernel, core, mem, t0, t1, e, p, uc, um in zip(
            rb.batch.kernels,
            exec_core.tolist(),
            rb.mem_mhz.tolist(),
            start_s.tolist(),
            end_s.tolist(),
            energy_j.tolist(),
            power_w.tolist(),
            u_core.tolist(),
            u_mem.tolist(),
        )
    ]
    gpu.records.extend(records)
    events = [
        Event(gpu, record.start_s, record.start_s, record.end_s, record)
        for record in records
    ]
    queue._absorb_events(events)
    return BatchResult(
        events=tuple(events),
        start_s=start_s,
        end_s=end_s,
        time_s=end_s - start_s,
        energy_j=energy_j,
        avg_power_w=power_w.copy(),
        core_mhz=exec_core.copy(),
        mem_mhz=rb.mem_mhz.copy(),
        app_core_mhz=rb.core_mhz.copy(),
        app_mem_mhz=rb.mem_mhz.copy(),
        n_switches=int(switch_idx.size),
    )
