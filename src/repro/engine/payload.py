"""Scheduler-facing pieces of the batched engine.

:class:`KernelBatchPayload` is a job payload (batch-script body) that
drives every allocated GPU through one :class:`KernelBatch`, either via
the vectorized :meth:`SynergyQueue.submit_batch` fast path or via the
per-event scalar reference loop — the two modes the engine differential
contract compares. :func:`plan_from_sweeps` compiles a
:class:`FrequencyPlan` directly from measured sweeps (the §6.2 search on
ground truth instead of model predictions), which lets scenarios use
DEADLINE/SLA targets without training a predictor.
:func:`board_energies` is the per-node accounting reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.compiler import FrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.core.queue import SynergyQueue
from repro.experiments.sweep import sweep_kernel
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget
from repro.slurm.job import JobContext


def plan_from_sweeps(
    spec: GPUSpec,
    kernels: Sequence[KernelIR],
    targets: Iterable[EnergyTarget],
    *,
    cache: object | None = None,
) -> FrequencyPlan:
    """Build a frequency plan from measured sweeps (no predictor).

    For every ``(kernel, target)`` pair the target's §6.2 search runs on
    the kernel's measured frequency sweep; the winning core clock lands
    in the plan at the device's default memory clock (the sweep's memory
    operating point). Deterministic and exact, so batched/scalar parity
    scenarios can use DEADLINE and SLA targets without a trained model.
    """
    target_list = list(targets)
    entries: dict[tuple[str, str], tuple[int, int]] = {}
    for kernel in kernels:
        sweep = sweep_kernel(spec, kernel, cache=cache)
        for target in target_list:
            idx = target.resolve_index(
                sweep.freqs_mhz, sweep.time_s, sweep.energy_j, sweep.default_index
            )
            entries[(kernel.name, target.name)] = (
                spec.default_mem_mhz,
                int(sweep.freqs_mhz[idx]),
            )
    return FrequencyPlan(device_name=spec.name, entries=entries)


@dataclass(frozen=True)
class KernelBatchPayload:
    """Job payload submitting one kernel batch per allocated GPU.

    ``requests`` holds submit-style items (bare :class:`KernelIR`,
    ``(EnergyTarget, kernel)`` or ``(mem_mhz, core_mhz, kernel)``).
    With ``batched=True`` each GPU runs through
    :meth:`SynergyQueue.submit_batch`; with ``batched=False`` through the
    per-event scalar loop — same requests, same clocks, same physics, so
    twin clusters running the two modes must agree (the engine
    differential contract). Returns per-GPU queue summaries.
    """

    requests: tuple
    plan: FrequencyPlan | None = None
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S
    batched: bool = True

    def __call__(self, context: JobContext) -> dict[str, object]:
        from repro.engine.batch import KernelBatch

        # Assemble the batch once; every allocated GPU replays the same
        # immutable struct-of-arrays submission stream.
        batch = KernelBatch.from_requests(self.requests) if self.batched else None
        summaries = []
        for gpu in context.gpus:
            queue = SynergyQueue(
                gpu,
                plan=self.plan,
                switch_overhead_s=self.switch_overhead_s,
                trace=context.trace,
                validate=context.validator,
            )
            if self.batched:
                queue.submit_batch(batch)
            else:
                for item in self.requests:
                    if isinstance(item, KernelIR):
                        queue.submit(
                            lambda h, k=item: h.parallel_for(k.work_items, k)
                        )
                    elif len(item) == 2:
                        target, kernel = item
                        queue.submit(
                            target,
                            lambda h, k=kernel: h.parallel_for(k.work_items, k),
                        )
                    else:
                        mem, core, kernel = item
                        queue.submit(
                            mem,
                            core,
                            lambda h, k=kernel: h.parallel_for(k.work_items, k),
                        )
            queue.wait()
            summaries.append(queue.summary())
        return {"mode": "batched" if self.batched else "scalar", "gpus": summaries}


def board_energies(gpus, t0_s: float, t1_s: float) -> np.ndarray:
    """True board energy (J) per GPU over one accounting window.

    One vectorized timeline reduction per board
    (:meth:`SimulatedGPU.energy_between_many`); the scalar accounting
    loop (:meth:`Scheduler._account_energy`) sums the same windows with
    per-segment Python iteration.
    """
    window_t0 = np.asarray([t0_s], dtype=float)
    window_t1 = np.asarray([t1_s], dtype=float)
    return np.asarray(
        [float(gpu.energy_between_many(window_t0, window_t1)[0]) for gpu in gpus],
        dtype=float,
    )
