"""Trace and metrics exporters.

Two formats, both byte-deterministic for a seeded run:

- :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format
  (open in Perfetto / ``chrome://tracing``). Virtual seconds map to
  microseconds; each tracer *track* becomes one named thread.
- :func:`metrics_document` — one flat JSON document with every counter,
  gauge and histogram plus per-category span totals.

Serialization goes through :func:`dump_json` (sorted keys, trailing
newline) so the golden-trace tests can compare raw bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.session import TraceSession

#: Virtual seconds → trace_event microseconds.
_US = 1.0e6


def _track_ids(session: TraceSession) -> dict[str, int]:
    """Stable track → tid mapping, in first-recorded order."""
    tids: dict[str, int] = {}
    for sp in session.tracer.spans:
        if sp.track not in tids:
            tids[sp.track] = len(tids)
    for ev in session.tracer.instants:
        if ev.track not in tids:
            tids[ev.track] = len(tids)
    return tids


def chrome_trace(session: TraceSession, metadata: dict | None = None) -> dict:
    """The session's spans and instants as a Chrome trace_event document.

    Spans become complete (``ph: "X"``) events, instants become instant
    (``ph: "i"``) events, and every track gets a ``thread_name`` metadata
    record. ``metadata`` lands under the top-level ``otherData`` key.
    """
    tids = _track_ids(session)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    for sp in session.tracer.spans:
        t1 = sp.t0 if sp.t1 is None else sp.t1
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": tids[sp.track],
                "name": sp.name,
                "cat": sp.category,
                "ts": sp.t0 * _US,
                "dur": (t1 - sp.t0) * _US,
                "args": dict(sp.attrs, span_id=sp.span_id,
                             parent_id=sp.parent_id),
            }
        )
    for ev in session.tracer.instants:
        events.append(
            {
                "ph": "i",
                "pid": 0,
                "tid": tids[ev.track],
                "name": ev.name,
                "cat": ev.category,
                "ts": ev.t * _US,
                "s": "t",
                "args": dict(ev.attrs),
            }
        )
    # Chrome sorts by ts on load; emit sorted (stable on ties, so the
    # recording order of simultaneous events is preserved).
    events.sort(key=lambda e: e.get("ts", -1.0))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def metrics_document(session: TraceSession, metadata: dict | None = None) -> dict:
    """All metrics plus per-category span/instant totals, one flat doc."""
    doc = {"kind": "metrics", "meta": dict(metadata or {})}
    doc.update(session.metrics.as_dict())
    doc["span_counts"] = session.tracer.span_counts()
    doc["instant_counts"] = session.tracer.instant_counts()
    return doc


def dump_json(doc: dict) -> str:
    """Deterministic serialization: sorted keys, 2-space indent, newline."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_trace_json(
    session: TraceSession, path: str | Path, metadata: dict | None = None
) -> Path:
    """Write the Chrome trace document; returns the path."""
    path = Path(path)
    path.write_text(dump_json(chrome_trace(session, metadata)))
    return path


def write_metrics_json(
    session: TraceSession, path: str | Path, metadata: dict | None = None
) -> Path:
    """Write the flat metrics document; returns the path."""
    path = Path(path)
    path.write_text(dump_json(metrics_document(session, metadata)))
    return path
