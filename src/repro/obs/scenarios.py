"""Seeded end-to-end scenarios for the golden-trace harness.

Two small but complete runs, each returning a fully populated
:class:`~repro.obs.session.TraceSession`:

- ``single-gpu`` — per-kernel MIN_EDP tuning on one V100 through a live
  predictor, with fine- and coarse-grained energy profiling (including a
  deliberate zero-width window query),
- ``slurm-faults`` — a 4-node exclusive SLURM job running CloverLeaf
  under a compiled MIN_EDP plan with one scheduled NVML clock-set fault,
  through the nvgpufreq plugin and the MPI layer,
- ``thermal-drift`` — the adaptive-plane chaos scenario: an
  :class:`~repro.adapt.controller.AdaptiveController` driven through a
  full degradation-ladder traversal by two injected
  ``hw.thermal_throttle`` windows (see :mod:`repro.adapt.chaos`).

Everything is a pure function of the ``seed`` argument and virtual time:
the exported trace and metrics documents are byte-identical across runs
(asserted by ``tests/test_obs_golden.py``). Scenarios run inside
:func:`~repro.core.sweepcache.scoped_cache` so process-global cache
warm-up cannot leak between invocations.
"""

from __future__ import annotations

from repro.apps.cloverleaf import CloverLeaf
from repro.apps.syclbench.definitions import get_benchmark
from repro.common.errors import ConfigurationError
from repro.core.compiler import SynergyCompiler
from repro.core.predictor import FrequencyPredictor
from repro.core.queue import SynergyQueue
from repro.core.sweepcache import scoped_cache
from repro.experiments.training import make_bundle, microbench_training_set
from repro.faults.plan import FaultPlan, FaultSpec
from repro.hw.device import SimulatedGPU
from repro.hw.specs import NVIDIA_V100
from repro.metrics.targets import MIN_EDP
from repro.mpi.launcher import launch_ranks
from repro.obs.session import (
    TraceSession,
    absorb_cache_report,
    absorb_fault_log,
    absorb_queue,
    absorb_scheduler,
    absorb_service,
)
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler

#: Kernels exercised by the single-GPU scenario (a compute-bound, a
#: memory-bound and a balanced member of the §8 benchmark suite).
SINGLE_GPU_KERNELS: tuple[str, ...] = ("gemm", "sobel3", "median")


def _train_linear(seed: int):
    """Small deterministic Linear bundle (closed-form fit, no RNG races)."""
    training = microbench_training_set(
        NVIDIA_V100, freq_stride=24, random_count=2
    )
    return make_bundle("Linear", seed=seed).fit(training)


def run_single_gpu_scenario(seed: int = 7) -> TraceSession:
    """Single-GPU MIN_EDP tuning with live prediction and profiling."""
    trace = TraceSession()
    with scoped_cache():
        bundle = _train_linear(seed)
        predictor = FrequencyPredictor(bundle, NVIDIA_V100, trace=trace)
        # Pin the board index: it names the trace tracks and seeds the
        # sensor noise stream, and the process-global auto-index would
        # otherwise differ between runs in one process.
        gpu = SimulatedGPU(NVIDIA_V100, index=0)
        queue = SynergyQueue(gpu, predictor=predictor, trace=trace)
        kernels = [get_benchmark(name).kernel for name in SINGLE_GPU_KERNELS]
        events = []
        for _round in range(2):
            for kernel in kernels:
                events.append(
                    queue.submit(
                        MIN_EDP,
                        lambda h, k=kernel: h.parallel_for(k.work_items, k),
                    )
                )
        # One explicit clock pair, like Listing 2.
        fixed = kernels[0]
        events.append(
            queue.submit(
                NVIDIA_V100.default_mem_mhz,
                int(NVIDIA_V100.core_freqs_mhz[len(NVIDIA_V100.core_freqs_mhz) // 2]),
                lambda h: h.parallel_for(fixed.work_items, fixed),
            )
        )
        # Fine-grained profiling of the first and last kernels, then the
        # coarse-grained lifetime window.
        queue.kernel_energy_consumption(events[0])
        queue.kernel_energy_consumption(events[-1])
        queue.device_energy_consumption()
        # Re-open the window and query immediately: the zero-width path.
        queue.profiler.reset_window()
        queue.device_energy_consumption()
        queue.reset_frequency()
        absorb_queue(trace, queue)
        absorb_cache_report(trace)
    return trace


def run_slurm_faults_scenario(seed: int = 7) -> TraceSession:
    """4-node SLURM CloverLeaf run with one injected NVML clock-set fault."""
    trace = TraceSession()
    with scoped_cache():
        bundle = _train_linear(seed)
        compiler = SynergyCompiler(bundle, NVIDIA_V100)
        app = CloverLeaf(steps=2)
        compiled = compiler.compile(app.timestep_kernels(), [MIN_EDP])
        fault_plan = FaultPlan(
            seed=seed,
            specs=(FaultSpec(site="nvml.set_clocks", at_s=0.0, count=1),),
        )
        cluster = Cluster.build(
            NVIDIA_V100,
            n_nodes=4,
            gpus_per_node=1,
            gres={NVGPUFREQ_GRES},
            fault_plan=fault_plan,
            trace=trace,
        )
        plugin = NvGpuFreqPlugin(trace=trace)
        scheduler = Scheduler(cluster, plugins=[plugin])

        def payload(context):
            comm = launch_ranks(context)
            return app.run(comm, target=MIN_EDP, plan=compiled.plan)

        job = scheduler.submit(
            JobSpec(
                name="cloverleaf-min_edp",
                n_nodes=4,
                exclusive=True,
                gres=frozenset({NVGPUFREQ_GRES}),
                payload=payload,
            )
        )
        trace.gauge("slurm.last_job_energy_j", job.gpu_energy_j or 0.0)
        absorb_scheduler(trace, scheduler)
        assert cluster.fault_injector is not None
        absorb_fault_log(trace, cluster.fault_injector.log)
        absorb_cache_report(trace)
    return trace


def run_thermal_drift_scenario(seed: int = 7) -> TraceSession:
    """The adaptive-plane chaos run, traced end to end."""
    from repro.adapt.chaos import run_thermal_drift_comparison

    trace = TraceSession()
    with scoped_cache():
        run_thermal_drift_comparison(seed=seed, trace=trace)
        absorb_cache_report(trace)
    return trace


def run_multi_tenant_scenario(seed: int = 7) -> TraceSession:
    """A seeded 8-tenant / 4-partition service-plane session.

    A small but complete run of the multi-tenant scheduling plane:
    seeded tenants with mixed priorities/quotas/budgets, a seeded
    arrival stream, four drain cycles through the sharded batched
    schedulers, per-tenant metrics absorbed at the end. Small enough
    for a golden snapshot, rich enough to cover every shard and the
    full admit/drain/account loop (rejection paths are exercised by the
    larger ``validate --only service`` session).
    """
    from repro.service.loadgen import run_service_session

    trace = TraceSession()
    with scoped_cache():
        service = run_service_session(
            seed=seed,
            n_tenants=8,
            n_submissions=128,
            n_partitions=4,
            n_cycles=4,
            trace=trace,
        )
        absorb_service(trace, service)
        absorb_cache_report(trace)
    return trace


#: Scenario registry: name → runner.
SCENARIOS = {
    "single-gpu": run_single_gpu_scenario,
    "slurm-faults": run_slurm_faults_scenario,
    "thermal-drift": run_thermal_drift_scenario,
    "multi-tenant": run_multi_tenant_scenario,
}


def run_scenario(name: str, seed: int = 7) -> TraceSession:
    """Run one named scenario; raises on unknown names."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](seed=seed)
