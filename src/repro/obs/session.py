"""The trace session: one tracer plus one metrics registry.

Components across the stack accept an optional ``trace`` argument and
store ``resolve_trace(trace)`` — either a live :class:`TraceSession` or
the shared no-op :data:`NULL_TRACE`. Instrumented sites either call the
session's recording methods directly (no-ops when disabled) or guard a
block with ``if self.trace.enabled:`` when building attributes would
itself cost something.

The ``absorb_*`` helpers pull the stack's pre-existing scattered counters
(queue/scaler/profiler statistics, the sweep-cache report, fault-log
totals, scheduler requeues) into the session's metrics registry, so one
exported document accounts for a whole run.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.tracer import NULL_SPAN_CONTEXT, NullTracer, Tracer, NULL_TRACER


class TraceSession:
    """A live recording: spans, instants and metrics for one run."""

    enabled: bool = True

    def __init__(self) -> None:
        self.tracer: Tracer = Tracer()
        self.metrics: MetricsRegistry = MetricsRegistry()

    # ------------------------------------------------------------ delegation

    def span(self, clock, track: str, category: str, name: str, **attrs):
        """Open a nested span closing at ``clock.now`` on block exit."""
        return self.tracer.span(clock, track, category, name, **attrs)

    def add_span(self, track, category, name, t0, t1, **attrs):
        """Record an already-finished interval."""
        return self.tracer.add_span(track, category, name, t0, t1, **attrs)

    def instant(self, t, track, category, name, **attrs) -> None:
        """Record a zero-duration mark."""
        self.tracer.instant(t, track, category, name, **attrs)

    def count(self, name: str, n: int | float = 1) -> None:
        """Increment a named counter."""
        self.metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        """Observe into a named default-bounds histogram."""
        self.metrics.observe(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge."""
        self.metrics.set_gauge(name, value)


class _NullSession(TraceSession):
    """The default: every recording method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS

    def span(self, clock, track, category, name, **attrs):
        return NULL_SPAN_CONTEXT

    def add_span(self, track, category, name, t0, t1, **attrs):
        return None

    def instant(self, t, track, category, name, **attrs) -> None:
        pass

    def count(self, name, n=1) -> None:
        pass

    def observe(self, name, value) -> None:
        pass

    def gauge(self, name, value) -> None:
        pass


#: Shared "tracing off" session installed everywhere by default.
NULL_TRACE = _NullSession()


def resolve_trace(trace: "TraceSession | None") -> TraceSession:
    """Map a component's ``trace`` argument to a session (None → no-op)."""
    return trace if trace is not None else NULL_TRACE


# ------------------------------------------------------------------ absorb

def absorb_queue(trace: TraceSession, queue, prefix: str = "queue") -> None:
    """Pull a SynergyQueue's scattered statistics into the metrics plane.

    Covers the scaler (switches, retries, degraded requests) and profiler
    (fallbacks, zero-width windows) counters plus per-kernel totals.
    """
    if not trace.enabled:
        return
    summary = queue.summary()
    m = trace.metrics
    m.inc(f"{prefix}.kernels", int(summary["kernels"]))
    m.inc(f"{prefix}.clock_switches", int(summary["clock_switches"]))
    m.inc(f"{prefix}.clock_retries", int(summary["clock_retries"]))
    m.inc(f"{prefix}.degraded_kernels", int(summary["degraded_kernels"]))
    m.inc(f"{prefix}.failed_switches", queue.scaler.failed_switches)
    m.inc(f"{prefix}.energy_fallbacks", queue.profiler.fallback_count)
    m.inc(f"{prefix}.zero_width_windows", queue.profiler.zero_width_windows)
    h = m.histogram(f"{prefix}.kernel_time_s")
    for row in queue.kernel_stats():
        h.observe(row["time_s"])


def absorb_cache_report(trace: TraceSession) -> None:
    """Snapshot the fast-path cache counters (sweep + predictor curves)."""
    if not trace.enabled:
        return
    from repro.core.sweepcache import cache_report

    m = trace.metrics
    for domain, stats in cache_report().items():
        m.counter(f"cache.{domain}.hits").value = int(stats["hits"])
        m.counter(f"cache.{domain}.misses").value = int(stats["misses"])
        if "entries" in stats:
            m.set_gauge(f"cache.{domain}.entries", stats["entries"])


def absorb_fault_log(trace: TraceSession, log) -> None:
    """Pull a FaultLog's totals into the metrics plane."""
    if not trace.enabled:
        return
    m = trace.metrics
    m.counter("faults.injected").value = len(log.faults)
    m.counter("faults.recoveries").value = len(log.recoveries)
    for site, n in sorted(log.counts().items()):
        m.counter(f"faults.site.{site}").value = n


def absorb_validation(trace: TraceSession, report) -> None:
    """Pull a ValidationReport's verdict into the metrics plane.

    Counters for checks run / hard failures / warnings plus a 0-or-1
    ``validate.passed`` gauge, so an exported metrics document carries
    the invariant-plane verdict alongside the physics it validated.
    """
    if not trace.enabled:
        return
    m = trace.metrics
    m.counter("validate.checks").value = len(report.results)
    m.counter("validate.failures").value = len(report.failures)
    m.counter("validate.warnings").value = len(report.warnings)
    m.set_gauge("validate.passed", 1.0 if report.passed else 0.0)


def absorb_engine(trace: TraceSession, result, prefix: str = "engine") -> None:
    """Pull a :class:`~repro.engine.executor.BatchResult`'s totals into
    the metrics plane.

    One aggregate pass: batch size, effective switches, summed time and
    energy, plus whether (and why) the batch fell back to the per-event
    scalar path.
    """
    if not trace.enabled:
        return
    m = trace.metrics
    summary = result.summary()
    m.inc(f"{prefix}.kernels", int(summary["kernels"]))
    m.inc(f"{prefix}.switches", int(summary["clock_switches"]))
    if result.fallback is not None:
        m.inc(f"{prefix}.fallbacks.{result.fallback}")
    h = m.histogram(f"{prefix}.batch_kernels")
    h.observe(float(len(result)))
    m.set_gauge(f"{prefix}.last_batch_time_s", summary["kernel_time_s"])
    m.set_gauge(f"{prefix}.last_batch_energy_j", summary["kernel_energy_j"])


def absorb_service(trace: TraceSession, service) -> None:
    """Pull the service plane's tenancy accounting into the metrics plane.

    Cluster-level counters (tenants, cycles, admissions, rejections,
    drains) plus one metric family per tenant
    (``service.tenant.<name>.*``) — the Wattlytics-style per-tenant
    energy/savings attribution, exported with everything else.
    """
    if not trace.enabled:
        return
    m = trace.metrics
    report = service.report()
    cluster = report["cluster"]
    m.counter("service.tenants").value = int(cluster["n_tenants"])
    m.counter("service.cycles").value = int(cluster["cycles"])
    m.counter("service.admitted").value = int(cluster["submissions"])
    m.counter("service.rejected").value = int(cluster["rejections"])
    m.counter("service.drained").value = int(cluster["drained"])
    m.set_gauge("service.kernel_energy_j", cluster["kernel_energy_j"])
    m.set_gauge("service.board_energy_j", cluster["board_energy_j"])
    m.set_gauge("service.saved_j", cluster["saved_j"])
    for row in report["tenants"]:
        prefix = f"service.tenant.{row['tenant']}"
        m.counter(f"{prefix}.admitted").value = int(row["admitted"])
        m.counter(f"{prefix}.rejected").value = int(row["rejected"])
        m.counter(f"{prefix}.drained").value = int(row["drained"])
        m.set_gauge(f"{prefix}.energy_j", row["energy_j"])
        m.set_gauge(f"{prefix}.saved_j", row["saved_j"])


def absorb_scheduler(trace: TraceSession, scheduler) -> None:
    """Pull scheduler job-state totals (incl. requeues) into metrics."""
    if not trace.enabled:
        return
    m = trace.metrics
    states: dict[str, int] = {}
    requeues = 0
    for job in scheduler.jobs.values():
        states[job.state.value] = states.get(job.state.value, 0) + 1
        if job.requeue_of is not None:
            requeues += 1
    for state, n in sorted(states.items()):
        m.counter(f"slurm.jobs.{state}").value = n
    m.counter("slurm.requeues").value = requeues
