"""Metrics registry: counters, gauges and mergeable histograms.

One :class:`MetricsRegistry` per trace session absorbs the counters that
were previously scattered across the stack (profiler fallbacks, sweep-cache
hits/misses, clock-set retries, scheduler requeues, fault-injector totals)
into a single named namespace, exported as one flat JSON document.

Everything is deterministic: no timestamps, no ordering dependence in the
export (names are sorted), and :meth:`Histogram.merge` is associative and
commutative so per-rank histograms can be combined in any grouping.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.errors import ValidationError

#: Default histogram bucket bounds: a decade grid wide enough for both
#: virtual durations (seconds) and energies (joules) in the simulation.
DEFAULT_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValidationError(f"counter increments cannot be negative ({n!r})")
        self.value += n


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution.

    ``bounds`` are the ascending upper edges; a value lands in the first
    bucket whose edge is >= the value, with one overflow bucket past the
    last edge (``len(bounds) + 1`` buckets total).
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValidationError(
                f"histogram bounds must be non-empty and strictly ascending "
                f"({bounds!r})"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms with identical bounds (associative and
        commutative; returns a new histogram, operands unchanged)."""
        if self.bounds != other.bounds:
            raise ValidationError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        out = Histogram(self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        return out

    def as_dict(self) -> dict:
        """Plain-dict form for JSON export."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Name-keyed counters, gauges and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------------- creation

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        elif h.bounds != tuple(float(b) for b in bounds):
            raise ValidationError(
                f"histogram {name!r} already registered with different bounds"
            )
        return h

    # ----------------------------------------------------------- convenience

    def inc(self, name: str, n: int | float = 1) -> None:
        """Increment (creating if needed) a counter."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set (creating if needed) a gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe (creating if needed) into a default-bounds histogram."""
        self.histogram(name).observe(value)

    # --------------------------------------------------------------- export

    def as_dict(self) -> dict:
        """The whole registry as one sorted, JSON-serializable document."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].as_dict()
                           for k in sorted(self._histograms)},
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullMetrics(MetricsRegistry):
    """Recording-free registry handed out by the null trace session."""

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name, bounds=DEFAULT_BOUNDS) -> Histogram:
        return self._null_histogram


NULL_METRICS = NullMetrics()
