"""Observability plane: virtual-time tracing and metrics (``repro.obs``).

A :class:`~repro.obs.session.TraceSession` bundles a span tracer keyed to
the simulation's virtual clocks with a metrics registry (counters, gauges,
histograms). Components across the stack accept an optional ``trace``
argument; without one they share a no-op session, so the hot paths stay
unaffected when tracing is off.

Exporters produce Chrome ``trace_event`` JSON (Perfetto /
``chrome://tracing``) and a flat metrics document, both byte-deterministic
for seeded runs — the foundation of the golden-trace regression tests.
See ``docs/OBSERVABILITY.md`` for the span taxonomy.
"""

from repro.obs.export import (
    chrome_trace,
    dump_json,
    metrics_document,
    write_metrics_json,
    write_trace_json,
)
from repro.obs.dist import emit_graph_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.session import (
    NULL_TRACE,
    TraceSession,
    absorb_cache_report,
    absorb_fault_log,
    absorb_queue,
    absorb_scheduler,
    resolve_trace,
)
from repro.obs.tracer import Instant, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACE",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TraceSession",
    "Tracer",
    "absorb_cache_report",
    "absorb_fault_log",
    "absorb_queue",
    "absorb_scheduler",
    "chrome_trace",
    "dump_json",
    "emit_graph_trace",
    "metrics_document",
    "resolve_trace",
    "write_metrics_json",
    "write_trace_json",
]
