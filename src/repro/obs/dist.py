"""Per-rank trace tracks for distributed graph runs.

Graph executors return node start/finish arrays rather than emitting
spans inline (the batched path is pure and never touches a tracer), so
tracing a distributed run is retroactive: hand
:func:`emit_graph_trace` the graph and its :class:`ExecutionResult`
and it lays every command onto the session's timeline — one
``rank{r}`` track per rank for kernels and their halo pulls, gathers on
a shared ``mpi`` track. The same convention as the single-device obs
plane (spans carry category + attrs; the exporters do the rest).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.session import TraceSession

if TYPE_CHECKING:  # pragma: no cover
    from repro.distributed.graph import CommandGraph


def emit_graph_trace(session: TraceSession, graph: CommandGraph, result) -> int:
    """Record one span per graph node; returns the number emitted.

    Kernel spans land on their rank's track with the plan-visible
    attributes (wave, node id); halo transfers land on the *receiving*
    rank's track under the ``comm`` category, so the overlap with that
    rank's compute is visible in the rendered timeline. Gathers are
    cluster-wide and get the ``mpi`` track. No-op (returns 0) on a
    disabled session.
    """
    from repro.distributed.graph import GATHER, KERNEL

    if not session.enabled:
        return 0
    start = result.start_s
    finish = result.finish_s
    emitted = 0
    for node in graph.nodes:
        t0 = float(start[node.nid])
        t1 = float(finish[node.nid])
        if node.kind == KERNEL:
            track, category = f"rank{node.rank}", "kernel"
        elif node.kind == GATHER:
            track, category = "mpi", "collective"
        else:
            track, category = f"rank{node.rank}", "comm"
        session.add_span(
            track, category, node.label, t0, t1,
            wave=node.wave, nid=node.nid, kind=node.kind,
        )
        emitted += 1
    return emitted
