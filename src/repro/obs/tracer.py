"""Span-based tracing keyed to virtual simulation time.

A :class:`Tracer` records three event kinds, all timestamped from
:class:`~repro.common.clock.VirtualClock` instances (never the wall
clock, so a seeded run always produces a byte-identical trace):

- *spans* — named intervals with a category, a *track* (the timeline they
  render on: a GPU, the SLURM controller, the MPI fabric) and free-form
  attributes. Spans opened through :meth:`Tracer.span` nest: the tracer
  keeps one open-span stack per track and records parent links, so a
  trace can answer "this clock change happened inside that kernel
  submission". Spans whose interval is only known after the fact (a
  kernel's execution window, a sensor sampling window) are recorded
  retroactively with :meth:`Tracer.add_span`.
- *instants* — zero-duration marks (a retry, an injected fault, a drain).

Tracing is **off by default** everywhere in the stack: instrumented
components hold the shared :data:`NULL_TRACER`, whose recording methods
are no-ops and whose ``span`` returns one reusable null context manager,
so the disabled cost per site is an attribute load and a truthiness
check. Enable tracing by passing a real recorder
(``SynergyQueue(trace=...)``, ``Cluster.build(trace=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError


@dataclass
class Span:
    """One recorded interval on a track."""

    span_id: int
    parent_id: int | None
    track: str
    category: str
    name: str
    t0: float
    t1: float | None = None
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> None:
        """Attach attributes to the span (any JSON-serializable values)."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        """Span length in virtual seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def as_dict(self) -> dict:
        """Plain-dict form (stable key order) for JSON export."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "track": self.track,
            "category": self.category,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class Instant:
    """One zero-duration mark on a track."""

    t: float
    track: str
    category: str
    name: str
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "track": self.track,
            "category": self.category,
            "name": self.name,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context manager closing a live span at the clock's exit time."""

    __slots__ = ("_tracer", "_clock", "span")

    def __init__(self, tracer: "Tracer", clock, span: Span) -> None:
        self._tracer = tracer
        self._clock = clock
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span, self._clock.now)


class _NullSpan(Span):
    """Shared inert span handed out by the null tracer."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(span_id=0, parent_id=None, track="", category="",
                         name="", t0=0.0, t1=0.0)

    def set(self, **attrs) -> None:  # no-op: never recorded
        pass


class _NullSpanContext:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class Tracer:
    """Ordered recorder of spans and instants in virtual time."""

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._stacks: dict[str, list[Span]] = {}
        self._next_id: int = 1

    # ------------------------------------------------------------- recording

    def span(self, clock, track: str, category: str, name: str, **attrs):
        """Open a nested span; closes at ``clock.now`` when the ``with``
        block exits. Returns a context manager yielding the live
        :class:`Span` so callers can attach attributes mid-flight."""
        now = clock.now
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1].span_id if stack else None
        sp = Span(
            span_id=self._next_id,
            parent_id=parent,
            track=track,
            category=category,
            name=name,
            t0=now,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(sp)
        stack.append(sp)
        return _SpanContext(self, clock, sp)

    def _close(self, span: Span, now: float) -> None:
        if now < span.t0:
            raise ValidationError(
                f"span {span.name!r} would close before it opened "
                f"(t0={span.t0!r}, now={now!r})"
            )
        span.t1 = now
        stack = self._stacks.get(span.track)
        if stack and stack[-1] is span:
            stack.pop()

    def add_span(
        self,
        track: str,
        category: str,
        name: str,
        t0: float,
        t1: float,
        **attrs,
    ) -> Span:
        """Record an already-finished interval (e.g. a kernel's execution
        window known only after the simulated launch). The span parents
        under the innermost open span of its track, if any."""
        if t1 < t0:
            raise ValidationError(
                f"span {name!r} interval reversed: [{t0!r}, {t1!r}]"
            )
        stack = self._stacks.get(track)
        parent = stack[-1].span_id if stack else None
        sp = Span(
            span_id=self._next_id,
            parent_id=parent,
            track=track,
            category=category,
            name=name,
            t0=t0,
            t1=t1,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(sp)
        return sp

    def instant(
        self, t: float, track: str, category: str, name: str, **attrs
    ) -> None:
        """Record a zero-duration mark."""
        self.instants.append(Instant(float(t), track, category, name, dict(attrs)))

    # ------------------------------------------------------------- reporting

    def span_counts(self) -> dict[str, int]:
        """Completed+open span count per category (sorted by category)."""
        out: dict[str, int] = {}
        for sp in self.spans:
            out[sp.category] = out.get(sp.category, 0) + 1
        return dict(sorted(out.items()))

    def instant_counts(self) -> dict[str, int]:
        """Instant count per category (sorted by category)."""
        out: dict[str, int] = {}
        for ev in self.instants:
            out[ev.category] = out.get(ev.category, 0) + 1
        return dict(sorted(out.items()))

    def open_spans(self) -> list[Span]:
        """Spans not yet closed (should be empty after a finished run)."""
        return [sp for sp in self.spans if sp.t1 is None]


class NullTracer(Tracer):
    """Recording-free tracer: every method is (amortized) allocation-free."""

    enabled = False

    def span(self, clock, track, category, name, **attrs):
        return NULL_SPAN_CONTEXT

    def add_span(self, track, category, name, t0, t1, **attrs) -> Span:
        return NULL_SPAN

    def instant(self, t, track, category, name, **attrs) -> None:
        pass


#: Shared inert singletons: the default "tracing off" recorder state.
NULL_SPAN = _NullSpan()
NULL_SPAN_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()
