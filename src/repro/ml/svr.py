"""ε-insensitive support vector regression with an RBF kernel.

The dual problem (with the bias absorbed into the kernel as ``K' = K + 1``,
removing the equality constraint) is

``max_β  −½ βᵀK'β + βᵀy − ε‖β‖₁   s.t.  |β_i| ≤ C``

solved by projected coordinate maximization: each coordinate update is a
closed-form soft-threshold followed by clipping to the box, cycling until
the largest coordinate move falls below tolerance. Inputs are standardized
internally (RBF kernels assume comparable feature scales).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.ml.base import Estimator, check_Xy
from repro.ml.preprocessing import StandardScaler


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix ``exp(−γ·‖a − b‖²)`` of shape ``(|A|, |B|)``."""
    a2 = np.sum(A**2, axis=1)[:, None]
    b2 = np.sum(B**2, axis=1)[None, :]
    sq = np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * sq)


class SVR(Estimator):
    """RBF-kernel ε-SVR.

    Parameters
    ----------
    C:
        Box constraint (regularization inverse).
    epsilon:
        Width of the ε-insensitive tube.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (n_features · var(X))`` like
        scikit-learn.
    max_iter, tol:
        Coordinate-descent loop controls.
    """

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.01,
        gamma: float | str = "scale",
        max_iter: int = 400,
        tol: float = 1e-5,
    ) -> None:
        if C <= 0:
            raise ValidationError(f"C must be positive ({C!r})")
        if epsilon < 0:
            raise ValidationError(f"epsilon cannot be negative ({epsilon!r})")
        if isinstance(gamma, str) and gamma != "scale":
            raise ValidationError(f"gamma must be a float or 'scale' ({gamma!r})")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._scaler: StandardScaler | None = None
        self._X: np.ndarray | None = None
        self.beta_: np.ndarray | None = None
        self.gamma_: float | None = None
        self.n_iter_: int = 0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, (int, float)):
            if self.gamma <= 0:
                raise ValidationError(f"gamma must be positive ({self.gamma!r})")
            return float(self.gamma)
        var = float(X.var())
        return 1.0 / (X.shape[1] * var) if var > 0 else 1.0

    def fit(self, X, y) -> "SVR":
        X, y = check_Xy(X, y)
        assert y is not None
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        self.gamma_ = self._resolve_gamma(Xs)
        n = Xs.shape[0]
        K = rbf_kernel(Xs, Xs, self.gamma_) + 1.0  # +1 absorbs the bias term
        diag = np.diag(K).copy()

        beta = np.zeros(n)
        # gradient residual: g_i = y_i − Σ_j K_ij β_j, maintained incrementally
        g = y.astype(float).copy()
        for iteration in range(1, self.max_iter + 1):
            max_move = 0.0
            for i in range(n):
                # Unconstrained maximizer of the i-th coordinate with the
                # ε-L1 term: soft-threshold of the partial residual.
                rho = g[i] + diag[i] * beta[i]
                if rho > self.epsilon:
                    target = (rho - self.epsilon) / diag[i]
                elif rho < -self.epsilon:
                    target = (rho + self.epsilon) / diag[i]
                else:
                    target = 0.0
                new_beta = float(np.clip(target, -self.C, self.C))
                delta = new_beta - beta[i]
                if delta != 0.0:
                    g -= delta * K[:, i]
                    beta[i] = new_beta
                    max_move = max(max_move, abs(delta))
            self.n_iter_ = iteration
            if max_move < self.tol * max(self.C, 1.0):
                break

        self._X = Xs
        self.beta_ = beta
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("beta_")
        assert (
            self._scaler is not None
            and self._X is not None
            and self.beta_ is not None
            and self.gamma_ is not None
        )
        X, _ = check_Xy(X)
        Xs = self._scaler.transform(X)
        K = rbf_kernel(Xs, self._X, self.gamma_) + 1.0
        return K @ self.beta_

    @property
    def support_(self) -> np.ndarray:
        """Indices of support vectors (nonzero dual coefficients)."""
        self._check_fitted("beta_")
        assert self.beta_ is not None
        return np.flatnonzero(np.abs(self.beta_) > 1e-12)
