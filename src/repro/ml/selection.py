"""Cross-validated scoring."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.base import Estimator, check_Xy
from repro.ml.preprocessing import KFold


def cross_val_score(
    make_estimator: Callable[[], Estimator],
    X,
    y,
    n_splits: int = 5,
    seed: int | None = None,
) -> np.ndarray:
    """R² score per fold for a fresh estimator trained on each fold.

    Takes a factory rather than an estimator instance so folds never share
    fitted state.
    """
    X, y = check_Xy(X, y)
    assert y is not None
    scores = []
    for train_idx, test_idx in KFold(n_splits=n_splits, seed=seed).split(X.shape[0]):
        est = make_estimator()
        est.fit(X[train_idx], y[train_idx])
        scores.append(est.score(X[test_idx], y[test_idx]))
    return np.array(scores)
