"""Feature scaling and data-splitting utilities."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.ml.base import check_Xy


class StandardScaler:
    """Zero-mean unit-variance feature scaling (constant columns pass through)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X, _ = check_Xy(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant features are centered only
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise ValidationError("StandardScaler is not fitted")
        X, _ = check_Xy(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"feature count mismatch: fitted {self.mean_.shape[0]}, "
                f"got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit then transform in one step."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise ValidationError("StandardScaler is not fitted")
        X, _ = check_Xy(X)
        return X * self.scale_ + self.mean_


def train_test_split(
    X, y, test_fraction: float = 0.25, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into ``(X_train, X_test, y_train, y_test)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test fraction must be in (0, 1) ({test_fraction!r})")
    X, y = check_Xy(X, y)
    assert y is not None
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValidationError(
            f"test fraction {test_fraction} leaves no training samples for n={n}"
        )
    perm = make_rng(seed).permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator (optionally shuffled)."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int | None = None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2 ({n_splits!r})")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs over ``n_samples``."""
        if n_samples < self.n_splits:
            raise ValidationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = make_rng(self.seed).permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx
