"""Lasso regression via cyclic coordinate descent.

Minimizes ``(1/2n)·‖y − Xw − b‖² + α·‖w‖₁``. Features are standardized
internally (the textbook coordinate-descent update assumes comparable column
scales); coefficients are mapped back to the original scale after fitting.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.ml.base import Estimator, check_Xy


def _soft_threshold(value: float, threshold: float) -> float:
    """The proximal operator of the L1 norm."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class Lasso(Estimator):
    """L1-regularized linear regression."""

    def __init__(
        self,
        alpha: float = 0.01,
        max_iter: int = 1000,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        if alpha < 0:
            raise ValidationError(f"alpha cannot be negative ({alpha!r})")
        if max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1 ({max_iter!r})")
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "Lasso":
        X, y = check_Xy(X, y)
        assert y is not None
        n, p = X.shape

        x_mean = X.mean(axis=0) if self.fit_intercept else np.zeros(p)
        y_mean = float(y.mean()) if self.fit_intercept else 0.0
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        Xs = (X - x_mean) / x_scale
        yc = y - y_mean

        w = np.zeros(p)
        residual = yc.copy()  # residual = yc − Xs @ w, maintained incrementally
        col_sq = (Xs**2).sum(axis=0)
        threshold = self.alpha * n

        for iteration in range(1, self.max_iter + 1):
            max_delta = 0.0
            for j in range(p):
                if col_sq[j] == 0.0:
                    continue
                rho = float(Xs[:, j] @ residual) + col_sq[j] * w[j]
                w_new = _soft_threshold(rho, threshold) / col_sq[j]
                delta = w_new - w[j]
                if delta != 0.0:
                    residual -= delta * Xs[:, j]
                    w[j] = w_new
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = iteration
            if max_delta < self.tol:
                break

        # Map back to the original feature scale.
        self.coef_ = w / x_scale
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X, _ = check_Xy(X)
        assert self.coef_ is not None
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"feature count mismatch: fitted {self.coef_.shape[0]}, "
                f"got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_
