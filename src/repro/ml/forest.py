"""Random forest regression: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import derive_seed, make_rng
from repro.ml.base import Estimator, check_Xy
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor(Estimator):
    """Bootstrap-aggregated regression trees.

    Defaults follow common practice for regression: trees grown deep,
    one-third of the features considered per split, full-size bootstrap
    resamples. Fully deterministic given ``seed``.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | float | None = 1.0 / 3.0,
        bootstrap: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1 ({n_estimators!r})")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] | None = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_Xy(X, y)
        assert y is not None
        n = X.shape[0]
        rng = make_rng(self.seed)
        trees: list[DecisionTreeRegressor] = []
        for i in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
            else:
                Xb, yb = X, y
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=derive_seed(self.seed, "tree", i),
            )
            tree.fit(Xb, yb)
            trees.append(tree)
        self.trees_ = trees
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        assert self.trees_ is not None
        X, _ = check_Xy(X)
        predictions = np.stack([tree.predict(X) for tree in self.trees_])
        return predictions.mean(axis=0)
