"""Random forest regression: bagged CART trees with feature subsampling.

Training can fan the independent tree fits out over worker processes (or
threads). Determinism is preserved by construction: every bootstrap resample
is drawn **serially** from the forest-level RNG before any worker starts,
each tree's own RNG is seeded with ``derive_seed(seed, "tree", i)`` exactly
as in serial training, and the fitted trees are reassembled in index order —
so ``trees_`` (and therefore predictions) are bitwise identical for any
worker count, including the serial fallback.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import derive_seed, make_rng
from repro.ml.base import Estimator, check_Xy
from repro.ml.tree import DecisionTreeRegressor, FlatTree

#: Environment knob for the default training worker count ("1" = serial).
JOBS_ENV_VAR = "REPRO_JOBS"
#: Environment knob for the executor kind: "process" (default) or "thread".
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def _fit_one_tree(args) -> DecisionTreeRegressor:
    """Fit a single forest member (module-level for process pools)."""
    X, y, idx, params, seed = args
    tree = DecisionTreeRegressor(seed=seed, **params)
    if idx is None:
        return tree.fit(X, y)
    return tree.fit(X[idx], y[idx])


@dataclass(frozen=True)
class _StackedForest:
    """All member trees' flat arrays concatenated with offset child links."""

    flat: FlatTree
    roots: np.ndarray  # (n_trees,) node index of each tree's root


def _stack_trees(trees: list[DecisionTreeRegressor]) -> _StackedForest:
    flats = [t.flat_tree() for t in trees]
    offsets = np.cumsum([0] + [f.n_nodes for f in flats[:-1]])
    feature = np.concatenate([f.feature for f in flats])
    threshold = np.concatenate([f.threshold for f in flats])
    value = np.concatenate([f.value for f in flats])
    left = np.concatenate(
        [np.where(f.left >= 0, f.left + off, -1) for f, off in zip(flats, offsets)]
    )
    right = np.concatenate(
        [np.where(f.right >= 0, f.right + off, -1) for f, off in zip(flats, offsets)]
    )
    return _StackedForest(
        flat=FlatTree(
            feature=feature, threshold=threshold, left=left, right=right,
            value=value,
        ),
        roots=np.asarray(offsets, dtype=np.intp),
    )


class RandomForestRegressor(Estimator):
    """Bootstrap-aggregated regression trees.

    Defaults follow common practice for regression: trees grown deep,
    one-third of the features considered per split, full-size bootstrap
    resamples. Fully deterministic given ``seed`` — regardless of
    ``n_jobs``.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | float | None = 1.0 / 3.0,
        bootstrap: bool = True,
        seed: int | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1 ({n_estimators!r})")
        if n_jobs is not None and n_jobs < 1:
            raise ValidationError(f"n_jobs must be >= 1 ({n_jobs!r})")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.n_jobs = n_jobs
        self.trees_: list[DecisionTreeRegressor] | None = None
        self._stacked: tuple[object, _StackedForest] | None = None
        #: Number of incremental refreshes applied (seeds each refresh's
        #: bootstrap/tree RNG streams, so repeated refreshes stay distinct
        #: yet deterministic).
        self.refresh_generation_: int = 0

    def _resolve_jobs(self) -> int:
        """Worker count: explicit ``n_jobs``, else ``REPRO_JOBS``, else 1."""
        if self.n_jobs is not None:
            return self.n_jobs
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                return 1
        return 1

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def _bootstrap_indices(self, n: int) -> list[np.ndarray | None]:
        """Draw all resamples serially — the RNG call order of serial fit."""
        rng = make_rng(self.seed)
        draws: list[np.ndarray | None] = []
        for _ in range(self.n_estimators):
            draws.append(rng.integers(0, n, size=n) if self.bootstrap else None)
        return draws

    def fit(self, X, y) -> "RandomForestRegressor":
        """Fit all trees, in parallel when ``n_jobs``/``REPRO_JOBS`` > 1."""
        X, y = check_Xy(X, y)
        assert y is not None
        tasks = [
            (X, y, idx, self._tree_params(), derive_seed(self.seed, "tree", i))
            for i, idx in enumerate(self._bootstrap_indices(X.shape[0]))
        ]
        jobs = min(self._resolve_jobs(), self.n_estimators)
        trees: list[DecisionTreeRegressor] | None = None
        if jobs > 1:
            executor_cls = (
                ThreadPoolExecutor
                if os.environ.get(EXECUTOR_ENV_VAR, "process").strip() == "thread"
                else ProcessPoolExecutor
            )
            try:
                with executor_cls(max_workers=jobs) as pool:
                    trees = list(pool.map(_fit_one_tree, tasks))
            except Exception:
                # Pool unavailable (restricted sandbox, missing semaphores,
                # pickling limits): fall back to the serial path, which
                # produces the identical forest.
                trees = None
        if trees is None:
            trees = [_fit_one_tree(task) for task in tasks]
        self.trees_ = trees
        self._stacked = None
        self.refresh_generation_ = 0
        return self

    def refresh(self, X, y, *, fraction: float = 0.5) -> "RandomForestRegressor":
        """Incrementally refresh the forest from a recent measurement window.

        Replaces the first ``ceil(fraction × n_estimators)`` trees with
        trees fitted on ``(X, y)`` — the drift-adaptation primitive: the
        refreshed members learn the shifted curve while the survivors
        retain the pre-drift shape, so predictions move toward the new
        regime without discarding everything the full training set taught.

        Deterministic: bootstrap resamples are drawn serially from a
        generation-derived stream and each new tree is seeded with
        ``derive_seed(seed, "refresh", generation, i)``, so a refreshed
        forest is a pure function of (seed, fit data, refresh windows).
        """
        self._check_fitted("trees_")
        assert self.trees_ is not None
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(f"refresh fraction must be in (0, 1] ({fraction!r})")
        X, y = check_Xy(X, y)
        assert y is not None
        fitted_p = self.trees_[0].n_features_
        if fitted_p is not None and X.shape[1] != fitted_p:
            raise ValidationError(
                f"feature count mismatch: fitted {fitted_p}, got {X.shape[1]}"
            )
        generation = self.refresh_generation_ + 1
        n_replace = int(np.ceil(fraction * self.n_estimators))
        rng = make_rng(derive_seed(self.seed, "refresh", generation))
        n = X.shape[0]
        trees = list(self.trees_)
        for i in range(n_replace):
            idx = rng.integers(0, n, size=n) if self.bootstrap else None
            seed = derive_seed(self.seed, "refresh", generation, i)
            trees[i] = _fit_one_tree((X, y, idx, self._tree_params(), seed))
        self.trees_ = trees
        self._stacked = None
        self.refresh_generation_ = generation
        return self

    def fit_scalar(self, X, y) -> "RandomForestRegressor":
        """Reference serial fit via the per-node-argsort tree path."""
        X, y = check_Xy(X, y)
        assert y is not None
        trees: list[DecisionTreeRegressor] = []
        for i, idx in enumerate(self._bootstrap_indices(X.shape[0])):
            Xb, yb = (X, y) if idx is None else (X[idx], y[idx])
            tree = DecisionTreeRegressor(
                seed=derive_seed(self.seed, "tree", i), **self._tree_params()
            )
            tree.fit_scalar(Xb, yb)
            trees.append(tree)
        self.trees_ = trees
        self._stacked = None
        self.refresh_generation_ = 0
        return self

    def _stacked_forest(self) -> _StackedForest:
        assert self.trees_ is not None
        cached = getattr(self, "_stacked", None)
        if cached is not None and cached[0] is self.trees_:
            return cached[1]
        stacked = _stack_trees(self.trees_)
        self._stacked = (self.trees_, stacked)
        return stacked

    def predict(self, X) -> np.ndarray:
        """Vectorized prediction over all stacked trees at once."""
        self._check_fitted("trees_")
        assert self.trees_ is not None
        X, _ = check_Xy(X)
        fitted_p = self.trees_[0].n_features_
        if fitted_p is not None and X.shape[1] != fitted_p:
            raise ValidationError(
                f"feature count mismatch: fitted {fitted_p}, got {X.shape[1]}"
            )
        stacked = self._stacked_forest()
        flat = stacked.flat
        n_trees = stacked.roots.shape[0]
        n = X.shape[0]
        nodes = np.repeat(stacked.roots, n)
        cols = np.tile(np.arange(n, dtype=np.intp), n_trees)
        active = np.flatnonzero(flat.feature[nodes] >= 0)
        while active.size:
            cur = nodes[active]
            rows = cols[active]
            go_left = X[rows, flat.feature[cur]] <= flat.threshold[cur]
            nxt = np.where(go_left, flat.left[cur], flat.right[cur])
            nodes[active] = nxt
            active = active[flat.feature[nxt] >= 0]
        predictions = flat.value[nodes].reshape(n_trees, n)
        return predictions.mean(axis=0)

    def predict_scalar(self, X) -> np.ndarray:
        """Reference prediction: per-tree node walks; kept as baseline."""
        self._check_fitted("trees_")
        assert self.trees_ is not None
        X, _ = check_Xy(X)
        predictions = np.stack([tree.predict_scalar(X) for tree in self.trees_])
        return predictions.mean(axis=0)
