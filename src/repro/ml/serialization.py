"""Estimator serialization to plain JSON-compatible dictionaries.

Deployment (§3.2) trains the energy models once per system; the trained
bundle must survive to later compile jobs. Serialization is explicit and
pickle-free: every estimator maps to a ``{"type": ..., ...}`` dict of
lists/floats, so model files are portable, inspectable and safe to load.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.errors import ValidationError
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestRegressor
from repro.ml.lasso import Lasso
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.preprocessing import StandardScaler
from repro.ml.svr import SVR
from repro.ml.tree import DecisionTreeRegressor, _Node


def _array(value) -> list:
    return np.asarray(value, dtype=float).tolist()


# --------------------------------------------------------------------- trees

def _node_to_dict(node: _Node) -> dict[str, Any]:
    if node.is_leaf:
        return {"value": node.value}
    assert node.left is not None and node.right is not None
    return {
        "value": node.value,
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: dict[str, Any]) -> _Node:
    node = _Node(value=float(data["value"]))
    if "feature" in data:
        node.feature = int(data["feature"])
        node.threshold = float(data["threshold"])
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


# ---------------------------------------------------------------- estimators

def serialize_estimator(estimator: Estimator) -> dict[str, Any]:
    """Serialize any fitted repro estimator to a JSON-compatible dict."""
    if isinstance(estimator, (LinearRegression, Ridge, Lasso)):
        if estimator.coef_ is None:
            raise ValidationError("cannot serialize an unfitted linear model")
        data: dict[str, Any] = {
            "type": type(estimator).__name__,
            "coef": _array(estimator.coef_),
            "intercept": float(estimator.intercept_),
        }
        if isinstance(estimator, Ridge):
            data["alpha"] = estimator.alpha
        if isinstance(estimator, Lasso):
            data["alpha"] = estimator.alpha
        return data
    if isinstance(estimator, DecisionTreeRegressor):
        if estimator._root is None:
            raise ValidationError("cannot serialize an unfitted tree")
        return {
            "type": "DecisionTreeRegressor",
            "n_features": estimator.n_features_,
            "root": _node_to_dict(estimator._root),
        }
    if isinstance(estimator, RandomForestRegressor):
        if estimator.trees_ is None:
            raise ValidationError("cannot serialize an unfitted forest")
        return {
            "type": "RandomForestRegressor",
            "trees": [serialize_estimator(t) for t in estimator.trees_],
        }
    if isinstance(estimator, SVR):
        if estimator.beta_ is None:
            raise ValidationError("cannot serialize an unfitted SVR")
        assert estimator._scaler is not None and estimator._X is not None
        return {
            "type": "SVR",
            "beta": _array(estimator.beta_),
            "support_X": [_array(row) for row in estimator._X],
            "gamma": float(estimator.gamma_),
            "scaler_mean": _array(estimator._scaler.mean_),
            "scaler_scale": _array(estimator._scaler.scale_),
            "C": estimator.C,
            "epsilon": estimator.epsilon,
        }
    raise ValidationError(
        f"don't know how to serialize {type(estimator).__name__}"
    )


def deserialize_estimator(data: dict[str, Any]) -> Estimator:
    """Rebuild an estimator serialized by :func:`serialize_estimator`."""
    kind = data.get("type")
    if kind in ("LinearRegression", "Ridge", "Lasso"):
        if kind == "LinearRegression":
            est: Any = LinearRegression()
        elif kind == "Ridge":
            est = Ridge(alpha=float(data.get("alpha", 1.0)))
        else:
            est = Lasso(alpha=float(data.get("alpha", 0.01)))
        est.coef_ = np.asarray(data["coef"], dtype=float)
        est.intercept_ = float(data["intercept"])
        return est
    if kind == "DecisionTreeRegressor":
        tree = DecisionTreeRegressor()
        tree.n_features_ = int(data["n_features"])
        tree._root = _node_from_dict(data["root"])
        return tree
    if kind == "RandomForestRegressor":
        forest = RandomForestRegressor(n_estimators=max(len(data["trees"]), 1))
        forest.trees_ = [deserialize_estimator(t) for t in data["trees"]]  # type: ignore[misc]
        return forest
    if kind == "SVR":
        svr = SVR(C=float(data["C"]), epsilon=float(data["epsilon"]))
        svr.beta_ = np.asarray(data["beta"], dtype=float)
        svr._X = np.asarray(data["support_X"], dtype=float)
        svr.gamma_ = float(data["gamma"])
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(data["scaler_mean"], dtype=float)
        scaler.scale_ = np.asarray(data["scaler_scale"], dtype=float)
        svr._scaler = scaler
        return svr
    raise ValidationError(f"unknown estimator type {kind!r}")
