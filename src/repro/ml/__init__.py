"""From-scratch machine-learning algorithms (paper §8.3).

scikit-learn is not available offline, so the four regression families the
paper compares are reimplemented on NumPy:

- :class:`~repro.ml.linear.LinearRegression` (ordinary least squares) and
  :class:`~repro.ml.linear.Ridge`,
- :class:`~repro.ml.lasso.Lasso` (cyclic coordinate descent),
- :class:`~repro.ml.forest.RandomForestRegressor` over
  :class:`~repro.ml.tree.DecisionTreeRegressor` (CART, variance reduction),
- :class:`~repro.ml.svr.SVR` with an RBF kernel (ε-insensitive dual solved
  by projected coordinate descent with the bias absorbed into the kernel).

Plus the supporting cast: :class:`~repro.ml.preprocessing.StandardScaler`,
train/test split, K-fold CV and scoring.
"""

from repro.ml.base import Estimator, check_Xy, r2_score
from repro.ml.forest import RandomForestRegressor
from repro.ml.lasso import Lasso
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.preprocessing import KFold, StandardScaler, train_test_split
from repro.ml.selection import cross_val_score
from repro.ml.svr import SVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "Estimator",
    "check_Xy",
    "r2_score",
    "LinearRegression",
    "Ridge",
    "Lasso",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "SVR",
    "StandardScaler",
    "train_test_split",
    "KFold",
    "cross_val_score",
]
