"""CART regression tree.

Standard variance-reduction splitting with sorted-scan split search: for each
candidate feature the samples are sorted once and prefix sums of ``y`` and
``y²`` give every split's SSE in O(n). Supports per-node feature subsampling
(``max_features``) for random-forest use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.ml.base import Estimator, check_Xy


@dataclass
class _Node:
    """Tree node: either a leaf (``value``) or an internal split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray, y: np.ndarray, features: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Best ``(feature, threshold, sse_gain)`` over candidate features.

    Returns ``None`` when no split satisfies the leaf-size constraint or
    improves the SSE.
    """
    n = y.shape[0]
    total_sum = float(y.sum())
    total_sq = float((y**2).sum())
    parent_sse = total_sq - total_sum**2 / n

    best: tuple[int, float, float] | None = None
    for j in features:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        # Candidate split positions: between distinct consecutive x values,
        # honouring the minimum leaf size on both sides.
        csum = np.cumsum(ys)
        csq = np.cumsum(ys**2)
        idx = np.arange(1, n)  # left part has idx samples
        valid = (xs[1:] != xs[:-1]) & (idx >= min_leaf) & (n - idx >= min_leaf)
        if not np.any(valid):
            continue
        k = idx[valid]
        left_sum, left_sq = csum[k - 1], csq[k - 1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq
            - left_sum**2 / k
            + right_sq
            - right_sum**2 / (n - k)
        )
        i = int(np.argmin(sse))
        gain = parent_sse - float(sse[i])
        if gain <= 1e-12:
            continue
        split_at = k[i]
        threshold = float((xs[split_at - 1] + xs[split_at]) / 2.0)
        if best is None or gain > best[2]:
            best = (int(j), threshold, gain)
    return best


class DecisionTreeRegressor(Estimator):
    """Binary regression tree minimizing within-leaf variance."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1 ({max_depth!r})")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2 ({min_samples_split!r})"
            )
        if min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1 ({min_samples_leaf!r})"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self.n_features_: int | None = None

    def _n_candidate_features(self, p: int) -> int:
        if self.max_features is None:
            return p
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValidationError(
                    f"fractional max_features must be in (0, 1] "
                    f"({self.max_features!r})"
                )
            return max(1, int(round(self.max_features * p)))
        if self.max_features < 1:
            raise ValidationError(f"max_features must be >= 1 ({self.max_features!r})")
        return min(int(self.max_features), p)

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_Xy(X, y)
        assert y is not None
        self.n_features_ = X.shape[1]
        rng = make_rng(self.seed)
        k = self._n_candidate_features(X.shape[1])
        self._root = self._grow(X, y, depth=0, rng=rng, k_features=k)
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng, k_features: int
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        n, p = X.shape
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node
        if k_features < p:
            features = rng.choice(p, size=k_features, replace=False)
        else:
            features = np.arange(p)
        split = _best_split(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        return node

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_root")
        X, _ = check_Xy(X)
        assert self.n_features_ is not None
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"feature count mismatch: fitted {self.n_features_}, "
                f"got {X.shape[1]}"
            )
        out = np.empty(X.shape[0], dtype=float)
        for i, row in enumerate(X):
            node = self._root
            assert node is not None
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (a root-only tree has depth 0)."""
        self._check_fitted("_root")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(_depth(node.left), _depth(node.right))

        assert self._root is not None
        return _depth(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted("_root")

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return _count(node.left) + _count(node.right)

        assert self._root is not None
        return _count(self._root)
