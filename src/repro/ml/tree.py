"""CART regression tree.

Standard variance-reduction splitting with sorted-scan split search: for each
candidate feature the samples are scanned in sorted order and prefix sums of
``y`` and ``y²`` give every split's SSE in O(n). Supports per-node feature
subsampling (``max_features``) for random-forest use.

Two fast paths (both bitwise-equivalent to the reference implementation,
which stays callable as :meth:`DecisionTreeRegressor.fit_scalar` /
:meth:`DecisionTreeRegressor.predict_scalar`):

- **presorted fitting** — features are stable-argsorted once per tree;
  every node filters the parent's sorted index columns instead of
  re-sorting, and the SSE scan runs over all candidate features in one
  2-D NumPy pass instead of a Python loop,
- **flattened prediction** — the fitted node graph is flattened into
  struct-of-arrays form (``feature/threshold/left/right/value``) and
  batches of rows descend the tree level-synchronously with vectorized
  gathers instead of walking node objects row-by-row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.ml.base import Estimator, check_Xy


@dataclass
class _Node:
    """Tree node: either a leaf (``value``) or an internal split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass(frozen=True)
class FlatTree:
    """Struct-of-arrays form of a fitted tree (preorder node layout).

    Leaves carry ``feature == -1`` and ``left == right == -1``; internal
    nodes index their children into the same arrays.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.value.shape[0])


def _flatten_tree(root: _Node) -> FlatTree:
    """Flatten a node graph into preorder arrays."""
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []

    def add(node: _Node) -> int:
        i = len(value)
        value.append(node.value)
        feature.append(node.feature if not node.is_leaf else -1)
        threshold.append(node.threshold)
        left.append(-1)
        right.append(-1)
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            left[i] = add(node.left)
            right[i] = add(node.right)
        return i

    add(root)
    return FlatTree(
        feature=np.asarray(feature, dtype=np.intp),
        threshold=np.asarray(threshold, dtype=float),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        value=np.asarray(value, dtype=float),
    )


def _flat_predict(flat: FlatTree, X: np.ndarray) -> np.ndarray:
    """Vectorized batched descent over a flattened tree."""
    nodes = np.zeros(X.shape[0], dtype=np.intp)
    active = np.flatnonzero(flat.feature[nodes] >= 0)
    while active.size:
        cur = nodes[active]
        go_left = X[active, flat.feature[cur]] <= flat.threshold[cur]
        nxt = np.where(go_left, flat.left[cur], flat.right[cur])
        nodes[active] = nxt
        active = active[flat.feature[nxt] >= 0]
    return flat.value[nodes]


def _best_split(
    X: np.ndarray, y: np.ndarray, features: np.ndarray, min_leaf: int
) -> tuple[int, float, float] | None:
    """Reference best ``(feature, threshold, sse_gain)`` (argsort per node).

    Kept as the scalar baseline the fast presorted path is verified (and
    benchmarked) against. Returns ``None`` when no split satisfies the
    leaf-size constraint or improves the SSE.
    """
    n = y.shape[0]
    total_sum = float(y.sum())
    total_sq = float((y**2).sum())
    parent_sse = total_sq - total_sum**2 / n

    best: tuple[int, float, float] | None = None
    for j in features:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        # Candidate split positions: between distinct consecutive x values,
        # honouring the minimum leaf size on both sides.
        csum = np.cumsum(ys)
        csq = np.cumsum(ys**2)
        idx = np.arange(1, n)  # left part has idx samples
        valid = (xs[1:] != xs[:-1]) & (idx >= min_leaf) & (n - idx >= min_leaf)
        if not np.any(valid):
            continue
        k = idx[valid]
        left_sum, left_sq = csum[k - 1], csq[k - 1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq
            - left_sum**2 / k
            + right_sq
            - right_sum**2 / (n - k)
        )
        i = int(np.argmin(sse))
        gain = parent_sse - float(sse[i])
        if gain <= 1e-12:
            continue
        split_at = k[i]
        threshold = float((xs[split_at - 1] + xs[split_at]) / 2.0)
        if best is None or gain > best[2]:
            best = (int(j), threshold, gain)
    return best


def _best_split_presorted(
    X: np.ndarray,
    y: np.ndarray,
    sorted_cols: np.ndarray,
    features: np.ndarray,
    min_leaf: int,
    total_sum: float,
    total_sq: float,
) -> tuple[int, float] | None:
    """Vectorized best split over all candidate features in one pass.

    ``sorted_cols`` has shape ``(p, m)``: row ``j`` holds the node's row
    indices sorted (stably) by feature ``j`` (row-major so per-feature
    scans run over contiguous memory). Produces the identical
    ``(feature, threshold)`` choice as :func:`_best_split` — same
    elementwise arithmetic, same first-wins tie-breaking — without a
    per-node argsort or a Python loop over features.

    The SSE scan is restricted to the band of split positions that can
    satisfy the leaf-size constraint (left part size in
    ``[min_leaf, m - min_leaf]``); positions outside the band are invalid
    for every feature, so the restriction cannot change the selected
    first-minimum position.
    """
    m = sorted_cols.shape[1]
    lo = min_leaf - 1                            # band of positions i where
    hi = m - min_leaf                            # left size i+1 is feasible
    if hi <= lo:
        return None
    parent_sse = total_sq - total_sum**2 / m

    order = sorted_cols[features]                # (k, m)
    xs = X[order, features[:, None]]             # node values, sorted per row
    ys = y[order]
    csum = np.cumsum(ys, axis=1)
    csq = np.cumsum(ys**2, axis=1)
    counts = np.arange(lo + 1, hi + 1)           # left sizes inside the band
    valid = xs[:, lo + 1 : hi + 1] != xs[:, lo:hi]
    left_sum = csum[:, lo:hi]
    left_sq = csq[:, lo:hi]
    right_sum = total_sum - left_sum
    right_sq = total_sq - left_sq
    sse = (
        left_sq
        - left_sum**2 / counts
        + right_sq
        - right_sum**2 / (m - counts)
    )
    sse = np.where(valid, sse, np.inf)
    pos = np.argmin(sse, axis=1)                 # first minimum per feature
    best_sse = sse[np.arange(features.shape[0]), pos]
    gains = np.where(np.isfinite(best_sse), parent_sse - best_sse, -np.inf)
    j = int(np.argmax(gains))                    # first maximum wins ties
    if gains[j] <= 1e-12:
        return None
    split_at = int(pos[j]) + lo + 1
    threshold = float((xs[j, split_at - 1] + xs[j, split_at]) / 2.0)
    return int(features[j]), threshold


class DecisionTreeRegressor(Estimator):
    """Binary regression tree minimizing within-leaf variance."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1 ({max_depth!r})")
        if min_samples_split < 2:
            raise ValidationError(
                f"min_samples_split must be >= 2 ({min_samples_split!r})"
            )
        if min_samples_leaf < 1:
            raise ValidationError(
                f"min_samples_leaf must be >= 1 ({min_samples_leaf!r})"
            )
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._flat: FlatTree | None = None
        self.n_features_: int | None = None

    def _n_candidate_features(self, p: int) -> int:
        if self.max_features is None:
            return p
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValidationError(
                    f"fractional max_features must be in (0, 1] "
                    f"({self.max_features!r})"
                )
            return max(1, int(round(self.max_features * p)))
        if self.max_features < 1:
            raise ValidationError(f"max_features must be >= 1 ({self.max_features!r})")
        return min(int(self.max_features), p)

    def fit(self, X, y) -> "DecisionTreeRegressor":
        """Fit via the presorted fast path (identical trees to fit_scalar)."""
        X, y = check_Xy(X, y)
        assert y is not None
        self.n_features_ = X.shape[1]
        rng = make_rng(self.seed)
        k = self._n_candidate_features(X.shape[1])
        rows = np.arange(X.shape[0], dtype=np.intp)
        sorted_cols = np.ascontiguousarray(
            np.argsort(X, axis=0, kind="stable").T
        )
        scratch = np.zeros(X.shape[0], dtype=bool)
        self._root = self._grow_presorted(
            X, y, rows, sorted_cols, 0, rng, k, scratch
        )
        self._flat = _flatten_tree(self._root)
        return self

    def fit_scalar(self, X, y) -> "DecisionTreeRegressor":
        """Reference fit (argsort per node per feature); kept as baseline."""
        X, y = check_Xy(X, y)
        assert y is not None
        self.n_features_ = X.shape[1]
        rng = make_rng(self.seed)
        k = self._n_candidate_features(X.shape[1])
        self._root = self._grow(X, y, depth=0, rng=rng, k_features=k)
        self._flat = None
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng, k_features: int
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        n, p = X.shape
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node
        if k_features < p:
            features = rng.choice(p, size=k_features, replace=False)
        else:
            features = np.arange(p)
        split = _best_split(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng, k_features)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng, k_features)
        return node

    def _grow_presorted(
        self,
        X: np.ndarray,
        y: np.ndarray,
        rows: np.ndarray,
        sorted_cols: np.ndarray,
        depth: int,
        rng,
        k_features: int,
        scratch: np.ndarray,
    ) -> _Node:
        """Presorted twin of :meth:`_grow`.

        ``rows`` holds the node's sample indices in original row order (so
        all reductions see the same operand order as the reference path);
        ``sorted_cols`` carries one stably-sorted index row per feature,
        maintained by mask-filtering the parent's rows — which preserves
        stable order, so every split scan sees the exact sequences the
        per-node argsort would have produced. ``scratch`` is a shared
        full-length boolean buffer (always all-False between calls) that
        avoids an O(n) allocation at every node.
        """
        y_node = y[rows]
        total_sum = float(y_node.sum())
        m = rows.shape[0]
        node = _Node(value=total_sum / m)
        p = X.shape[1]
        if (
            m < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y_node == y_node[0])
        ):
            return node
        if k_features < p:
            features = rng.choice(p, size=k_features, replace=False)
        else:
            features = np.arange(p)
        split = _best_split_presorted(
            X,
            y,
            sorted_cols,
            np.asarray(features, dtype=np.intp),
            self.min_samples_leaf,
            total_sum,
            float((y_node**2).sum()),
        )
        if split is None:
            return node
        feature, threshold = split
        go_left = X[rows, feature] <= threshold
        rows_left = rows[go_left]
        rows_right = rows[~go_left]
        scratch[rows_left] = True
        sel = scratch[sorted_cols]                  # (p, m)
        sorted_left = sorted_cols[sel].reshape(p, rows_left.shape[0])
        sorted_right = sorted_cols[~sel].reshape(p, rows_right.shape[0])
        scratch[rows_left] = False
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow_presorted(
            X, y, rows_left, sorted_left, depth + 1, rng, k_features, scratch
        )
        node.right = self._grow_presorted(
            X, y, rows_right, sorted_right, depth + 1, rng, k_features, scratch
        )
        return node

    def flat_tree(self) -> FlatTree:
        """The flattened array form of the fitted tree (built lazily)."""
        self._check_fitted("_root")
        assert self._root is not None
        if self._flat is None:
            self._flat = _flatten_tree(self._root)
        return self._flat

    def _check_predict_input(self, X) -> np.ndarray:
        X, _ = check_Xy(X)
        assert self.n_features_ is not None
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"feature count mismatch: fitted {self.n_features_}, "
                f"got {X.shape[1]}"
            )
        return X

    def predict(self, X) -> np.ndarray:
        """Vectorized batched prediction over the flattened tree."""
        self._check_fitted("_root")
        X = self._check_predict_input(X)
        return _flat_predict(self.flat_tree(), X)

    def predict_scalar(self, X) -> np.ndarray:
        """Reference row-by-row node walk; kept as baseline."""
        self._check_fitted("_root")
        X = self._check_predict_input(X)
        out = np.empty(X.shape[0], dtype=float)
        for i, row in enumerate(X):
            node = self._root
            assert node is not None
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (a root-only tree has depth 0)."""
        self._check_fitted("_root")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(_depth(node.left), _depth(node.right))

        assert self._root is not None
        return _depth(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted("_root")

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.left is not None and node.right is not None
            return _count(node.left) + _count(node.right)

        assert self._root is not None
        return _count(self._root)
