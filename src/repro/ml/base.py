"""Estimator protocol and shared validation/scoring helpers."""

from __future__ import annotations

import abc

import numpy as np

from repro.common.errors import ValidationError


class Estimator(abc.ABC):
    """Minimal fit/predict regression estimator interface."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator":
        """Fit on ``(n_samples, n_features)`` / ``(n_samples,)``; returns self."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``(n_samples, n_features)``."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on the given data."""
        return r2_score(np.asarray(y, dtype=float), self.predict(X))

    def _check_fitted(self, attr: str) -> None:
        if not hasattr(self, attr) or getattr(self, attr) is None:
            raise ValidationError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )


def check_Xy(X, y=None) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and coerce a design matrix (and optional target vector)."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValidationError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValidationError("X must contain at least one sample")
    if not np.all(np.isfinite(X)):
        raise ValidationError("X contains non-finite values")
    if y is None:
        return X, None
    y = np.asarray(y, dtype=float).ravel()
    if y.shape[0] != X.shape[0]:
        raise ValidationError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if not np.all(np.isfinite(y)):
        raise ValidationError("y contains non-finite values")
    return X, y


def r2_score(y_true, y_pred) -> float:
    """R² = 1 − SS_res/SS_tot; a constant target scores 0 unless matched exactly."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
