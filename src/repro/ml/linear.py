"""Ordinary least squares and ridge regression."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.ml.base import Estimator, check_Xy


class LinearRegression(Estimator):
    """OLS via :func:`numpy.linalg.lstsq` (rank-deficiency safe)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_Xy(X, y)
        assert y is not None
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        coef, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X, _ = check_Xy(X)
        assert self.coef_ is not None
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"feature count mismatch: fitted {self.coef_.shape[0]}, "
                f"got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class Ridge(Estimator):
    """L2-regularized least squares solved in closed form."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValidationError(f"alpha cannot be negative ({alpha!r})")
        self.alpha = float(alpha)
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        X, y = check_Xy(X, y)
        assert y is not None
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X, _ = check_Xy(X)
        assert self.coef_ is not None
        if X.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"feature count mismatch: fitted {self.coef_.shape[0]}, "
                f"got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_
