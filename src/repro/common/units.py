"""Unit conventions and conversions.

The whole stack uses SI base conventions internally:

- time: seconds (``float``)
- frequency: MHz for clock tables (matching the NVML/ROCm-SMI interfaces,
  which traffic in MHz) and Hz only inside the timing model
- power: watts
- energy: joules
"""

from __future__ import annotations

#: One MHz expressed in Hz.
MHZ: float = 1.0e6

#: One second (the base time unit).
SECOND: float = 1.0

#: One millisecond in seconds.
MILLISECOND: float = 1.0e-3

#: One watt (the base power unit).
WATT: float = 1.0

#: One joule (the base energy unit).
JOULE: float = 1.0


def mhz_to_hz(mhz: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return float(mhz) * MHZ


def hz_to_mhz(hz: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return float(hz) / MHZ


def joules(power_watts: float, duration_s: float) -> float:
    """Energy (J) of a constant draw ``power_watts`` over ``duration_s``."""
    return float(power_watts) * float(duration_s)
