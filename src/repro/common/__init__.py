"""Shared low-level utilities: errors, units, seeded RNG, virtual time.

Everything in the simulation stack is deterministic: randomness flows from
:func:`repro.common.rng.make_rng` seeds and time flows from a
:class:`repro.common.clock.VirtualClock`, never from the wall clock.
"""

from repro.common.clock import VirtualClock
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.units import (
    JOULE,
    MHZ,
    MILLISECOND,
    SECOND,
    WATT,
    hz_to_mhz,
    mhz_to_hz,
)

__all__ = [
    "VirtualClock",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ValidationError",
    "make_rng",
    "derive_seed",
    "mhz_to_hz",
    "hz_to_mhz",
    "MHZ",
    "SECOND",
    "MILLISECOND",
    "WATT",
    "JOULE",
]
