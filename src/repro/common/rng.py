"""Deterministic random number generation.

All stochastic behaviour (sensor noise, random-forest bootstraps, workload
generation) derives from explicit seeds so that every experiment in the
benchmark harness is exactly reproducible run-to-run.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default root seed used when callers do not supply one.
DEFAULT_SEED: int = 0x5_13_E4_97


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an explicit seed.

    ``None`` maps to :data:`DEFAULT_SEED` (not entropy from the OS) so that
    "unseeded" uses are still reproducible.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else int(seed))


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from a tuple of hashable parts.

    Uses SHA-256 over the ``repr`` of the parts, so the derivation is stable
    across processes and Python versions (unlike built-in ``hash``), letting
    e.g. the power sensor seed its noise from ``(device_name, kernel_name)``.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)
