"""Virtual simulation time.

The simulated SYCL runtime, GPUs, MPI network and SLURM scheduler all share a
:class:`VirtualClock`. Time only moves forward when a component *advances* it
(e.g. a kernel completing, a message being delivered); nothing in the stack
sleeps on the wall clock, which keeps multi-node experiments fast and
bit-reproducible.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing simulation clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time.

        Raises :class:`SimulationError` on negative deltas — a negative
        advance always indicates a bug in a caller's time accounting.
        """
        if delta < 0.0:
            raise SimulationError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Advancing to a time in the past raises :class:`SimulationError`;
        advancing to the current time is a no-op (idempotent joins are
        common when several events complete simultaneously).
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now!r}, target={timestamp!r}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
