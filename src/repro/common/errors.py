"""Exception hierarchy shared across the reproduction stack."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """Raised when a component is configured inconsistently.

    Examples: an unknown GPU model name, a frequency outside the device's
    supported table, a SLURM job requesting more GPUs than a node has.
    """


class ValidationError(ReproError):
    """Raised when user-provided data fails validation.

    Examples: a feature vector with negative instruction counts, an energy
    target percentage outside ``[0, 100]``.
    """


class SimulationError(ReproError):
    """Raised when the virtual-time simulation reaches an invalid state.

    Examples: waiting on an event that can never complete, observing the
    clock move backwards.
    """


class TransientError(ReproError):
    """A retryable failure: the operation may succeed if attempted again.

    Layers tag their retryable failure modes with this class (a transient
    NVML clock-set error, a dropped sensor sample) so that retry loops can
    distinguish them from fatal errors with one ``isinstance`` check,
    without knowing which vendor library raised.
    """


class FaultInjectionError(ReproError):
    """An infrastructure fault delivered by the fault-injection plane.

    Examples: a node failing mid-job, an MPI rank dying, a prologue that
    crashes. These are *persistent* faults — retrying the failed operation
    cannot succeed; recovery means rescheduling or degrading.
    """
