"""SYCL events with profiling information.

The SYnergy fine-grained profiler is built on SYCL event status/profiling
queries (§4.2); events here expose submit/start/end timestamps in virtual
time and the kernel execution record when one exists.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.device import KernelExecutionRecord, SimulatedGPU

_event_ids = itertools.count()


class EventStatus(enum.Enum):
    """SYCL ``info::event_command_status`` values."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETE = "complete"


class Event:
    """Completion handle for one submitted command group."""

    def __init__(
        self,
        device: "SimulatedGPU",
        submit_s: float,
        start_s: float,
        end_s: float,
        record: "KernelExecutionRecord | None" = None,
    ) -> None:
        if not submit_s <= start_s <= end_s:
            raise SimulationError(
                f"event timestamps out of order: submit={submit_s}, "
                f"start={start_s}, end={end_s}"
            )
        self.event_id = next(_event_ids)
        self.device = device
        self.submit_s = submit_s
        self.start_s = start_s
        self.end_s = end_s
        self.record = record

    @property
    def status(self) -> EventStatus:
        """Command status relative to the current virtual time."""
        now = self.device.clock.now
        if now < self.start_s:
            return EventStatus.SUBMITTED
        if now < self.end_s:
            return EventStatus.RUNNING
        return EventStatus.COMPLETE

    def wait(self) -> None:
        """Block (in virtual time) until the command completes."""
        if self.device.clock.now < self.end_s:
            self.device.clock.advance_to(self.end_s)

    def wait_and_throw(self) -> None:
        """SYCL spelling of :meth:`wait` (no async errors in the sim)."""
        self.wait()

    def profiling_submit(self) -> float:
        """``info::event_profiling::command_submit`` (seconds)."""
        return self.submit_s

    def profiling_start(self) -> float:
        """``info::event_profiling::command_start`` (seconds)."""
        return self.start_s

    def profiling_end(self) -> float:
        """``info::event_profiling::command_end`` (seconds)."""
        return self.end_s

    @property
    def duration_s(self) -> float:
        """Kernel execution time (seconds)."""
        return self.end_s - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.record.kernel_name if self.record else "<no kernel>"
        return f"Event(#{self.event_id}, {name}, [{self.start_s:.6f}, {self.end_s:.6f}])"
