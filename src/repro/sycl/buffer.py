"""SYCL buffers.

A :class:`Buffer` owns a NumPy array and tracks the last event that wrote it
so the runtime can order dependent command groups (RAW/WAR/WAW hazards) when
computing kernel start times in virtual time.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sycl.event import Event

_buffer_ids = itertools.count()


class Buffer:
    """Device-visible data container backed by a host NumPy array."""

    def __init__(
        self,
        data: np.ndarray | list | tuple | None = None,
        shape: tuple[int, ...] | int | None = None,
        dtype: np.dtype | type = np.float32,
        name: str | None = None,
    ) -> None:
        if data is None and shape is None:
            raise ValidationError("Buffer needs either data or a shape")
        if data is not None:
            self._data = np.array(data, copy=True)
        else:
            self._data = np.zeros(shape, dtype=dtype)
        self.name = name if name is not None else f"buf{next(_buffer_ids)}"
        #: Event that last wrote this buffer (for dependency ordering).
        self.last_writer: "Event | None" = None
        #: Events that read the buffer since the last write (WAR ordering).
        self.readers: list["Event"] = []

    @property
    def data(self) -> np.ndarray:
        """The underlying host array (a live view, not a copy)."""
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self._data.shape

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(self._data.size)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self._data.dtype

    def mark_write(self, event: "Event") -> None:
        """Record ``event`` as the buffer's latest writer."""
        self.last_writer = event
        self.readers = []

    def mark_read(self, event: "Event") -> None:
        """Record ``event`` as an outstanding reader."""
        self.readers.append(event)

    def dependencies(self, writing: bool) -> list["Event"]:
        """Events that must complete before an access of the given kind."""
        deps: list[Event] = []
        if self.last_writer is not None:
            deps.append(self.last_writer)
        if writing:
            deps.extend(self.readers)
        return deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.name!r}, shape={self.shape}, dtype={self.dtype})"
