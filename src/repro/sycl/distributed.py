"""Distributed buffer ranges for the command-graph scheduler.

A :class:`DistributedRange` block-partitions a 1-D index space over the
ranks of a communicator; a :class:`DistributedBuffer` is the *metadata*
of a buffer distributed over such a range — per-rank block extents and
element size, but no host array. At cluster scale (the Fig. 10 regime,
256–2048 ranks) the simulation reasons about dependency structure and
transfer volumes, never about payload values, so materializing gigabytes
of NumPy storage per run would be pure waste.

Command groups name their accesses with :class:`DistributedAccess`
(buffer, SYCL access mode, halo width in elements). The command graph
(:mod:`repro.distributed.graph`) derives inter-rank dependency edges and
halo-transfer commands from these declarations, exactly as the
runtime-visible accessor set drives single-device hazard ordering in
:mod:`repro.sycl.queue`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.sycl.accessor import AccessMode

_dbuffer_ids = itertools.count()


class DistributedRange:
    """A block partition of ``range(n)`` over ``n_ranks`` ranks.

    Elements are split as evenly as possible (the first ``n % n_ranks``
    ranks hold one extra element), matching the usual block distribution
    of stencil codes. Every rank owns a contiguous, possibly empty slice.
    """

    def __init__(self, n: int, n_ranks: int) -> None:
        if n <= 0:
            raise ValidationError(f"distributed range needs n > 0 ({n})")
        if n_ranks <= 0:
            raise ValidationError(f"distributed range needs ranks > 0 ({n_ranks})")
        self.n = int(n)
        self.n_ranks = int(n_ranks)
        base, extra = divmod(self.n, self.n_ranks)
        counts = np.full(self.n_ranks, base, dtype=np.int64)
        counts[:extra] += 1
        self.counts = counts
        self.bounds = np.concatenate(([0], np.cumsum(counts)))
        self.counts.setflags(write=False)
        self.bounds.setflags(write=False)

    def slice_of(self, rank: int) -> tuple[int, int]:
        """The ``[lo, hi)`` element range owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValidationError(
                f"rank {rank} out of range (n_ranks {self.n_ranks})"
            )
        return int(self.bounds[rank]), int(self.bounds[rank + 1])

    def count_of(self, rank: int) -> int:
        """Number of elements owned by ``rank``."""
        lo, hi = self.slice_of(rank)
        return hi - lo

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistributedRange(n={self.n}, n_ranks={self.n_ranks})"


class DistributedBuffer:
    """Metadata of a buffer block-distributed over a rank range.

    Holds no host array — only the partition and the element size, which
    is everything the graph scheduler needs to size halo and gather
    transfers. Hazard tracking (which command last wrote each block) is
    the command graph's job, not the buffer's, so one buffer can be used
    by several independently-built graphs.
    """

    def __init__(
        self,
        range_: DistributedRange,
        *,
        itemsize: int = 4,
        name: str | None = None,
    ) -> None:
        if itemsize <= 0:
            raise ValidationError(f"itemsize must be positive ({itemsize})")
        self.range = range_
        self.itemsize = int(itemsize)
        self.name = name if name is not None else f"dbuf{next(_dbuffer_ids)}"

    @property
    def n_ranks(self) -> int:
        """Ranks the buffer is distributed over."""
        return self.range.n_ranks

    def block_nbytes(self, rank: int) -> int:
        """Bytes of the block owned by ``rank``."""
        return self.range.count_of(rank) * self.itemsize

    # Access-declaration sugar: ``buf.read(halo=1)`` reads like the SYCL
    # accessor-mode tags (``read_only`` etc.) the single-device queue uses.

    def read(self, halo: int = 0) -> "DistributedAccess":
        """Declare a read access, optionally with a halo of neighbours."""
        return DistributedAccess(self, AccessMode.READ, halo=halo)

    def write(self) -> "DistributedAccess":
        """Declare a write (discard) access."""
        return DistributedAccess(self, AccessMode.WRITE)

    def read_write(self, halo: int = 0) -> "DistributedAccess":
        """Declare a read-modify-write access."""
        return DistributedAccess(self, AccessMode.READ_WRITE, halo=halo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedBuffer({self.name!r}, n={self.range.n}, "
            f"n_ranks={self.range.n_ranks}, itemsize={self.itemsize})"
        )


@dataclass(frozen=True)
class DistributedAccess:
    """One declared access of a command group to a distributed buffer.

    ``halo`` is the per-side ghost width in *elements*: a read with
    ``halo > 0`` needs that many boundary elements from each neighbouring
    rank's block, which the graph materializes as halo-transfer commands.
    Halos on write-only accesses are meaningless and rejected.
    """

    buffer: DistributedBuffer
    mode: AccessMode
    halo: int = 0

    def __post_init__(self) -> None:
        if self.halo < 0:
            raise ValidationError(f"halo must be >= 0 ({self.halo})")
        if self.halo and not self.mode.reads:
            raise ValidationError("halo only applies to reading accesses")

    @property
    def halo_nbytes(self) -> int:
        """Bytes pulled from each neighbour for this access."""
        return self.halo * self.buffer.itemsize
