"""SYCL accessors.

Accessors declare how a command group touches a buffer; the handler collects
them to build the dependency edges and to pass host array views into kernels
that carry a host implementation.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from repro.common.errors import ValidationError
from repro.sycl.buffer import Buffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sycl.handler import Handler


class AccessMode(enum.Enum):
    """SYCL 2020 access modes (subset)."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def writes(self) -> bool:
        """Whether this mode can modify the buffer."""
        return self is not AccessMode.READ

    @property
    def reads(self) -> bool:
        """Whether this mode observes the buffer's prior contents."""
        return self is not AccessMode.WRITE


#: SYCL 2020 accessor tag objects.
read_only = AccessMode.READ
write_only = AccessMode.WRITE
read_write = AccessMode.READ_WRITE


class Accessor:
    """Declared access of one command group to one buffer."""

    def __init__(
        self, buffer: Buffer, handler: "Handler", mode: AccessMode = read_write
    ) -> None:
        if not isinstance(mode, AccessMode):
            raise ValidationError(f"invalid access mode {mode!r}")
        self.buffer = buffer
        self.mode = mode
        handler.register_accessor(self)

    @property
    def view(self) -> np.ndarray:
        """Host array view honouring the access mode (read-only is enforced)."""
        arr = self.buffer.data
        if self.mode is AccessMode.READ:
            ro = arr.view()
            ro.flags.writeable = False
            return ro
        return arr

    def __getitem__(self, idx):
        """Element read (host-side convenience, e.g. in host kernels)."""
        return self.buffer.data[idx]

    def __setitem__(self, idx, value) -> None:
        """Element write; rejected for read-only accessors."""
        if self.mode is AccessMode.READ:
            raise ValidationError(
                f"cannot write through read-only accessor of {self.buffer.name!r}"
            )
        self.buffer.data[idx] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accessor({self.buffer.name!r}, {self.mode.value})"
