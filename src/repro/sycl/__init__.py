"""Mini-SYCL runtime.

A faithful-in-shape Python rendition of the SYCL 2020 constructs the SYnergy
API wraps (§4.1): ``queue``, ``buffer``, ``accessor``, ``handler`` with
``parallel_for``, ``event``, and device selectors. Kernels are
:class:`~repro.kernelir.kernel.KernelIR` objects — exactly the view the
paper's compiler pass has of a kernel — optionally carrying a host-side
NumPy implementation so examples compute real results.

Execution is eager in virtual time: submitting a command group times the
kernel on the simulated GPU, advances the shared
:class:`~repro.common.clock.VirtualClock`, and returns a completed-on-wait
:class:`~repro.sycl.event.Event`, mirroring SYCL's asynchronous semantics
without wall-clock threads.
"""

from repro.sycl.accessor import AccessMode, Accessor, read_only, read_write, write_only
from repro.sycl.buffer import Buffer
from repro.sycl.distributed import (
    DistributedAccess,
    DistributedBuffer,
    DistributedRange,
)
from repro.sycl.device import (
    SyclDevice,
    cpu_selector_v,
    default_selector_v,
    gpu_selector_v,
    select_device,
    set_default_device,
)
from repro.sycl.event import Event, EventStatus
from repro.sycl.handler import Handler
from repro.sycl.queue import Queue

__all__ = [
    "Queue",
    "Buffer",
    "DistributedRange",
    "DistributedBuffer",
    "DistributedAccess",
    "Accessor",
    "AccessMode",
    "read_only",
    "write_only",
    "read_write",
    "Handler",
    "Event",
    "EventStatus",
    "SyclDevice",
    "gpu_selector_v",
    "cpu_selector_v",
    "default_selector_v",
    "select_device",
    "set_default_device",
]
