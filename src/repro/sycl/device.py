"""SYCL devices and selectors.

``gpu_selector_v`` etc. mirror SYCL 2020 selector objects. Since there is no
real driver stack, the "platform" is a process-global default device that
tests and experiments install via :func:`set_default_device`; queues can
always be constructed against an explicit device instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.hw.device import SimulatedGPU


@dataclass(frozen=True)
class _Selector:
    """A SYCL device selector sentinel."""

    kind: str

    def __repr__(self) -> str:
        return f"{self.kind}_selector_v"


#: Selects a GPU device (the only device type the simulation provides).
gpu_selector_v = _Selector("gpu")
#: Present for API completeness; resolves like the default selector.
cpu_selector_v = _Selector("cpu")
#: Selects whatever device the platform considers default.
default_selector_v = _Selector("default")


class SyclDevice:
    """A SYCL device view over one simulated GPU."""

    def __init__(self, gpu: SimulatedGPU) -> None:
        self.gpu = gpu

    @property
    def name(self) -> str:
        """Device marketing name (``info::device::name``)."""
        return self.gpu.spec.name

    @property
    def vendor(self) -> str:
        """Device vendor tag (``info::device::vendor``)."""
        return self.gpu.spec.vendor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyclDevice({self.name!r}[{self.gpu.index}])"


_default_device: SyclDevice | None = None


def set_default_device(device: SyclDevice | SimulatedGPU | None) -> None:
    """Install the device that selectors resolve to (None clears it)."""
    global _default_device
    if device is None:
        _default_device = None
    elif isinstance(device, SyclDevice):
        _default_device = device
    else:
        _default_device = SyclDevice(device)


def select_device(
    selector: object | None = None,
) -> SyclDevice:
    """Resolve a selector (or an explicit device) to a :class:`SyclDevice`."""
    if isinstance(selector, SyclDevice):
        return selector
    if isinstance(selector, SimulatedGPU):
        return SyclDevice(selector)
    if selector is None or isinstance(selector, _Selector):
        if _default_device is None:
            raise ConfigurationError(
                "no default SYCL device installed; call "
                "sycl.set_default_device(...) or pass a device explicitly"
            )
        return _default_device
    raise ConfigurationError(f"cannot select a device from {selector!r}")
