"""SYCL queue.

Command groups submitted to a :class:`Queue` execute on the queue's device in
virtual time. Execution is eager (the simulated timeline is computed at
submit), but SYCL's asynchronous semantics are preserved: start times honour
buffer dependencies and device serialization, and callers still ``wait()`` on
events before reading results, exactly as in Listing 1 of the paper.

Subclasses (the SYnergy queue) hook :meth:`_pre_kernel` /
:meth:`_post_kernel` to apply per-kernel frequency changes and profiling.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ValidationError
from repro.sycl.accessor import AccessMode
from repro.sycl.device import SyclDevice, select_device
from repro.sycl.event import Event
from repro.sycl.handler import Handler
from repro.kernelir.kernel import KernelIR

#: A SYCL command-group function: receives the handler, returns nothing.
CommandGroupFn = Callable[[Handler], None]


class Queue:
    """An in-order-completion SYCL queue bound to one device."""

    def __init__(self, selector: object | None = None) -> None:
        self.device: SyclDevice = select_device(selector)
        self._events: list[Event] = []

    @property
    def gpu(self):
        """The simulated GPU behind this queue."""
        return self.device.gpu

    def submit(self, cgf: CommandGroupFn) -> Event:
        """Submit a command group; returns its completion event."""
        handler = Handler()
        cgf(handler)
        if handler.kernel is None:
            raise ValidationError("command group did not call parallel_for")
        return self._launch(handler)

    def parallel_for(self, size: int | tuple[int, ...], kernel: KernelIR) -> Event:
        """Shortcut submission without an explicit command group."""
        return self.submit(lambda h: h.parallel_for(size, kernel))

    def memcpy(self, dst: "Buffer", src) -> Event:
        """Copy host data into a buffer (SYCL ``queue::memcpy``).

        Models the host→device transfer over the PCIe-class link and
        performs the actual host-side copy. ``src`` may be an array-like
        of the buffer's shape or another :class:`Buffer`.
        """
        import numpy as np

        from repro.sycl.buffer import Buffer as _Buffer

        src_buf = src if isinstance(src, _Buffer) else None
        data = src_buf.data if src_buf is not None else np.asarray(src)
        if data.shape != dst.shape:
            raise ValidationError(
                f"memcpy shape mismatch: {data.shape} vs {dst.shape}"
            )
        return self._transfer(
            dst, lambda: np.copyto(dst.data, data), src=src_buf
        )

    def fill(self, dst: "Buffer", value) -> Event:
        """Fill a buffer with one value (SYCL ``queue::fill``)."""
        return self._transfer(dst, lambda: dst.data.fill(value))

    def update_host(self, buf: "Buffer") -> Event:
        """Make device results visible on the host (device→host transfer).

        Host arrays are always coherent in the simulation; only the
        transfer's time/energy is modeled.
        """
        return self._transfer(buf, lambda: None)

    def _transfer(self, buf: "Buffer", apply, src: "Buffer | None" = None) -> Event:
        gpu = self.device.gpu
        submit_time = gpu.clock.now
        ready = submit_time
        for dep in buf.dependencies(writing=True):
            ready = max(ready, dep.end_s)
        if src is not None:
            # A buffer-sourced copy reads ``src``: it must wait for the
            # source's pending writer (RAW) and be visible as a reader so a
            # later write to ``src`` orders behind the copy (WAR).
            for dep in src.dependencies(writing=False):
                ready = max(ready, dep.end_s)
        record = gpu.transfer(buf.data.nbytes, submit_time=ready)
        event = Event(
            device=gpu,
            submit_s=submit_time,
            start_s=record.start_s,
            end_s=record.end_s,
            record=record,
        )
        buf.mark_write(event)
        if src is not None:
            src.mark_read(event)
        apply()
        self._events.append(event)
        return event

    def wait(self) -> None:
        """Block (in virtual time) until every submitted command completes."""
        gpu = self.device.gpu
        if gpu.clock.now < gpu.busy_until:
            gpu.clock.advance_to(gpu.busy_until)

    def wait_and_throw(self) -> None:
        """SYCL spelling of :meth:`wait`."""
        self.wait()

    @property
    def events(self) -> tuple[Event, ...]:
        """All events produced by this queue, in submission order."""
        return tuple(self._events)

    def _absorb_events(self, events: "list[Event]") -> None:
        """Adopt externally materialized events (batched engine commit).

        The batched executor computes whole submission runs out-of-line
        and hands the finished events back here so ``events`` /
        ``kernel_stats`` keep their submission-order contract.
        """
        self._events.extend(events)

    # ------------------------------------------------------------ internals

    def _launch(self, handler: Handler) -> Event:
        gpu = self.device.gpu
        kernel = handler.kernel
        assert kernel is not None
        submit_time = gpu.clock.now

        # Earliest start: after every dependency event and the device queue.
        ready = submit_time
        for acc in handler.accessors:
            for dep in acc.buffer.dependencies(writing=acc.mode.writes):
                ready = max(ready, dep.end_s)

        self._pre_kernel(kernel)
        record = gpu.execute(kernel, submit_time=ready)
        event = Event(
            device=gpu,
            submit_s=submit_time,
            start_s=record.start_s,
            end_s=record.end_s,
            record=record,
        )
        for acc in handler.accessors:
            if acc.mode.writes:
                acc.buffer.mark_write(event)
            if acc.mode in (AccessMode.READ, AccessMode.READ_WRITE):
                acc.buffer.mark_read(event)

        if kernel.host_fn is not None:
            kernel.host_fn(handler.accessor_views())

        self._post_kernel(kernel, event)
        self._events.append(event)
        return event

    def _pre_kernel(self, kernel: KernelIR) -> None:
        """Hook invoked just before a kernel starts (frequency scaling)."""

    def _post_kernel(self, kernel: KernelIR, event: Event) -> None:
        """Hook invoked after a kernel's timeline is known (profiling)."""
