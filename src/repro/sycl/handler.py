"""SYCL command-group handler.

User code receives a :class:`Handler` inside ``queue.submit(lambda h: ...)``
and calls ``h.parallel_for(range, kernel)`` exactly once, as in SYCL. The
kernel argument is a :class:`~repro.kernelir.kernel.KernelIR`; when the IR
carries a host function, the handler exposes the registered accessors to it
at execution time.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.kernelir.kernel import KernelIR
from repro.sycl.accessor import Accessor


class Handler:
    """Collects the accessors and the single device kernel of a command group."""

    def __init__(self) -> None:
        self.accessors: list[Accessor] = []
        self.kernel: KernelIR | None = None

    def register_accessor(self, accessor: Accessor) -> None:
        """Called by :class:`~repro.sycl.accessor.Accessor` on construction."""
        self.accessors.append(accessor)

    def parallel_for(self, size: int | tuple[int, ...], kernel: KernelIR) -> None:
        """Enqueue the device kernel over a global range.

        ``size`` overrides the IR's launch geometry (a SYCL ``range``); pass
        the IR's own ``work_items`` to keep it. Only one ``parallel_for``
        per command group is allowed, as in SYCL.
        """
        if self.kernel is not None:
            raise ValidationError("command group already contains a parallel_for")
        if not isinstance(kernel, KernelIR):
            raise ValidationError(
                f"kernel must be a KernelIR, got {type(kernel).__name__}"
            )
        if isinstance(size, tuple):
            total = 1
            for dim in size:
                total *= int(dim)
        else:
            total = int(size)
        if total <= 0:
            raise ValidationError(f"parallel_for range must be positive ({size!r})")
        self.kernel = kernel if total == kernel.work_items else kernel.with_work_items(total)

    def single_task(self, kernel: KernelIR) -> None:
        """Enqueue a single-work-item task (SYCL ``single_task``)."""
        self.parallel_for(1, kernel)

    def accessor_views(self) -> dict[str, object]:
        """Host array views keyed by buffer name, for host-side kernels."""
        return {acc.buffer.name: acc.view for acc in self.accessors}
