"""The ``nvgpufreq`` SLURM plugin (paper §7.2).

The plugin intercepts each job's prologue and epilogue. In the prologue it
runs the paper's check chain and only if *every* check passes does it lower
the NVML API restriction on the job's boards:

1. node info retrievable from slurmctld,
2. the node is tagged with the ``nvgpufreq`` GRES,
3. the NVML shared object can be loaded (dlopen),
4. the job requested the ``nvgpufreq`` GRES,
5. the job runs exclusively on the node.

In the epilogue it unconditionally restores the node to a consistent
performance state: clocks back to driver defaults (the paper resets to the
maximum performance state) and privileges re-raised — preventing the §2.3
hazard of one job's low clocks leaking into the next job.

The epilogue is exception-safe: a board that refuses its reset (transient
driver hiccup, or a GPU that fell off the bus with the node) must not stop
the cleanup of the *other* boards, and must not stop the privilege
re-raise. Transient NVML errors are retried a bounded number of times;
persistent ones are recorded in ``cleanup_failures`` and skipped.
"""

from __future__ import annotations

import enum

from repro.common.errors import FaultInjectionError
from repro.obs.session import TraceSession, resolve_trace
from repro.slurm.cluster import NVGPUFREQ_GRES, Node
from repro.slurm.job import Job
from repro.vendor.nvml import (
    NVML_FEATURE_DISABLED,
    NVML_FEATURE_ENABLED,
    NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS,
    NVMLError,
)

#: Bounded retries for transient NVML errors during epilogue cleanup.
EPILOGUE_MAX_RETRIES = 3


class PluginDecision(enum.Enum):
    """Why the prologue did (or did not) grant clock privileges."""

    GRANTED = "granted"
    NODE_INFO_UNAVAILABLE = "node info unavailable"
    NODE_NOT_TAGGED = "node lacks nvgpufreq GRES"
    NVML_UNAVAILABLE = "NVML shared object not loadable"
    JOB_NOT_TAGGED = "job did not request nvgpufreq GRES"
    JOB_NOT_EXCLUSIVE = "job does not hold the node exclusively"


class NvGpuFreqPlugin:
    """Prologue/epilogue pair granting temporary GPU clock privileges."""

    def __init__(self, trace: TraceSession | None = None) -> None:
        self.trace = resolve_trace(trace)
        #: Per (job_id, node name) prologue decisions, for tests/auditing.
        self.decisions: dict[tuple[int, str], PluginDecision] = {}
        #: Epilogue cleanup steps that could not be completed:
        #: (job_id, node name, device index, what failed).
        self.cleanup_failures: list[tuple[int, str, int, str]] = []

    # -------------------------------------------------------------- prologue

    def prologue(self, job: Job, node: Node) -> PluginDecision:
        """Run the §7.2 check chain; lower privileges only if all pass."""
        injector = getattr(node, "fault_injector", None)
        if injector is not None and injector.fires(
            "slurm.prologue_fail",
            self._node_now(node),
            target=node.name,
            detail=f"prologue crashed on {node.name} (job {job.job_id})",
        ):
            # A crashing prologue fails the job outright in SLURM; the
            # scheduler's epilogue pass is the cleanup backstop.
            raise FaultInjectionError(
                f"nvgpufreq prologue failed on {node.name} (job {job.job_id})"
            )
        decision = self._evaluate(job, node)
        self.decisions[(job.job_id, node.name)] = decision
        if self.trace.enabled:
            self.trace.instant(
                self._node_now(node), "slurm", "plugin.decision",
                decision.value, job_id=job.job_id, node=node.name,
            )
            self.trace.count(
                "plugin.granted"
                if decision is PluginDecision.GRANTED
                else "plugin.denied"
            )
        if decision is PluginDecision.GRANTED:
            self._set_restriction(node, NVML_FEATURE_DISABLED)
        return decision

    def _evaluate(self, job: Job, node: Node) -> PluginDecision:
        if node is None:  # slurmctld lookup failed
            return PluginDecision.NODE_INFO_UNAVAILABLE
        if not node.has_gres(NVGPUFREQ_GRES):
            return PluginDecision.NODE_NOT_TAGGED
        injector = getattr(node, "fault_injector", None)
        if injector is not None and injector.fires(
            "slurm.dlopen_fail",
            self._node_now(node),
            target=node.name,
            detail=f"dlopen(libnvidia-ml.so) failed on {node.name}",
        ):
            # The real plugin degrades gracefully here: no privileges are
            # granted, but the job still runs at default clocks (§7.2).
            return PluginDecision.NVML_UNAVAILABLE
        if node.nvml is None or not node.nvml.available:
            return PluginDecision.NVML_UNAVAILABLE
        if not job.spec.requests_gres(NVGPUFREQ_GRES):
            return PluginDecision.JOB_NOT_TAGGED
        if not job.spec.exclusive:
            return PluginDecision.JOB_NOT_EXCLUSIVE
        return PluginDecision.GRANTED

    @staticmethod
    def _node_now(node: Node) -> float:
        return max(gpu.clock.now for gpu in node.gpus)

    # -------------------------------------------------------------- epilogue

    def epilogue(self, job: Job, node: Node) -> None:
        """Full cleanup: default clocks and re-raised privileges.

        Runs for every job on a plugin-capable node regardless of the
        prologue decision ("when the job terminates for any reason"), so a
        node can never be left in a degraded state. Every board is
        attempted independently: a transient NVML failure is retried, a
        persistent one (e.g. ``GPU_IS_LOST`` after a node failure) is
        recorded and skipped, and the restriction re-raise is attempted
        even when the clock reset failed — the §2.3 stale-clock hazard
        must not survive one flaky board.
        """
        if node.nvml is None or not node.nvml.available:
            return
        was_root = node.nvml.effective_root
        node.nvml.effective_root = True
        try:
            node.nvml.nvmlInit()
            for i in range(node.nvml.nvmlDeviceGetCount()):
                handle = node.nvml.nvmlDeviceGetHandleByIndex(i)
                self._cleanup_step(
                    job,
                    node,
                    i,
                    "reset application clocks",
                    lambda h=handle: node.nvml.nvmlDeviceResetApplicationsClocks(h),
                )
                self._cleanup_step(
                    job,
                    node,
                    i,
                    "re-raise API restriction",
                    lambda h=handle: node.nvml.nvmlDeviceSetAPIRestriction(
                        h,
                        NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS,
                        NVML_FEATURE_ENABLED,
                    ),
                )
        finally:
            node.nvml.effective_root = was_root

    def _cleanup_step(
        self, job: Job, node: Node, index: int, what: str, call
    ) -> None:
        """One epilogue action, retried on transient errors, never raising."""
        injector = getattr(node, "fault_injector", None)
        retries = 0
        while True:
            try:
                call()
            except NVMLError as exc:
                if exc.transient and retries < EPILOGUE_MAX_RETRIES:
                    retries += 1
                    continue
                self.cleanup_failures.append((job.job_id, node.name, index, what))
                self.trace.count("plugin.cleanup_failures")
                if injector is not None:
                    injector.log.record_recovery(
                        self._node_now(node),
                        "nvml.set_clocks",
                        index,
                        f"epilogue could not {what} on {node.name} GPU {index} "
                        f"({exc}); continuing cleanup",
                    )
                return
            if retries and injector is not None:
                injector.log.record_recovery(
                    self._node_now(node),
                    "nvml.set_clocks",
                    index,
                    f"epilogue {what} on {node.name} GPU {index} succeeded "
                    f"after {retries} retr{'y' if retries == 1 else 'ies'}",
                )
            return

    # -------------------------------------------------------------- internal

    def _set_restriction(self, node: Node, state: int) -> None:
        assert node.nvml is not None
        was_root = node.nvml.effective_root
        node.nvml.effective_root = True
        try:
            node.nvml.nvmlInit()
            for i in range(node.nvml.nvmlDeviceGetCount()):
                handle = node.nvml.nvmlDeviceGetHandleByIndex(i)
                node.nvml.nvmlDeviceSetAPIRestriction(
                    handle, NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS, state
                )
        finally:
            node.nvml.effective_root = was_root
