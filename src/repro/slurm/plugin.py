"""The ``nvgpufreq`` SLURM plugin (paper §7.2).

The plugin intercepts each job's prologue and epilogue. In the prologue it
runs the paper's check chain and only if *every* check passes does it lower
the NVML API restriction on the job's boards:

1. node info retrievable from slurmctld,
2. the node is tagged with the ``nvgpufreq`` GRES,
3. the NVML shared object can be loaded (dlopen),
4. the job requested the ``nvgpufreq`` GRES,
5. the job runs exclusively on the node.

In the epilogue it unconditionally restores the node to a consistent
performance state: clocks back to driver defaults (the paper resets to the
maximum performance state) and privileges re-raised — preventing the §2.3
hazard of one job's low clocks leaking into the next job.
"""

from __future__ import annotations

import enum

from repro.slurm.cluster import NVGPUFREQ_GRES, Node
from repro.slurm.job import Job
from repro.vendor.nvml import (
    NVML_FEATURE_DISABLED,
    NVML_FEATURE_ENABLED,
    NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS,
)


class PluginDecision(enum.Enum):
    """Why the prologue did (or did not) grant clock privileges."""

    GRANTED = "granted"
    NODE_INFO_UNAVAILABLE = "node info unavailable"
    NODE_NOT_TAGGED = "node lacks nvgpufreq GRES"
    NVML_UNAVAILABLE = "NVML shared object not loadable"
    JOB_NOT_TAGGED = "job did not request nvgpufreq GRES"
    JOB_NOT_EXCLUSIVE = "job does not hold the node exclusively"


class NvGpuFreqPlugin:
    """Prologue/epilogue pair granting temporary GPU clock privileges."""

    def __init__(self) -> None:
        #: Per (job_id, node name) prologue decisions, for tests/auditing.
        self.decisions: dict[tuple[int, str], PluginDecision] = {}

    # -------------------------------------------------------------- prologue

    def prologue(self, job: Job, node: Node) -> PluginDecision:
        """Run the §7.2 check chain; lower privileges only if all pass."""
        decision = self._evaluate(job, node)
        self.decisions[(job.job_id, node.name)] = decision
        if decision is PluginDecision.GRANTED:
            self._set_restriction(node, NVML_FEATURE_DISABLED)
        return decision

    def _evaluate(self, job: Job, node: Node) -> PluginDecision:
        if node is None:  # slurmctld lookup failed
            return PluginDecision.NODE_INFO_UNAVAILABLE
        if not node.has_gres(NVGPUFREQ_GRES):
            return PluginDecision.NODE_NOT_TAGGED
        if node.nvml is None or not node.nvml.available:
            return PluginDecision.NVML_UNAVAILABLE
        if not job.spec.requests_gres(NVGPUFREQ_GRES):
            return PluginDecision.JOB_NOT_TAGGED
        if not job.spec.exclusive:
            return PluginDecision.JOB_NOT_EXCLUSIVE
        return PluginDecision.GRANTED

    # -------------------------------------------------------------- epilogue

    def epilogue(self, job: Job, node: Node) -> None:
        """Full cleanup: default clocks and re-raised privileges.

        Runs for every job on a plugin-capable node regardless of the
        prologue decision ("when the job terminates for any reason"), so a
        node can never be left in a degraded state.
        """
        if node.nvml is None or not node.nvml.available:
            return
        was_root = node.nvml.effective_root
        node.nvml.effective_root = True
        try:
            node.nvml.nvmlInit()
            for i in range(node.nvml.nvmlDeviceGetCount()):
                handle = node.nvml.nvmlDeviceGetHandleByIndex(i)
                node.nvml.nvmlDeviceResetApplicationsClocks(handle)
                node.nvml.nvmlDeviceSetAPIRestriction(
                    handle,
                    NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS,
                    NVML_FEATURE_ENABLED,
                )
        finally:
            node.nvml.effective_root = was_root

    # -------------------------------------------------------------- internal

    def _set_restriction(self, node: Node, state: int) -> None:
        assert node.nvml is not None
        was_root = node.nvml.effective_root
        node.nvml.effective_root = True
        try:
            node.nvml.nvmlInit()
            for i in range(node.nvml.nvmlDeviceGetCount()):
                handle = node.nvml.nvmlDeviceGetHandleByIndex(i)
                node.nvml.nvmlDeviceSetAPIRestriction(
                    handle, NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS, state
                )
        finally:
            node.nvml.effective_root = was_root
