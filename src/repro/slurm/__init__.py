"""Simulated SLURM with the ``nvgpufreq`` energy plugin (paper §7).

- :mod:`~repro.slurm.cluster` — nodes, GRES tags, GPUs-per-node topology,
- :mod:`~repro.slurm.job` — job specs (GRES requests, exclusivity, node
  counts) and job lifecycle state,
- :mod:`~repro.slurm.scheduler` — a slurmctld-like FIFO scheduler with
  prologue/epilogue hook chains and per-job GPU energy accounting,
- :mod:`~repro.slurm.plugin` — the ``nvgpufreq`` plugin: the §7.2 decision
  procedure that temporarily lowers NVML clock privileges for exclusive,
  GRES-tagged jobs and restores a consistent performance state afterwards.
"""

from repro.slurm.cluster import Cluster, Node
from repro.slurm.job import Job, JobSpec, JobState
from repro.slurm.plugin import NvGpuFreqPlugin, PluginDecision
from repro.slurm.powercap import PowerCapPlugin, redistribute_caps
from repro.slurm.scheduler import Scheduler, SchedulerPlugin

__all__ = [
    "Cluster",
    "Node",
    "Job",
    "JobSpec",
    "JobState",
    "Scheduler",
    "SchedulerPlugin",
    "NvGpuFreqPlugin",
    "PluginDecision",
    "PowerCapPlugin",
    "redistribute_caps",
]
