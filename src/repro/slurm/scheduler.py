"""slurmctld-like scheduler.

FIFO allocation over idle nodes with a plugin hook chain around each job:
``prologue(job, node)`` on every allocated node before the payload runs,
``epilogue(job, node)`` after it finishes (success or failure). Per-job GPU
energy accounting integrates each allocated board's true energy over the
job's window — SLURM's energy accounting (§2.3) at job granularity.

Jobs run to completion at submit time (the virtual clock advances through
the payload), so ``submit`` doubles as ``sbatch --wait``.
"""

from __future__ import annotations

import itertools
from typing import Protocol

from repro.common.errors import ConfigurationError
from repro.slurm.cluster import Cluster, Node
from repro.slurm.job import Job, JobContext, JobSpec, JobState


class SchedulerPlugin(Protocol):
    """Prologue/epilogue plugin interface (the SLURM extension hooks)."""

    def prologue(self, job: Job, node: Node) -> object:  # pragma: no cover
        """Runs on each allocated node before the job payload."""
        ...

    def epilogue(self, job: Job, node: Node) -> None:  # pragma: no cover
        """Runs on each allocated node after the job payload."""
        ...


class Scheduler:
    """FIFO scheduler with plugin hooks and energy accounting."""

    def __init__(self, cluster: Cluster, plugins: list[SchedulerPlugin] | None = None):
        self.cluster = cluster
        self.plugins = list(plugins or [])
        self._job_ids = itertools.count(1)
        self.jobs: dict[int, Job] = {}

    def add_plugin(self, plugin: SchedulerPlugin) -> None:
        """Register a prologue/epilogue plugin."""
        self.plugins.append(plugin)

    # ------------------------------------------------------------- lifecycle

    def submit(self, spec: JobSpec) -> Job:
        """Allocate, run hooks, execute the payload, account, clean up."""
        job = Job(
            job_id=next(self._job_ids),
            spec=spec,
            submit_time_s=self.cluster.clock.now,
        )
        self.jobs[job.job_id] = job

        nodes = self._allocate(spec)
        job.nodes = nodes
        for node in nodes:
            node.running_job = job.job_id
            node.exclusive = spec.exclusive

        job.state = JobState.RUNNING
        # Synchronize: the job starts when the wall clock and every
        # allocated board agree on the time.
        start = max(
            [self.cluster.clock.now]
            + [gpu.clock.now for node in nodes for gpu in node.gpus]
        )
        self.cluster.clock.advance_to(start)
        for node in nodes:
            for gpu in node.gpus:
                gpu.clock.advance_to(start)
        job.start_time_s = start
        for plugin in self.plugins:
            for node in nodes:
                plugin.prologue(job, node)

        try:
            if spec.payload is not None:
                context = JobContext(
                    job_id=job.job_id, nodes=nodes, clock=self.cluster.clock
                )
                job.result = spec.payload(context)
            job.state = JobState.COMPLETED
        except Exception as exc:  # payload failures must not wedge the node
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            # The job ends when its slowest board drains; re-synchronize
            # every allocated board and the wall clock to that instant.
            end = max(
                [self.cluster.clock.now]
                + [gpu.clock.now for node in nodes for gpu in node.gpus]
            )
            self.cluster.clock.advance_to(end)
            for node in nodes:
                for gpu in node.gpus:
                    gpu.clock.advance_to(end)
            job.end_time_s = end
            job.gpu_energy_j = self._account_energy(job)
            for plugin in self.plugins:
                for node in nodes:
                    plugin.epilogue(job, node)
            for node in nodes:
                node.running_job = None
                node.exclusive = False
        return job

    # ------------------------------------------------------------ allocation

    def _allocate(self, spec: JobSpec) -> list[Node]:
        idle = self.cluster.idle_nodes()
        if len(idle) < spec.n_nodes:
            raise ConfigurationError(
                f"job {spec.name!r} needs {spec.n_nodes} nodes; only "
                f"{len(idle)} idle"
            )
        return idle[: spec.n_nodes]

    # ------------------------------------------------------------ accounting

    def _account_energy(self, job: Job) -> float:
        """True GPU energy (J) over the job's execution window."""
        assert job.start_time_s is not None and job.end_time_s is not None
        total = 0.0
        for node in job.nodes:
            for gpu in node.gpus:
                total += gpu.energy_between(job.start_time_s, job.end_time_s)
        return total

    def job_report(self, job_id: int) -> dict[str, object]:
        """``sacct``-style summary for one job."""
        if job_id not in self.jobs:
            raise ConfigurationError(f"unknown job id {job_id}")
        job = self.jobs[job_id]
        return {
            "job_id": job.job_id,
            "name": job.spec.name,
            "state": job.state.value,
            "nodes": [n.name for n in job.nodes],
            "elapsed_s": job.elapsed_s,
            "gpu_energy_j": job.gpu_energy_j,
            "error": job.error,
        }
