"""slurmctld-like scheduler.

FIFO allocation over idle nodes with a plugin hook chain around each job:
``prologue(job, node)`` on every allocated node before the payload runs,
``epilogue(job, node)`` after it finishes (success or failure). Per-job GPU
energy accounting integrates each allocated board's true energy over the
job's window — SLURM's energy accounting (§2.3) at job granularity.

Jobs run to completion at submit time (the virtual clock advances through
the payload), so ``submit`` doubles as ``sbatch --wait``.

Resilience: when a payload dies with :class:`~repro.faults.NodeFailure`
the scheduler behaves like slurmctld on a lost node — the job moves to
``NODE_FAIL``, the dead nodes are drained (marked down, their boards
marked lost so NVML reports ``GPU_IS_LOST``), and the job is requeued on
the surviving nodes, up to ``max_requeues`` times. Requeue lineage is
recorded on the job objects (``requeued_as`` / ``requeue_of``).
"""

from __future__ import annotations

import itertools
from typing import Protocol

from repro.common.errors import ConfigurationError, ValidationError
from repro.faults import NodeFailure
from repro.obs.session import TraceSession, resolve_trace
from repro.slurm.cluster import Cluster, Node
from repro.slurm.job import Job, JobContext, JobSpec, JobState


class SchedulerPlugin(Protocol):
    """Prologue/epilogue plugin interface (the SLURM extension hooks)."""

    def prologue(self, job: Job, node: Node) -> object:  # pragma: no cover
        """Runs on each allocated node before the job payload."""
        ...

    def epilogue(self, job: Job, node: Node) -> None:  # pragma: no cover
        """Runs on each allocated node after the job payload."""
        ...


class Scheduler:
    """FIFO scheduler with plugin hooks and energy accounting."""

    def __init__(
        self,
        cluster: Cluster,
        plugins: list[SchedulerPlugin] | None = None,
        max_requeues: int = 1,
        trace: TraceSession | None = None,
    ):
        if max_requeues < 0:
            raise ConfigurationError(
                f"max_requeues cannot be negative ({max_requeues!r})"
            )
        self.cluster = cluster
        # Default to the cluster's session so one Cluster.build(trace=...)
        # call wires the whole SLURM layer.
        self.trace = cluster.trace if trace is None else resolve_trace(trace)
        self.plugins = list(plugins or [])
        self.max_requeues = int(max_requeues)
        self._job_ids = itertools.count(1)
        self.jobs: dict[int, Job] = {}

    def add_plugin(self, plugin: SchedulerPlugin) -> None:
        """Register a prologue/epilogue plugin."""
        self.plugins.append(plugin)

    # ------------------------------------------------------------- lifecycle

    def submit(self, spec: JobSpec, *, accounting: str = "scalar") -> Job:
        """Run a job to completion, requeuing after node failures.

        Returns the *last* job of the requeue chain (the one that actually
        completed, failed, or exhausted the requeue budget); earlier
        attempts stay queryable through ``jobs`` / ``requeued_as`` links.
        ``accounting`` picks the per-job GPU-energy reduction: ``"scalar"``
        (per-segment Python integration, the reference) or ``"batched"``
        (one vectorized timeline reduction per board).
        """
        if accounting not in ("scalar", "batched"):
            raise ConfigurationError(
                f"accounting must be 'scalar' or 'batched' ({accounting!r})"
            )
        job = self._run_one(spec, accounting=accounting)
        requeues = 0
        while job.state is JobState.NODE_FAIL and requeues < self.max_requeues:
            if len(self.cluster.idle_nodes()) < spec.n_nodes:
                job.error = (job.error or "") + (
                    "; requeue impossible: "
                    f"{len(self.cluster.idle_nodes())} healthy nodes idle, "
                    f"{spec.n_nodes} needed"
                )
                break
            requeues += 1
            self.trace.instant(
                self.cluster.clock.now, "slurm", "slurm.requeue", spec.name,
                prev_job_id=job.job_id,
            )
            job = self._run_one(spec, requeue_of=job, accounting=accounting)
        return job

    def submit_many(self, specs, *, accounting: str = "batched") -> list[Job]:
        """Run a batch of jobs to completion, in submission order.

        Accepts a sequence of :class:`JobSpec` or a
        :class:`~repro.engine.batch.JobBatch`. Each job goes through the
        same :meth:`submit` core — allocation, requeue lineage, hooks —
        but energy accounting defaults to the batched per-board reduction.
        ``submit_many([])`` is a well-formed no-op: it emits an empty
        ``slurm.submit_many`` span and returns no jobs.
        """
        from repro.engine.batch import JobBatch

        # Validate up front: an unknown mode must fail even for an empty
        # batch, instead of silently returning [] (or surfacing later as
        # a per-job ConfigurationError from ``submit``).
        if accounting not in ("scalar", "batched"):
            raise ValidationError(
                f"accounting must be 'scalar' or 'batched' ({accounting!r})"
            )

        if isinstance(specs, JobBatch):
            specs = list(specs.specs)
        else:
            specs = list(JobBatch.from_specs(specs).specs)
        tr = self.trace
        if not specs:
            if tr.enabled:
                now = self.cluster.clock.now
                tr.add_span(
                    "slurm", "slurm.submit_many", "submit_many[0]",
                    now, now, jobs=0, completed=0,
                )
            return []
        if not tr.enabled:
            return [self.submit(spec, accounting=accounting) for spec in specs]
        with tr.span(
            self.cluster.clock, "slurm", "slurm.submit_many",
            f"submit_many[{len(specs)}]", jobs=len(specs),
        ) as sp:
            jobs = [self.submit(spec, accounting=accounting) for spec in specs]
            sp.set(
                completed=sum(j.state is JobState.COMPLETED for j in jobs)
            )
        return jobs

    def _run_one(
        self,
        spec: JobSpec,
        requeue_of: Job | None = None,
        accounting: str = "scalar",
    ) -> Job:
        """Allocate, run hooks, execute the payload, account, clean up."""
        tr = self.trace
        if not tr.enabled:
            return self._run_one_inner(spec, requeue_of, accounting)
        with tr.span(
            self.cluster.clock, "slurm", "slurm.job", spec.name,
            requeue=requeue_of is not None,
        ) as sp:
            job = self._run_one_inner(spec, requeue_of, accounting)
            sp.set(
                job_id=job.job_id,
                state=job.state.value,
                gpu_energy_j=job.gpu_energy_j,
            )
            return job

    def _run_one_inner(
        self,
        spec: JobSpec,
        requeue_of: Job | None = None,
        accounting: str = "scalar",
    ) -> Job:
        job = self._allocate(spec, requeue_of)
        try:
            # The prologue is inside the try so a prologue fault (a real
            # SLURM failure mode) still runs the epilogue cleanup below —
            # the §7.2 guarantee that no node leaks a degraded state.
            for plugin in self.plugins:
                for node in job.nodes:
                    with self.trace.span(
                        self.cluster.clock, "slurm", "slurm.prologue",
                        node.name, job_id=job.job_id,
                    ):
                        plugin.prologue(job, node)
            if spec.payload is not None:
                context = JobContext(
                    job_id=job.job_id,
                    nodes=job.nodes,
                    clock=self.cluster.clock,
                    trace=self.trace,
                    validator=self.cluster.validator,
                )
                job.result = spec.payload(context)
            job.state = JobState.COMPLETED
        except NodeFailure as exc:  # a node died under the job: drain, requeue
            job.state = JobState.NODE_FAIL
            job.error = f"NodeFailure: {exc}"
            self._drain(exc.nodes, job)
        except Exception as exc:  # payload failures must not wedge the node
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._complete(job, accounting)
        return job

    # ------------------------------------------------------------ allocation

    def _allocate(self, spec: JobSpec, requeue_of: Job | None = None) -> Job:
        """Create and start a job: nodes claimed, clocks synchronized.

        The beginning half of the job lifecycle, shared by :meth:`submit`
        and :meth:`submit_many`; :meth:`_complete` is the matching end.
        Raises :class:`ConfigurationError` (job left PENDING, no nodes
        claimed) when not enough nodes are idle.
        """
        job = Job(
            job_id=next(self._job_ids),
            spec=spec,
            submit_time_s=self.cluster.clock.now,
        )
        self.jobs[job.job_id] = job
        if requeue_of is not None:
            job.requeue_of = requeue_of.job_id
            requeue_of.requeued_as = job.job_id

        idle = self.cluster.idle_nodes()
        if len(idle) < spec.n_nodes:
            raise ConfigurationError(
                f"job {spec.name!r} needs {spec.n_nodes} nodes; only "
                f"{len(idle)} idle"
            )
        nodes = idle[: spec.n_nodes]
        job.nodes = nodes
        for node in nodes:
            node.running_job = job.job_id
            node.exclusive = spec.exclusive

        job.state = JobState.RUNNING
        # Synchronize: the job starts when the wall clock and every
        # allocated board agree on the time.
        start = max(
            [self.cluster.clock.now]
            + [gpu.clock.now for node in nodes for gpu in node.gpus]
        )
        self.cluster.clock.advance_to(start)
        for node in nodes:
            for gpu in node.gpus:
                gpu.clock.advance_to(start)
        job.start_time_s = start
        return job

    def _complete(self, job: Job, accounting: str = "scalar") -> None:
        """Finish a started job: end sync, accounting, epilogues, release.

        Runs in the ``finally`` of the job lifecycle, so cleanup happens
        whether the payload completed, failed, or took its nodes down.
        """
        nodes = job.nodes
        # The job ends when its slowest board drains; re-synchronize
        # every allocated board and the wall clock to that instant.
        end = max(
            [self.cluster.clock.now]
            + [gpu.clock.now for node in nodes for gpu in node.gpus]
        )
        self.cluster.clock.advance_to(end)
        for node in nodes:
            for gpu in node.gpus:
                gpu.clock.advance_to(end)
        job.end_time_s = end
        if accounting == "batched":
            job.gpu_energy_j = self._account_energy_batched(job)
        else:
            job.gpu_energy_j = self._account_energy(job)
        for plugin in self.plugins:
            for node in nodes:
                with self.trace.span(
                    self.cluster.clock, "slurm", "slurm.epilogue",
                    node.name, job_id=job.job_id,
                ):
                    plugin.epilogue(job, node)
        for node in nodes:
            node.running_job = None
            node.exclusive = False

    def _drain(self, node_names: tuple[str, ...], job: Job) -> None:
        """Take failed nodes out of service and mark their boards lost."""
        injector = self.cluster.fault_injector
        for name in node_names:
            node = self.cluster.get_node(name)
            node.down = True
            self.trace.instant(
                self.cluster.clock.now, "slurm", "slurm.drain", name,
                job_id=job.job_id,
            )
            if injector is not None:
                for gpu in node.gpus:
                    injector.mark_device_lost(gpu.index)
                injector.log.record_recovery(
                    self.cluster.clock.now,
                    "slurm.node_fail",
                    name,
                    f"node drained after failing under job {job.job_id}; "
                    "job marked NODE_FAIL for requeue",
                )

    # ------------------------------------------------------------ accounting

    def _account_energy(self, job: Job) -> float:
        """True GPU energy (J) over the job's execution window."""
        assert job.start_time_s is not None and job.end_time_s is not None
        total = 0.0
        for node in job.nodes:
            for gpu in node.gpus:
                total += gpu.energy_between(job.start_time_s, job.end_time_s)
        return total

    def _account_energy_batched(self, job: Job) -> float:
        """Job GPU energy as one vectorized timeline reduction per board.

        Same window and node-major summation order as
        :meth:`_account_energy`; per-board values agree with the scalar
        integration within a few ulp per timeline interval.
        """
        import numpy as np

        from repro.engine.payload import board_energies

        assert job.start_time_s is not None and job.end_time_s is not None
        gpus = [gpu for node in job.nodes for gpu in node.gpus]
        if not gpus:
            return 0.0
        return float(
            np.sum(board_energies(gpus, job.start_time_s, job.end_time_s))
        )

    def job_report(self, job_id: int) -> dict[str, object]:
        """``sacct``-style summary for one job."""
        if job_id not in self.jobs:
            raise ConfigurationError(f"unknown job id {job_id}")
        job = self.jobs[job_id]
        return {
            "job_id": job.job_id,
            "name": job.spec.name,
            "state": job.state.value,
            "nodes": [n.name for n in job.nodes],
            "elapsed_s": job.elapsed_s,
            "gpu_energy_j": job.gpu_energy_j,
            "error": job.error,
            "requeued_as": job.requeued_as,
            "requeue_of": job.requeue_of,
        }
