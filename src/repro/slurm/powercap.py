"""Cluster power capping (paper §2.3).

SLURM's integrated power management "takes the configured power cap for
the system and distributes it across the nodes ..., lowers the power caps
on nodes that are consuming less than their cap and redistributes that
power to other nodes, with configurable power thresholds". This module
provides that coarse-grained mechanism as a scheduler plugin, the paper's
counterpoint to SYnergy's fine-grained per-kernel tuning:

- :class:`PowerCapPlugin` — prologue applies per-GPU power limits derived
  from the job's node budget (through NVML, as root); epilogue restores
  the factory limits,
- :func:`redistribute_caps` — SLURM's reallocation rule as a pure
  function: under-consuming nodes shed budget (down to a floor), which is
  handed to capped-out nodes (up to a ceiling).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.slurm.cluster import Node
from repro.slurm.job import Job


def _water_fill(
    values: np.ndarray,
    indices: np.ndarray,
    limits: np.ndarray,
    pool: float,
    tol: float,
) -> float:
    """Split ``pool`` evenly over ``values[indices]`` up to per-index limits.

    Recipients that hit their limit drop out and their undistributed share
    is re-split over the rest (the §2.3 "redistributes that power" rule,
    made exact). Returns whatever could not be placed. Each pass either
    saturates a recipient or drains the pool, so it terminates in at most
    ``indices.size`` passes.
    """
    idx = indices
    while pool > tol and idx.size:
        share = pool / idx.size
        headroom = limits[idx] - values[idx]
        grant = np.minimum(share, np.maximum(headroom, 0.0))
        values[idx] += grant
        pool -= float(np.sum(grant))
        unsaturated = headroom - grant > tol
        if np.all(unsaturated):
            break  # everyone took a full share: the pool is drained
        idx = idx[unsaturated]
    return max(pool, 0.0)


def redistribute_caps(
    caps_w: list[float],
    usage_w: list[float],
    floor_w: float,
    ceiling_w: float,
    threshold: float = 0.05,
) -> list[float]:
    """One SLURM power-management rebalancing step.

    Nodes using less than ``(1 - threshold)`` of their cap donate the
    headroom above usage (never dropping below ``floor_w``); the pooled
    donation is split evenly among nodes at ``>= (1 - threshold)`` of
    their cap, each clipped to ``ceiling_w``. Total budget is conserved
    exactly: when no node is hungry the step is the identity (nobody can
    receive, so nobody sheds), and any donation the ceiling clips away is
    returned to the donors — never above the cap they entered with, so
    every cap stays in ``[floor_w, ceiling_w]``.
    """
    if len(caps_w) != len(usage_w):
        raise ValidationError(
            f"caps/usage length mismatch: {len(caps_w)} vs {len(usage_w)}"
        )
    if not 0.0 <= threshold < 1.0:
        raise ValidationError(f"threshold must be in [0, 1) ({threshold!r})")
    if floor_w <= 0 or ceiling_w < floor_w:
        raise ValidationError(
            f"need 0 < floor <= ceiling ({floor_w!r}, {ceiling_w!r})"
        )
    caps = np.asarray(caps_w, dtype=float)
    usage = np.asarray(usage_w, dtype=float)
    if np.any(caps < floor_w - 1e-9) or np.any(caps > ceiling_w + 1e-9):
        raise ValidationError("existing caps outside [floor, ceiling]")

    under = usage < (1.0 - threshold) * caps
    hungry = ~under
    if not np.any(hungry) or not np.any(under):
        # Nobody to receive (or nobody to donate): shedding budget here
        # would silently shrink the system total.
        return [float(c) for c in caps]
    new_caps = caps.copy()
    # Donors keep a small margin above their current usage.
    donor_target = np.maximum(usage * (1.0 + threshold), floor_w)
    donors = np.flatnonzero(under)
    donation = float(np.sum(caps[donors] - donor_target[donors]))
    new_caps[donors] = donor_target[donors]
    tol = max(1e-9, 1e-12 * float(np.sum(caps)))
    leftover = _water_fill(
        new_caps,
        np.flatnonzero(hungry),
        np.full(caps.size, ceiling_w),
        donation,
        tol,
    )
    if leftover > tol:
        # Every hungry node is pinned at the ceiling: re-spill the clipped
        # remainder back to the donors (their original caps bound the
        # refund, so the fill always places all of it).
        _water_fill(new_caps, donors, caps, leftover, tol)
    return [float(c) for c in new_caps]


class PowerCapPlugin:
    """Per-job GPU power capping through the NVML power-limit API.

    ``node_budget_w`` is the GPU power budget per allocated node; the
    prologue splits it evenly across the node's boards and applies it as
    each board's power limit (root path). The epilogue restores factory
    limits, so caps can never leak into the next job — same hygiene as the
    nvgpufreq plugin.
    """

    def __init__(self, node_budget_w: float) -> None:
        if node_budget_w <= 0:
            raise ValidationError(f"node budget must be positive ({node_budget_w!r})")
        self.node_budget_w = float(node_budget_w)
        #: (job_id, node name) -> applied per-GPU limit (W), for auditing.
        self.applied: dict[tuple[int, str], float] = {}

    def prologue(self, job: Job, node: Node) -> None:
        """Split the node budget across boards and apply the limits.

        The audit trail records the limit actually *set* on the boards
        (after clamping into each board's valid range), not the raw
        per-GPU budget — the two diverge exactly when clamping engages,
        and an audit that reports the unclamped budget lies about what
        the hardware enforced. On a node with mixed boards the most
        restrictive applied limit is recorded.
        """
        if node.gpu_count == 0:
            raise ValidationError(
                f"node {node.name!r} has no GPUs to split the "
                f"{self.node_budget_w} W budget across"
            )
        per_gpu = self.node_budget_w / node.gpu_count
        applied: list[float] = []
        for gpu in node.gpus:
            # Clamp into the board's valid limit range.
            limit = min(max(per_gpu, gpu.spec.idle_power_w), gpu.default_power_limit_w)
            gpu.set_power_limit(limit, privileged=True)
            applied.append(limit)
        self.applied[(job.job_id, node.name)] = min(applied)

    def epilogue(self, job: Job, node: Node) -> None:
        """Restore factory power limits on every board."""
        for gpu in node.gpus:
            gpu.reset_power_limit(privileged=True)
