"""Job specifications and lifecycle.

A job's payload is a Python callable receiving a :class:`JobContext` —
the simulation analogue of the batch script. The context exposes the
allocated nodes/GPUs and the virtual clock; MPI applications build their
communicator from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.slurm.cluster import Node


class JobState(enum.Enum):
    """SLURM-like job states (subset)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    #: A node allocated to the job died mid-run (requeue candidate).
    NODE_FAIL = "NODE_FAIL"


@dataclass(frozen=True)
class JobSpec:
    """Submission-time job description (the ``sbatch`` flags that matter).

    Attributes
    ----------
    name:
        Job name.
    n_nodes:
        Number of nodes requested.
    exclusive:
        ``--exclusive``: the job must own its nodes entirely. Required by
        the nvgpufreq plugin before it will lower clock privileges.
    gres:
        Requested GRES tags (e.g. ``{"nvgpufreq"}``).
    payload:
        The batch script body; receives a :class:`JobContext`.
    """

    name: str
    n_nodes: int
    exclusive: bool = False
    gres: frozenset[str] = frozenset()
    payload: Callable[["JobContext"], object] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("job name cannot be empty")
        if self.n_nodes < 1:
            raise ValidationError(f"job needs >= 1 node ({self.n_nodes!r})")

    def requests_gres(self, tag: str) -> bool:
        """Whether the job asked for a GRES tag."""
        return tag in self.gres


@dataclass
class JobContext:
    """What a running payload can see: its allocation and the clock."""

    job_id: int
    nodes: list["Node"]
    clock: object  # VirtualClock; typed loosely to avoid an import cycle
    #: Observability session of the scheduler that launched the job (a
    #: TraceSession, possibly the shared no-op); typed loosely like clock.
    trace: object = None
    #: Inline invariant hook of the cluster that runs the job (an
    #: InlineValidator, possibly the shared no-op); typed loosely too.
    validator: object = None

    @property
    def gpus(self):
        """All allocated GPUs, node-major order."""
        return [gpu for node in self.nodes for gpu in node.gpus]


@dataclass
class Job:
    """A submitted job and its evolving state."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    nodes: list["Node"] = field(default_factory=list)
    submit_time_s: float = 0.0
    start_time_s: float | None = None
    end_time_s: float | None = None
    #: GPU energy (J) attributed to this job by the scheduler's accounting.
    gpu_energy_j: float | None = None
    #: Payload return value (e.g. an application report).
    result: object = None
    #: Failure detail when state is FAILED or NODE_FAIL.
    error: str | None = None
    #: Job id of the replacement job when this one was requeued.
    requeued_as: int | None = None
    #: Job id of the original submission when this job is a requeue.
    requeue_of: int | None = None

    @property
    def elapsed_s(self) -> float:
        """Wall time from start to end (0 before completion)."""
        if self.start_time_s is None or self.end_time_s is None:
            return 0.0
        return self.end_time_s - self.start_time_s
