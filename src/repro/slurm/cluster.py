"""Cluster and node model.

A Marconi-100-like cluster: nodes with several GPUs each, GRES tags
(``nvgpufreq`` marks nodes whose boards allow the plugin's privilege
dance), and a shared virtual clock. Cluster provisioning restores the
production posture: every GPU starts API-restricted at default clocks.
"""

from __future__ import annotations

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.hw.device import SimulatedGPU
from repro.hw.specs import GPUSpec
from repro.obs.session import TraceSession, resolve_trace
from repro.validate.inline import InlineValidator, resolve_validator
from repro.vendor.nvml import NVMLLibrary

#: The GRES tag gating the paper's frequency-scaling capability.
NVGPUFREQ_GRES = "nvgpufreq"


class Node:
    """One compute node: GPUs, GRES tags, and its local NVML instance."""

    def __init__(
        self,
        name: str,
        gpus: list[SimulatedGPU],
        gres: set[str] | None = None,
        nvml_available: bool = True,
    ) -> None:
        if not gpus:
            raise ConfigurationError(f"node {name!r} needs at least one GPU")
        self.name = name
        self.gpus = list(gpus)
        self.gres: set[str] = set(gres or ())
        if all(g.spec.vendor == "nvidia" for g in gpus):
            self.nvml = NVMLLibrary(self.gpus, available=nvml_available)
        else:
            self.nvml = None
        #: Job id currently running here, None when idle.
        self.running_job: int | None = None
        #: Whether the running job holds the node exclusively.
        self.exclusive: bool = False
        #: Drained after a node failure; never allocated again.
        self.down: bool = False
        #: Shared fault-injection plane (attached by the cluster).
        self.fault_injector: FaultInjector | None = None

    @property
    def gpu_count(self) -> int:
        """Number of boards on the node."""
        return len(self.gpus)

    def has_gres(self, tag: str) -> bool:
        """Whether the node carries a GRES tag."""
        return tag in self.gres

    @property
    def idle(self) -> bool:
        """Whether the node can take a job (no job running, not drained)."""
        return self.running_job is None and not self.down

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, gpus={self.gpu_count}, gres={sorted(self.gres)})"


class Cluster:
    """A set of nodes sharing one virtual clock."""

    def __init__(
        self,
        nodes: list[Node],
        clock: VirtualClock,
        trace: TraceSession | None = None,
    ) -> None:
        if not nodes:
            raise ConfigurationError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate node names in cluster")
        self.nodes = list(nodes)
        self.clock = clock
        #: Observability session shared by scheduler/launcher layers.
        self.trace = resolve_trace(trace)
        self._raw_trace = trace
        #: Shared fault-injection plane (None on the happy path).
        self.fault_injector: FaultInjector | None = None
        #: Inline invariant hook (the shared no-op unless ``build(validate=)``).
        self.validator: InlineValidator = resolve_validator(None)

    def attach_faults(self, injector: FaultInjector) -> None:
        """Thread a fault injector through every node and board."""
        self.fault_injector = injector
        for node in self.nodes:
            node.fault_injector = injector
            for gpu in node.gpus:
                gpu.fault_injector = injector

    @classmethod
    def build(
        cls,
        spec: GPUSpec,
        n_nodes: int,
        gpus_per_node: int = 4,
        gres: set[str] | None = None,
        clock: VirtualClock | None = None,
        fault_plan: FaultPlan | None = None,
        trace: TraceSession | None = None,
        validate: InlineValidator | bool | None = None,
        index_base: int = 0,
        node_prefix: str = "node",
    ) -> "Cluster":
        """Provision a homogeneous cluster in production posture.

        Every GPU starts with API restriction enabled (only root may change
        clocks) and driver-default clocks — the state §2.3 describes for
        large installations. A ``fault_plan`` arms the chaos plane: its
        injector is attached to the cluster, every node and every board.
        ``validate`` opts into the inline invariant hook: the provisioning
        posture is checked immediately and the validator is kept on
        :attr:`Cluster.validator` for downstream layers (no-op by default,
        like the trace).

        ``index_base`` offsets every GPU index (and therefore its trace
        track and fault-injection address) and ``node_prefix`` the node
        names, so several clusters — e.g. the service plane's partition
        shards — can share one trace session without colliding.
        """
        if n_nodes < 1 or gpus_per_node < 1:
            raise ConfigurationError(
                f"invalid topology: {n_nodes} nodes x {gpus_per_node} GPUs"
            )
        if index_base < 0:
            raise ConfigurationError(
                f"index_base cannot be negative ({index_base!r})"
            )
        clk = clock if clock is not None else VirtualClock()
        nodes = []
        for i in range(n_nodes):
            gpus = []
            for j in range(gpus_per_node):
                # Each board gets its own clock so MPI ranks progress
                # concurrently in virtual time; the scheduler synchronizes
                # device clocks with the cluster wall clock at job edges.
                gpu = SimulatedGPU(
                    spec,
                    clock=VirtualClock(clk.now),
                    index=index_base + i * gpus_per_node + j,
                )
                gpu.set_api_restriction(True)
                gpus.append(gpu)
            nodes.append(
                Node(name=f"{node_prefix}{i:03d}", gpus=gpus, gres=set(gres or ()))
            )
        cluster = cls(nodes, clk, trace=trace)
        if fault_plan is not None:
            cluster.attach_faults(fault_plan.injector(trace=trace))
        cluster.validator = resolve_validator(validate)
        if cluster.validator.enabled:
            cluster.validator.check_cluster(cluster)
        return cluster

    @property
    def total_gpus(self) -> int:
        """Total boards across the cluster."""
        return sum(n.gpu_count for n in self.nodes)

    def idle_nodes(self) -> list[Node]:
        """Nodes with no running job."""
        return [n for n in self.nodes if n.idle]

    def get_node(self, name: str) -> Node:
        """Look a node up by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigurationError(f"unknown node {name!r}")
