"""Simulated MPI over the simulated cluster.

Weak-scaling evaluation (Fig. 10) needs distributed-memory execution where
*execution time includes computation and communication while the energy
accounting covers only the GPU devices*. This package provides:

- :mod:`~repro.mpi.network` — an InfiniBand-EDR-with-DragonFly+-flavoured
  latency/bandwidth model distinguishing intra-node (NVLink-class) from
  inter-node transfers,
- :mod:`~repro.mpi.comm` — an mpi4py-shaped communicator whose operations
  advance the per-rank virtual clocks (barrier, allreduce, halo exchange,
  point-to-point),
- :mod:`~repro.mpi.launcher` — ``mpiexec``-like helpers binding one rank
  per allocated GPU of a SLURM job.
"""

from repro.mpi.comm import SimulatedComm
from repro.mpi.launcher import launch_ranks
from repro.mpi.network import NetworkModel

__all__ = ["SimulatedComm", "NetworkModel", "launch_ranks"]
