"""Interconnect cost model.

Marconi-100 connects nodes with Mellanox InfiniBand EDR (100 Gb/s) in a
DragonFly+ topology; inside a node, GPUs share NVLink-class bandwidth. A
point-to-point transfer of ``n`` bytes costs ``software_overhead + latency +
n / bandwidth`` with the latency/bandwidth pair picked by locality. The
DragonFly+ structure is abstracted into a single additional hop latency for
inter-group messages (groups of ``nodes_per_group`` nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth interconnect parameters (seconds, bytes/s)."""

    intra_node_latency_s: float = 2.0e-6
    intra_node_bandwidth: float = 50.0e9  # NVLink-class
    inter_node_latency_s: float = 1.5e-6
    inter_node_bandwidth: float = 12.5e9  # EDR: 100 Gb/s
    inter_group_extra_latency_s: float = 1.0e-6  # extra DragonFly+ hop
    software_overhead_s: float = 5.0e-6  # MPI stack per message
    nodes_per_group: int = 18

    def __post_init__(self) -> None:
        if min(
            self.intra_node_latency_s,
            self.inter_node_latency_s,
            self.inter_group_extra_latency_s,
            self.software_overhead_s,
        ) < 0:
            raise ValidationError("latencies cannot be negative")
        if self.intra_node_bandwidth <= 0 or self.inter_node_bandwidth <= 0:
            raise ValidationError("bandwidths must be positive")
        if self.nodes_per_group < 1:
            raise ValidationError(
                f"nodes_per_group must be >= 1 ({self.nodes_per_group!r})"
            )

    def transfer_time(self, nbytes: float, node_a: int, node_b: int) -> float:
        """Cost (s) of moving ``nbytes`` between two ranks' nodes."""
        if nbytes < 0:
            raise ValidationError(f"message size cannot be negative ({nbytes!r})")
        if node_a == node_b:
            latency = self.intra_node_latency_s
            bandwidth = self.intra_node_bandwidth
        else:
            latency = self.inter_node_latency_s
            bandwidth = self.inter_node_bandwidth
            if node_a // self.nodes_per_group != node_b // self.nodes_per_group:
                latency += self.inter_group_extra_latency_s
        return self.software_overhead_s + latency + nbytes / bandwidth

    def allreduce_time(self, nbytes: float, node_ids: list[int]) -> float:
        """Cost (s) of a ring-style allreduce over ranks on ``node_ids``.

        Standard ring model: ``2·(p−1)/p`` of the payload crosses the
        slowest link, plus a latency term per ring step.
        """
        p = len(node_ids)
        if p <= 1:
            return 0.0
        worst_step = max(
            self.transfer_time(nbytes / p, node_ids[i], node_ids[(i + 1) % p])
            for i in range(p)
        )
        return 2.0 * (p - 1) * worst_step
