"""Simulated MPI communicator.

One rank per GPU; each rank's progress is its GPU's virtual clock.
Collective operations synchronize the participating clocks (a collective
completes for everyone when the slowest participant plus the transfer cost
is done), matching how weak-scaling applications experience communication.

Only the time/energy accounting is simulated — payload values are passed
through Python directly (ranks live in one process), mirroring the mpi4py
"communicate a Python object" style for convenience in the mini-apps.

Resilience: MPI is where distributed failures *surface*. Every collective
first polls the fault plane — a dead rank raises :class:`RankFailure`, a
dead node raises :class:`NodeFailure` (both out of the payload, into the
scheduler's requeue path, exactly like an MPI error aborting the job
step). A degraded link (``mpi.link_degraded``) stretches transfer costs
by ``1/param`` for the fault window without aborting anything.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.faults import FaultInjector, NodeFailure, RankFailure
from repro.hw.device import SimulatedGPU
from repro.mpi.network import NetworkModel
from repro.obs.session import TraceSession, resolve_trace


class SimulatedComm:
    """An MPI_COMM_WORLD over a list of GPUs (one rank per board)."""

    def __init__(
        self,
        gpus: list[SimulatedGPU],
        node_of_rank: list[int],
        network: NetworkModel | None = None,
        node_names: list[str] | None = None,
        injector: FaultInjector | None = None,
        trace: TraceSession | None = None,
    ) -> None:
        if not gpus:
            raise ValidationError("communicator needs at least one rank")
        if len(node_of_rank) != len(gpus):
            raise ValidationError(
                f"node_of_rank length {len(node_of_rank)} != ranks {len(gpus)}"
            )
        self.gpus = list(gpus)
        self.node_of_rank = list(node_of_rank)
        self.network = network if network is not None else NetworkModel()
        #: Node name per node index, for node-failure attribution. Defaults
        #: to synthetic names when the communicator is built bare.
        n_nodes = max(node_of_rank) + 1
        if node_names is None:
            node_names = [f"node{i:03d}" for i in range(n_nodes)]
        if len(node_names) < n_nodes:
            raise ValidationError(
                f"node_names covers {len(node_names)} nodes; ranks span {n_nodes}"
            )
        self.node_names = list(node_names)
        # Distinct node indices, precomputed once: ``_check_faults`` runs on
        # every collective, and rebuilding the sorted set per call is pure
        # overhead at cluster-scale rank counts.
        self._node_indices = sorted(set(self.node_of_rank))
        #: Shared fault-injection plane (None on the happy path).
        self.injector = injector
        #: Observability session; collectives record spans on the "mpi" track.
        self.trace = resolve_trace(trace)
        #: Communication seconds accumulated per rank (time spent blocked
        #: in MPI beyond local compute), for the time-includes-comm report.
        self.comm_time_s = np.zeros(len(gpus))

    def _record_collective(self, name: str, t0: float, t1: float, **attrs) -> None:
        """Retroactive span for one finished collective on the mpi track."""
        tr = self.trace
        if not tr.enabled:
            return
        tr.add_span("mpi", "mpi.collective", name, t0, t1, **attrs)
        tr.count(f"mpi.{name}s")
        tr.observe("mpi.collective_time_s", t1 - t0)

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.gpus)

    def rank_now(self, rank: int) -> float:
        """Virtual time of one rank."""
        return self.gpus[rank].clock.now

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValidationError(f"rank {rank} out of range (size {self.size})")

    # ---------------------------------------------------------------- faults

    def _check_faults(self, t: float) -> None:
        """Poll the fault plane at a collective's entry.

        Node failures are checked first (a dead node takes all its ranks
        with it), then per-rank failures. Raising out of the collective
        models MPI's default error handler aborting the job step.
        """
        inj = self.injector
        if inj is None:
            return
        # Per-site gating: ``fires`` on an unarmed site is a guaranteed
        # no-op (no match, no RNG draw), so the O(nodes)/O(ranks) polling
        # loops — one injector call per target per collective — collapse to
        # two O(1) checks on the common no-fault-plan-for-MPI path.
        if inj.armed("slurm.node_fail"):
            for node_index in self._node_indices:
                name = self.node_names[node_index]
                if inj.fires(
                    "slurm.node_fail",
                    t,
                    target=name,
                    detail=f"node {name} failed during a collective",
                ):
                    raise NodeFailure((name,), t)
        if inj.armed("mpi.rank_fail"):
            for rank in range(self.size):
                if inj.fires(
                    "mpi.rank_fail",
                    t,
                    target=rank,
                    detail=f"rank {rank} died during a collective",
                ):
                    raise RankFailure(rank, t)

    def _link_factor(self, t: float) -> float:
        """Transfer-cost multiplier (>= 1) while a link-degradation window
        is active: bandwidth scaled by ``param`` stretches time by 1/param."""
        inj = self.injector
        if inj is None:
            return 1.0
        spec = inj.active("mpi.link_degraded", t)
        if spec is None:
            return 1.0
        return 1.0 / float(spec.param)

    # ------------------------------------------------------------ primitives

    def barrier(self) -> float:
        """Synchronize all ranks; returns the post-barrier time."""
        t0 = min(g.clock.now for g in self.gpus)
        t = max(g.clock.now for g in self.gpus)
        self._check_faults(t)
        for rank, gpu in enumerate(self.gpus):
            self.comm_time_s[rank] += t - gpu.clock.now
            gpu.clock.advance_to(t)
        self._record_collective("barrier", t0, t)
        return t

    def send_recv(self, src: int, dst: int, nbytes: float) -> float:
        """Blocking transfer ``src → dst``; returns completion time.

        The receiver completes at ``max(t_src, t_dst) + transfer``; the
        sender is released once the message is handed off (eager model) at
        ``t_src + software overhead``.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValidationError("send_recv needs distinct ranks")
        t_src = self.gpus[src].clock.now
        t_dst = self.gpus[dst].clock.now
        self._check_faults(max(t_src, t_dst))
        cost = self.network.transfer_time(
            nbytes, self.node_of_rank[src], self.node_of_rank[dst]
        ) * self._link_factor(max(t_src, t_dst))
        done = max(t_src, t_dst) + cost
        self.comm_time_s[dst] += done - t_dst
        self.gpus[dst].clock.advance_to(done)
        sender_done = t_src + self.network.software_overhead_s
        if sender_done > self.gpus[src].clock.now:
            self.comm_time_s[src] += sender_done - t_src
            self.gpus[src].clock.advance_to(sender_done)
        self._record_collective(
            "sendrecv", max(t_src, t_dst), done, src=src, dst=dst, nbytes=nbytes
        )
        return done

    def allreduce(self, nbytes: float) -> float:
        """Ring allreduce over all ranks; returns the completion time."""
        t = max(g.clock.now for g in self.gpus)
        self._check_faults(t)
        cost = self.network.allreduce_time(nbytes, self.node_of_rank)
        done = t + cost * self._link_factor(t)
        for rank, gpu in enumerate(self.gpus):
            self.comm_time_s[rank] += done - gpu.clock.now
            gpu.clock.advance_to(done)
        self._record_collective("allreduce", t, done, nbytes=nbytes)
        return done

    def halo_exchange(self, nbytes_per_neighbor: float, ring: bool = True) -> float:
        """Nearest-neighbour exchange (both directions); returns finish time.

        Each rank swaps halos with its ±1 neighbours (periodic when
        ``ring``). All exchanges proceed concurrently; every rank completes
        at ``max(own, neighbours) + 2·worst-link transfer``.
        """
        if self.size == 1:
            # A lone rank has no neighbours to swap with, but the fault
            # plane must still be polled: an active rank/node failure
            # surfaces out of every collective, matching barrier/allreduce.
            now = self.gpus[0].clock.now
            self._check_faults(now)
            return now
        times = np.array([g.clock.now for g in self.gpus])
        t_entry = float(times.max())
        self._check_faults(t_entry)
        factor = self._link_factor(t_entry)
        new_times = times.copy()
        for rank in range(self.size):
            neighbours = []
            if ring:
                neighbours = [(rank - 1) % self.size, (rank + 1) % self.size]
            else:
                if rank > 0:
                    neighbours.append(rank - 1)
                if rank < self.size - 1:
                    neighbours.append(rank + 1)
            ready = max([times[rank]] + [times[n] for n in neighbours])
            worst = max(
                self.network.transfer_time(
                    nbytes_per_neighbor,
                    self.node_of_rank[rank],
                    self.node_of_rank[n],
                )
                for n in neighbours
            )
            new_times[rank] = ready + 2.0 * worst * factor  # send + receive
        for rank, gpu in enumerate(self.gpus):
            self.comm_time_s[rank] += new_times[rank] - times[rank]
            gpu.clock.advance_to(float(new_times[rank]))
        done = float(new_times.max())
        self._record_collective(
            "halo", t_entry, done, nbytes_per_neighbor=nbytes_per_neighbor
        )
        return done

    # ------------------------------------------------------------- reporting

    def elapsed_max(self, since: float = 0.0) -> float:
        """Wall time of the slowest rank since ``since``."""
        return max(g.clock.now for g in self.gpus) - since

    def total_gpu_energy(self, t0: float, t1_per_rank: list[float] | None = None) -> float:
        """True GPU energy across all ranks from ``t0`` (to each rank's now)."""
        total = 0.0
        for rank, gpu in enumerate(self.gpus):
            t1 = gpu.clock.now if t1_per_rank is None else t1_per_rank[rank]
            total += gpu.energy_between(t0, t1)
        return total
