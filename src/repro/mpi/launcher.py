"""``mpiexec``-like rank binding for SLURM jobs.

Maps a job's allocation (nodes × GPUs) to an MPI communicator with one rank
per board, node-major — the standard ``--ntasks-per-node=<gpus>`` binding
used on Marconi-100.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.mpi.comm import SimulatedComm
from repro.mpi.network import NetworkModel
from repro.slurm.job import JobContext


def launch_ranks(
    context: JobContext,
    network: NetworkModel | None = None,
    ranks_per_node: int | None = None,
    trace=None,
) -> SimulatedComm:
    """Build the communicator for a running job (one rank per GPU).

    ``ranks_per_node`` limits how many boards per node get a rank (defaults
    to all of them). The allocation's fault injector (if the cluster was
    built with a fault plan) is threaded into the communicator so node and
    rank failures surface inside collectives.
    """
    gpus = []
    node_of_rank = []
    for node_index, node in enumerate(context.nodes):
        boards = node.gpus
        if ranks_per_node is not None:
            if ranks_per_node < 1 or ranks_per_node > len(boards):
                raise ValidationError(
                    f"ranks_per_node {ranks_per_node} invalid for node with "
                    f"{len(boards)} GPUs"
                )
            boards = boards[:ranks_per_node]
        for gpu in boards:
            gpus.append(gpu)
            node_of_rank.append(node_index)
    node_names = [node.name for node in context.nodes]
    injector = getattr(context.nodes[0], "fault_injector", None)
    if trace is None:
        # The scheduler stamps its session on the job context, so a traced
        # cluster run gets a traced communicator for free.
        trace = getattr(context, "trace", None)
    comm = SimulatedComm(
        gpus,
        node_of_rank,
        network=network,
        node_names=node_names,
        injector=injector,
        trace=trace,
    )
    # Same deal for the inline invariant hook: a cluster built with
    # ``validate=`` gets its rank binding checked at launch time.
    validator = getattr(context, "validator", None)
    if validator is not None and getattr(validator, "enabled", False):
        validator.check_rank_binding(comm, context)
    return comm
