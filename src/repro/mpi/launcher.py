"""``mpiexec``-like rank binding for SLURM jobs.

Maps a job's allocation (nodes × GPUs) to an MPI communicator with one rank
per board, node-major — the standard ``--ntasks-per-node=<gpus>`` binding
used on Marconi-100.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.mpi.comm import SimulatedComm
from repro.mpi.network import NetworkModel
from repro.slurm.job import JobContext


def launch_ranks(
    context: JobContext,
    network: NetworkModel | None = None,
    ranks_per_node: int | None = None,
) -> SimulatedComm:
    """Build the communicator for a running job (one rank per GPU).

    ``ranks_per_node`` limits how many boards per node get a rank (defaults
    to all of them).
    """
    gpus = []
    node_of_rank = []
    for node_index, node in enumerate(context.nodes):
        boards = node.gpus
        if ranks_per_node is not None:
            if ranks_per_node < 1 or ranks_per_node > len(boards):
                raise ValidationError(
                    f"ranks_per_node {ranks_per_node} invalid for node with "
                    f"{len(boards)} GPUs"
                )
            boards = boards[:ranks_per_node]
        for gpu in boards:
            gpus.append(gpu)
            node_of_rank.append(node_index)
    return SimulatedComm(gpus, node_of_rank, network=network)
