"""Prediction-error measures used in the §8.3 accuracy analysis.

All three operate on *objective values realized at the chosen frequency*
(see Table 2's protocol), but are generic enough for any paired arrays.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


def _paired(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    a = np.atleast_1d(np.asarray(actual, dtype=float))
    p = np.atleast_1d(np.asarray(predicted, dtype=float))
    if a.shape != p.shape:
        raise ValidationError(
            f"actual/predicted shapes differ: {a.shape} vs {p.shape}"
        )
    if a.size == 0:
        raise ValidationError("error metrics need at least one sample")
    return a, p


def ape(actual: float, predicted: float) -> float:
    """Absolute percentage error ``|a − p| / |a|`` for one sample.

    Zero actual with zero predicted is a perfect prediction (APE 0); zero
    actual with nonzero predicted is undefined and raises.
    """
    a, p = _paired(actual, predicted)
    if a.size != 1:
        raise ValidationError("ape is a single-sample metric; use mape for arrays")
    if a[0] == 0.0:
        if p[0] == 0.0:
            return 0.0
        raise ValidationError("APE undefined for zero actual and nonzero prediction")
    return float(abs(a[0] - p[0]) / abs(a[0]))


def mape(actual, predicted) -> float:
    """Mean absolute percentage error over paired samples (fraction, not %)."""
    a, p = _paired(actual, predicted)
    if np.any(a == 0.0):
        raise ValidationError("MAPE undefined when an actual value is zero")
    return float(np.mean(np.abs(a - p) / np.abs(a)))


def rmse(actual, predicted) -> float:
    """Root mean squared error over paired samples."""
    a, p = _paired(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))
