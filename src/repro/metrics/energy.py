"""Energy-delay scalarizations (paper §5.1).

EDP (Horowitz et al.) multiplies energy by delay; ED2P squares the delay,
weighting performance more — which is why its optimum sits near the maximum
frequency (Fig. 4b) and it "should not be considered a tradeoff metric".
"""

from __future__ import annotations

import numpy as np


def edp(energy_j: float | np.ndarray, time_s: float | np.ndarray) -> float | np.ndarray:
    """Energy-Delay Product ``e · t`` (J·s)."""
    result = np.asarray(energy_j, dtype=float) * np.asarray(time_s, dtype=float)
    if np.isscalar(energy_j) and np.isscalar(time_s):
        return float(result)
    return result


def ed2p(
    energy_j: float | np.ndarray, time_s: float | np.ndarray
) -> float | np.ndarray:
    """Energy-Delay-Square Product ``e · t²`` (J·s²)."""
    t = np.asarray(time_s, dtype=float)
    result = np.asarray(energy_j, dtype=float) * t * t
    if np.isscalar(energy_j) and np.isscalar(time_s):
        return float(result)
    return result
