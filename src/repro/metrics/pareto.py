"""Pareto-front extraction on the speedup/energy plane.

The characterization figures (2, 7, 8) plot speedup (maximize) against
normalized per-task energy (minimize) for every frequency configuration and
highlight the Pareto front. A point dominates another if it is at least as
fast *and* at least as frugal, and strictly better in one of the two.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


def pareto_front_mask(speedup, energy) -> np.ndarray:
    """Boolean mask of Pareto-optimal points (max speedup, min energy).

    Ties are kept: two identical points are both reported as optimal, which
    matches how the paper draws coincident configurations.
    """
    s = np.asarray(speedup, dtype=float)
    e = np.asarray(energy, dtype=float)
    if s.shape != e.shape or s.ndim != 1:
        raise ValidationError(
            f"speedup/energy must be equal-length 1-D arrays ({s.shape} vs {e.shape})"
        )
    n = s.size
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        dominates = (s >= s[i]) & (e <= e[i]) & ((s > s[i]) | (e < e[i]))
        if np.any(dominates):
            mask[i] = False
    return mask


def front_violations(speedup, energy, mask) -> tuple[int, int]:
    """Consistency counts for a claimed Pareto mask.

    Returns ``(dominated_front, uncovered_off_front)``: masked-in points
    dominated by another front point, and masked-out points not dominated
    by any front point. A consistent mask yields ``(0, 0)`` — the property
    the validation plane asserts for the Figs. 2/7/8 characterizations.
    """
    s = np.asarray(speedup, dtype=float)
    e = np.asarray(energy, dtype=float)
    m = np.asarray(mask, dtype=bool)
    if not (s.shape == e.shape == m.shape) or s.ndim != 1:
        raise ValidationError(
            f"speedup/energy/mask must be equal-length 1-D arrays "
            f"({s.shape}, {e.shape}, {m.shape})"
        )
    front = np.flatnonzero(m)

    def dominated_by_front(i: int) -> bool:
        c = front[front != i]
        return bool(
            np.any(
                (s[c] >= s[i]) & (e[c] <= e[i]) & ((s[c] > s[i]) | (e[c] < e[i]))
            )
        )

    dominated_front = sum(1 for i in front if dominated_by_front(i))
    uncovered_off = sum(
        1 for i in np.flatnonzero(~m) if not dominated_by_front(i)
    )
    return dominated_front, uncovered_off


def pareto_points(speedup, energy) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pareto-optimal ``(indices, speedup, energy)`` sorted by speedup."""
    s = np.asarray(speedup, dtype=float)
    e = np.asarray(energy, dtype=float)
    mask = pareto_front_mask(s, e)
    idx = np.flatnonzero(mask)
    order = np.argsort(s[idx])
    idx = idx[order]
    return idx, s[idx], e[idx]
