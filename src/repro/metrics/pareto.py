"""Pareto-front extraction on the speedup/energy plane.

The characterization figures (2, 7, 8) plot speedup (maximize) against
normalized per-task energy (minimize) for every frequency configuration and
highlight the Pareto front. A point dominates another if it is at least as
fast *and* at least as frugal, and strictly better in one of the two.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


def pareto_front_mask(speedup, energy) -> np.ndarray:
    """Boolean mask of Pareto-optimal points (max speedup, min energy).

    Ties are kept: two identical points are both reported as optimal, which
    matches how the paper draws coincident configurations.
    """
    s = np.asarray(speedup, dtype=float)
    e = np.asarray(energy, dtype=float)
    if s.shape != e.shape or s.ndim != 1:
        raise ValidationError(
            f"speedup/energy must be equal-length 1-D arrays ({s.shape} vs {e.shape})"
        )
    n = s.size
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        dominates = (s >= s[i]) & (e <= e[i]) & ((s > s[i]) | (e < e[i]))
        if np.any(dominates):
            mask[i] = False
    return mask


def pareto_points(speedup, energy) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pareto-optimal ``(indices, speedup, energy)`` sorted by speedup."""
    s = np.asarray(speedup, dtype=float)
    e = np.asarray(energy, dtype=float)
    mask = pareto_front_mask(s, e)
    idx = np.flatnonzero(mask)
    order = np.argsort(s[idx])
    idx = idx[order]
    return idx, s[idx], e[idx]
