"""ES_x and PL_x selection rules (paper §5.2–5.3).

Both metrics operate on the interval between the minimum-energy frequency
and the default frequency, the region where the interesting Pareto-optimal
tradeoffs live:

- ``ES_x`` — the best-*performing* configuration that saves at least ``x``\\%
  of the *potential* energy saving ``e_default − e_min``. ``ES_100`` is the
  minimum-energy configuration, ``ES_0`` degenerates to the default.
- ``PL_x`` — the most energy-*frugal* configuration whose performance loss
  is at most ``x``\\% of the *potential* loss, where the potential loss is
  measured from the default down to the performance at the minimum-energy
  frequency (the other end of the interval).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError


def _validate(freqs, times, energies, default_index: int) -> tuple[np.ndarray, ...]:
    f = np.asarray(freqs, dtype=float)
    t = np.asarray(times, dtype=float)
    e = np.asarray(energies, dtype=float)
    if not (f.shape == t.shape == e.shape) or f.ndim != 1 or f.size == 0:
        raise ValidationError("freqs/times/energies must be equal-length 1-D arrays")
    if not 0 <= default_index < f.size:
        raise ValidationError(f"default index {default_index} out of range")
    if np.any(t <= 0) or np.any(e <= 0):
        raise ValidationError("times and energies must be positive")
    return f, t, e


def energy_saving_index(
    freqs, times, energies, default_index: int, percent: float
) -> int:
    """Index of the ES_percent configuration in a frequency sweep.

    Among configurations meeting the required energy saving, ties on
    performance break toward lower energy.
    """
    if not 0.0 <= percent <= 100.0:
        raise ValidationError(f"ES percent must be in [0, 100] ({percent!r})")
    _, t, e = _validate(freqs, times, energies, default_index)
    e_default = e[default_index]
    e_min = float(np.min(e))
    threshold = e_default - (percent / 100.0) * (e_default - e_min)
    if percent >= 100.0:
        # Algebraically the threshold is exactly e_min here, but the float
        # expression above can round one ulp high and admit a near-minimum
        # configuration; ES_100 must land on the global energy minimum.
        threshold = e_min
    eligible = np.flatnonzero(e <= threshold)
    if eligible.size == 0:
        # Degenerate sweep (default already at minimum energy).
        return int(np.argmin(e))
    # Best performing among eligible; ties → more energy saving.
    order = np.lexsort((e[eligible], t[eligible]))
    return int(eligible[order[0]])


def performance_loss_index(
    freqs, times, energies, default_index: int, percent: float
) -> int:
    """Index of the PL_percent configuration in a frequency sweep.

    Among configurations within the allowed performance loss, the most
    energy-frugal wins; ties on energy break toward higher performance.
    """
    if not 0.0 <= percent <= 100.0:
        raise ValidationError(f"PL percent must be in [0, 100] ({percent!r})")
    _, t, e = _validate(freqs, times, energies, default_index)
    perf = 1.0 / t
    perf_default = perf[default_index]
    perf_at_emin = perf[int(np.argmin(e))]
    # The interval endpoint: performance at the minimum-energy frequency.
    # When the min-energy config is *faster* than default the potential loss
    # is zero and every config at least as fast as default is eligible.
    potential_loss = max(perf_default - perf_at_emin, 0.0)
    threshold = perf_default - (percent / 100.0) * potential_loss
    eligible = np.flatnonzero(perf >= threshold)
    if eligible.size == 0:
        return int(default_index)
    order = np.lexsort((t[eligible], e[eligible]))
    return int(eligible[order[0]])
