"""Energy metrics and targets (paper §5).

- :mod:`~repro.metrics.energy` — EDP / ED2P scalarizations,
- :mod:`~repro.metrics.targets` — the user-facing target vocabulary
  (MAX_PERF, MIN_ENERGY, MIN_EDP, MIN_ED2P, ES_x, PL_x) and its resolution
  against a measured frequency sweep,
- :mod:`~repro.metrics.pareto` — Pareto-front extraction for the
  speedup/normalized-energy plane of Figs. 2, 7, 8,
- :mod:`~repro.metrics.tradeoff` — the ES_x / PL_x selection rules of
  §5.2–5.3,
- :mod:`~repro.metrics.errors` — APE / MAPE / RMSE used in §8.3.
"""

from repro.metrics.energy import ed2p, edp
from repro.metrics.errors import ape, mape, rmse
from repro.metrics.pareto import pareto_front_mask, pareto_points
from repro.metrics.targets import (
    DEADLINE,
    ES_25,
    ES_50,
    ES_75,
    ES_100,
    EnergyTarget,
    MAX_PERF,
    MIN_ED2P,
    MIN_EDP,
    MIN_ENERGY,
    PL_25,
    PL_50,
    PL_75,
    SLA_SLACK,
    TargetKind,
    deadline_index,
)
from repro.metrics.tradeoff import energy_saving_index, performance_loss_index

__all__ = [
    "edp",
    "ed2p",
    "ape",
    "mape",
    "rmse",
    "pareto_front_mask",
    "pareto_points",
    "EnergyTarget",
    "TargetKind",
    "MAX_PERF",
    "MIN_ENERGY",
    "MIN_EDP",
    "MIN_ED2P",
    "ES_25",
    "ES_50",
    "ES_75",
    "ES_100",
    "PL_25",
    "PL_50",
    "PL_75",
    "DEADLINE",
    "SLA_SLACK",
    "deadline_index",
    "energy_saving_index",
    "performance_loss_index",
]
