"""Energy-target vocabulary and resolution (paper §4.3, §5).

An :class:`EnergyTarget` is what a SYnergy user attaches to a kernel
submission: ``q.submit(MIN_EDP, cgf)``. Targets resolve to a concrete
frequency index against measured (or predicted) sweep data via
:meth:`EnergyTarget.resolve_index`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.metrics.energy import ed2p, edp
from repro.metrics.tradeoff import energy_saving_index, performance_loss_index


class TargetKind(enum.Enum):
    """The target families of §4.3/§5, plus the deadline/SLA extensions."""

    MAX_PERF = "MAX_PERF"
    MIN_ENERGY = "MIN_ENERGY"
    MIN_EDP = "MIN_EDP"
    MIN_ED2P = "MIN_ED2P"
    ES = "ES"
    PL = "PL"
    #: Max energy saving s.t. predicted completion ≤ ``value`` seconds
    #: (the deadline-aware contract of arXiv:2004.08177). When no table
    #: clock can meet the deadline, the fastest clock is selected — a
    #: deadline is never sacrificed for energy.
    DEADLINE = "DEADLINE"
    #: Deadline expressed relative to the fastest achievable time:
    #: ``deadline = value × min(time)``. Scale-invariant, so it resolves
    #: identically on measured sweeps and normalized shape predictions.
    SLA_SLACK = "SLA_SLACK"


#: Relative tolerance for deadline feasibility: a clock whose predicted
#: time exceeds the deadline by less than this is still feasible (guards
#: against float round-off at exact slack boundaries).
DEADLINE_RTOL = 1e-9


def deadline_index(times, energies, deadline_s: float) -> int:
    """Lowest-energy frequency index whose time meets ``deadline_s``.

    The SLA-guarded selection rule: among the feasible clocks (time ≤
    deadline) pick the minimum-energy one; when the feasible set is empty
    fall back to the fastest clock, so the selection is never slower than
    the MAX_PERF plan.
    """
    t = np.asarray(times, dtype=float)
    e = np.asarray(energies, dtype=float)
    if t.size == 0:
        raise ValidationError("deadline resolution needs a non-empty sweep")
    feasible = np.flatnonzero(t <= deadline_s * (1.0 + DEADLINE_RTOL))
    if feasible.size == 0:
        return int(np.argmin(t))
    return int(feasible[np.argmin(e[feasible])])


@dataclass(frozen=True)
class EnergyTarget:
    """A per-kernel energy goal, e.g. ``MIN_EDP``, ``ES_25`` or ``DEADLINE_0.05``.

    ``percent`` is only meaningful for the ES/PL families; ``value``
    carries the deadline in seconds (DEADLINE) or the slack multiplier
    (SLA_SLACK).
    """

    kind: TargetKind
    percent: float | None = None
    value: float | None = None

    def __post_init__(self) -> None:
        if self.kind in (TargetKind.ES, TargetKind.PL):
            if self.percent is None:
                raise ValidationError(f"{self.kind.value} target needs a percentage")
            if not 0.0 <= self.percent <= 100.0:
                raise ValidationError(
                    f"{self.kind.value} percentage must be in [0, 100] "
                    f"({self.percent!r})"
                )
        elif self.percent is not None:
            raise ValidationError(
                f"{self.kind.value} target does not take a percentage"
            )
        if self.kind is TargetKind.DEADLINE:
            if self.value is None or not self.value > 0.0:
                raise ValidationError(
                    f"DEADLINE target needs a positive deadline in seconds "
                    f"({self.value!r})"
                )
        elif self.kind is TargetKind.SLA_SLACK:
            if self.value is None or not self.value >= 1.0:
                raise ValidationError(
                    f"SLA_SLACK target needs a slack factor >= 1 ({self.value!r})"
                )
        elif self.value is not None:
            raise ValidationError(f"{self.kind.value} target does not take a value")

    @property
    def name(self) -> str:
        """Canonical spelling, e.g. ``"ES_25"`` or ``"MIN_EDP"``."""
        if self.percent is not None:
            return f"{self.kind.value}_{self.percent:g}"
        if self.value is not None:
            return f"{self.kind.value}_{self.value:g}"
        return self.kind.value

    @classmethod
    def parse(cls, text: str) -> "EnergyTarget":
        """Parse a canonical spelling (``"MIN_EDP"``, ``"ES_25"``, ...)."""
        t = text.strip().upper()
        simple = {
            "MAX_PERF": TargetKind.MAX_PERF,
            "MIN_ENERGY": TargetKind.MIN_ENERGY,
            "MIN_EDP": TargetKind.MIN_EDP,
            "MIN_ED2P": TargetKind.MIN_ED2P,
        }
        if t in simple:
            return cls(simple[t])
        m = re.fullmatch(r"(ES|PL)_(\d+(?:\.\d+)?)", t)
        if m:
            return cls(TargetKind[m.group(1)], float(m.group(2)))
        m = re.fullmatch(
            r"(DEADLINE|SLA_SLACK)_(\d+(?:\.\d+)?(?:E[+-]?\d+)?)", t
        )
        if m:
            return cls(TargetKind[m.group(1)], value=float(m.group(2)))
        raise ValidationError(f"cannot parse energy target {text!r}")

    def resolve_index(
        self, freqs, times, energies, default_index: int
    ) -> int:
        """Pick the frequency index that realizes this target on sweep data.

        This is the "search algorithm" of §6.2 step ⑥: given per-frequency
        (predicted or measured) time and energy, select the configuration.
        """
        t = np.asarray(times, dtype=float)
        e = np.asarray(energies, dtype=float)
        if self.kind is TargetKind.MAX_PERF:
            return int(np.argmin(t))
        if self.kind is TargetKind.MIN_ENERGY:
            return int(np.argmin(e))
        if self.kind is TargetKind.MIN_EDP:
            return int(np.argmin(edp(e, t)))
        if self.kind is TargetKind.MIN_ED2P:
            return int(np.argmin(ed2p(e, t)))
        if self.kind is TargetKind.DEADLINE:
            assert self.value is not None
            return deadline_index(t, e, self.value)
        if self.kind is TargetKind.SLA_SLACK:
            assert self.value is not None
            return deadline_index(t, e, self.value * float(np.min(t)))
        if self.kind is TargetKind.ES:
            assert self.percent is not None
            return energy_saving_index(freqs, t, e, default_index, self.percent)
        assert self.kind is TargetKind.PL and self.percent is not None
        return performance_loss_index(freqs, t, e, default_index, self.percent)

    def __str__(self) -> str:
        return self.name


# Canonical instances used throughout the paper's evaluation.
MAX_PERF = EnergyTarget(TargetKind.MAX_PERF)
MIN_ENERGY = EnergyTarget(TargetKind.MIN_ENERGY)
MIN_EDP = EnergyTarget(TargetKind.MIN_EDP)
MIN_ED2P = EnergyTarget(TargetKind.MIN_ED2P)
ES_25 = EnergyTarget(TargetKind.ES, 25.0)
ES_50 = EnergyTarget(TargetKind.ES, 50.0)
ES_75 = EnergyTarget(TargetKind.ES, 75.0)
ES_100 = EnergyTarget(TargetKind.ES, 100.0)
PL_25 = EnergyTarget(TargetKind.PL, 25.0)
PL_50 = EnergyTarget(TargetKind.PL, 50.0)
PL_75 = EnergyTarget(TargetKind.PL, 75.0)


def DEADLINE(seconds: float) -> EnergyTarget:  # noqa: N802 - target constructor
    """Max energy saving s.t. predicted completion ≤ ``seconds``."""
    return EnergyTarget(TargetKind.DEADLINE, value=float(seconds))


def SLA_SLACK(factor: float) -> EnergyTarget:  # noqa: N802 - target constructor
    """Max energy saving s.t. time ≤ ``factor`` × the fastest achievable."""
    return EnergyTarget(TargetKind.SLA_SLACK, value=float(factor))

#: The ten objectives evaluated in Table 2, in the paper's row order.
TABLE2_OBJECTIVES: tuple[EnergyTarget, ...] = (
    MAX_PERF,
    MIN_ENERGY,
    MIN_EDP,
    MIN_ED2P,
    ES_25,
    ES_50,
    ES_75,
    PL_25,
    PL_50,
    PL_75,
)
