"""Energy-target vocabulary and resolution (paper §4.3, §5).

An :class:`EnergyTarget` is what a SYnergy user attaches to a kernel
submission: ``q.submit(MIN_EDP, cgf)``. Targets resolve to a concrete
frequency index against measured (or predicted) sweep data via
:meth:`EnergyTarget.resolve_index`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.metrics.energy import ed2p, edp
from repro.metrics.tradeoff import energy_saving_index, performance_loss_index


class TargetKind(enum.Enum):
    """The target families of §4.3/§5."""

    MAX_PERF = "MAX_PERF"
    MIN_ENERGY = "MIN_ENERGY"
    MIN_EDP = "MIN_EDP"
    MIN_ED2P = "MIN_ED2P"
    ES = "ES"
    PL = "PL"


@dataclass(frozen=True)
class EnergyTarget:
    """A per-kernel energy goal, e.g. ``MIN_EDP`` or ``ES_25``.

    ``percent`` is only meaningful for the ES/PL families.
    """

    kind: TargetKind
    percent: float | None = None

    def __post_init__(self) -> None:
        if self.kind in (TargetKind.ES, TargetKind.PL):
            if self.percent is None:
                raise ValidationError(f"{self.kind.value} target needs a percentage")
            if not 0.0 <= self.percent <= 100.0:
                raise ValidationError(
                    f"{self.kind.value} percentage must be in [0, 100] "
                    f"({self.percent!r})"
                )
        elif self.percent is not None:
            raise ValidationError(
                f"{self.kind.value} target does not take a percentage"
            )

    @property
    def name(self) -> str:
        """Canonical spelling, e.g. ``"ES_25"`` or ``"MIN_EDP"``."""
        if self.percent is not None:
            return f"{self.kind.value}_{self.percent:g}"
        return self.kind.value

    @classmethod
    def parse(cls, text: str) -> "EnergyTarget":
        """Parse a canonical spelling (``"MIN_EDP"``, ``"ES_25"``, ...)."""
        t = text.strip().upper()
        simple = {
            "MAX_PERF": TargetKind.MAX_PERF,
            "MIN_ENERGY": TargetKind.MIN_ENERGY,
            "MIN_EDP": TargetKind.MIN_EDP,
            "MIN_ED2P": TargetKind.MIN_ED2P,
        }
        if t in simple:
            return cls(simple[t])
        m = re.fullmatch(r"(ES|PL)_(\d+(?:\.\d+)?)", t)
        if m:
            return cls(TargetKind[m.group(1)], float(m.group(2)))
        raise ValidationError(f"cannot parse energy target {text!r}")

    def resolve_index(
        self, freqs, times, energies, default_index: int
    ) -> int:
        """Pick the frequency index that realizes this target on sweep data.

        This is the "search algorithm" of §6.2 step ⑥: given per-frequency
        (predicted or measured) time and energy, select the configuration.
        """
        t = np.asarray(times, dtype=float)
        e = np.asarray(energies, dtype=float)
        if self.kind is TargetKind.MAX_PERF:
            return int(np.argmin(t))
        if self.kind is TargetKind.MIN_ENERGY:
            return int(np.argmin(e))
        if self.kind is TargetKind.MIN_EDP:
            return int(np.argmin(edp(e, t)))
        if self.kind is TargetKind.MIN_ED2P:
            return int(np.argmin(ed2p(e, t)))
        if self.kind is TargetKind.ES:
            assert self.percent is not None
            return energy_saving_index(freqs, t, e, default_index, self.percent)
        assert self.kind is TargetKind.PL and self.percent is not None
        return performance_loss_index(freqs, t, e, default_index, self.percent)

    def __str__(self) -> str:
        return self.name


# Canonical instances used throughout the paper's evaluation.
MAX_PERF = EnergyTarget(TargetKind.MAX_PERF)
MIN_ENERGY = EnergyTarget(TargetKind.MIN_ENERGY)
MIN_EDP = EnergyTarget(TargetKind.MIN_EDP)
MIN_ED2P = EnergyTarget(TargetKind.MIN_ED2P)
ES_25 = EnergyTarget(TargetKind.ES, 25.0)
ES_50 = EnergyTarget(TargetKind.ES, 50.0)
ES_75 = EnergyTarget(TargetKind.ES, 75.0)
ES_100 = EnergyTarget(TargetKind.ES, 100.0)
PL_25 = EnergyTarget(TargetKind.PL, 25.0)
PL_50 = EnergyTarget(TargetKind.PL, 50.0)
PL_75 = EnergyTarget(TargetKind.PL, 75.0)

#: The ten objectives evaluated in Table 2, in the paper's row order.
TABLE2_OBJECTIVES: tuple[EnergyTarget, ...] = (
    MAX_PERF,
    MIN_ENERGY,
    MIN_EDP,
    MIN_ED2P,
    ES_25,
    ES_50,
    ES_75,
    PL_25,
    PL_50,
    PL_75,
)
