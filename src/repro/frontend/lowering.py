"""AST lowering + type inference for the device-Python subset (§6.1).

One walk over the kernel's AST produces the typed :class:`~repro.frontend.
cfg.KernelCFG`: every arithmetic node is classified into its Table-1
instruction class as it is visited (type inference decides ``int_*`` vs
``float_*``), subscripts become :class:`~repro.frontend.cfg.Access`
records with affine index forms for the reuse analysis, and ``for v in
range(...)`` loops become :class:`~repro.frontend.cfg.CountedLoop` s with
compile-time trip counts. Anything outside the subset produces a located
diagnostic instead of a wrong count.

The subset, informally (``docs/FRONTEND.md`` has the full rules):

- parameters: work-item ids (``gid``/``lid``), arrays annotated
  ``global_f32`` / ``global_i32`` / ``local_f32`` / ``local_i32``
  (unannotated array parameters default to ``global_f32``), and scalar
  constants annotated ``i32`` / ``f32`` with literal defaults;
- statements: assignments to locals and array elements, augmented
  assignments, ``for`` over literal-bounded ``range``, ``pass``, bare
  ``return``, ``barrier()``;
- expressions: int/float literals, arithmetic (``+ - * / // % **``),
  bitwise ops on ints, unary minus, subscript loads, calls to the special
  -function intrinsics (``sqrt``, ``exp``, ...), ``abs``/``min``/``max``,
  ``float()``/``int()`` casts, and ``local(f32, N)`` local-array
  declarations.

Classification rules: ``+``/``-`` count ``int_add``/``float_add``;
``*`` counts ``int_mul``/``float_mul``; ``/`` always counts
``float_div``; ``//`` and ``%`` count ``int_div`` on ints and
``float_div`` otherwise; ``**`` and the math intrinsics count ``sf``;
bitwise ops count ``int_bw``; mixed int/float operands promote to float
with no extra cast cost. ``range`` bounds are compile-time folded and
count nothing (the paper's pass resolves loop bookkeeping statically);
all other arithmetic counts exactly as written — there is no CSE, so the
source is the register-allocated form of the kernel.
"""

from __future__ import annotations

import ast

from repro.frontend import diagnostics as D
from repro.frontend.cfg import (
    Access,
    AffineIndex,
    ArrayType,
    Block,
    CountedLoop,
    KernelCFG,
    Region,
    Scalar,
    Space,
)

#: Special-function intrinsics — each call counts one ``sf`` (Table 1).
SF_INTRINSICS: frozenset[str] = frozenset({
    "sqrt", "rsqrt", "cbrt", "exp", "exp2", "expm1", "log", "log2",
    "log10", "log1p", "sin", "cos", "tan", "asin", "acos", "atan",
    "atan2", "sinh", "cosh", "tanh", "erf", "erfc", "pow",
})

#: Cheap ALU intrinsics — one add-class op (int or float by promotion).
ADD_INTRINSICS: frozenset[str] = frozenset({"abs", "min", "max"})

#: Parameter names conventionally bound to work-item ids (typed int).
ID_PARAMS: frozenset[str] = frozenset({"gid", "lid"})

#: Recognized parameter annotations.
_ANNOTATIONS: dict[str, ArrayType | Scalar] = {
    "i32": Scalar.INT,
    "f32": Scalar.FLOAT,
    "global_f32": ArrayType(Space.GLOBAL, Scalar.FLOAT),
    "global_i32": ArrayType(Space.GLOBAL, Scalar.INT),
    "local_f32": ArrayType(Space.LOCAL, Scalar.FLOAT),
    "local_i32": ArrayType(Space.LOCAL, Scalar.INT),
}

_EMPTY_AFFINE: tuple[tuple[str, int], ...] = ()


def _affine_const(c: int) -> AffineIndex:
    return AffineIndex(coeffs=_EMPTY_AFFINE, const=c)


def _affine_var(name: str) -> AffineIndex:
    return AffineIndex(coeffs=((name, 1),), const=0)


def _affine_add(a: AffineIndex, b: AffineIndex, sign: int) -> AffineIndex:
    coeffs = dict(a.coeffs)
    for name, k in b.coeffs:
        coeffs[name] = coeffs.get(name, 0) + sign * k
    pruned = tuple(sorted((n, k) for n, k in coeffs.items() if k != 0))
    return AffineIndex(coeffs=pruned, const=a.const + sign * b.const)


def _affine_scale(a: AffineIndex, k: int) -> AffineIndex:
    if k == 0:
        return _affine_const(0)
    coeffs = tuple(sorted((n, c * k) for n, c in a.coeffs))
    return AffineIndex(coeffs=coeffs, const=a.const * k)


class _Value:
    """Result of walking one expression: type + optional static views."""

    __slots__ = ("type", "affine", "const")

    def __init__(
        self,
        type_: Scalar | ArrayType,
        affine: AffineIndex | None = None,
        const: int | float | None = None,
    ) -> None:
        self.type = type_
        self.affine = affine
        self.const = const


_ERROR = _Value(Scalar.FLOAT)  # recovery value after a diagnostic


def _promote(a: Scalar, b: Scalar) -> Scalar:
    return Scalar.FLOAT if Scalar.FLOAT in (a, b) else Scalar.INT


class Lowerer:
    """One-shot lowering of a ``FunctionDef`` into a :class:`KernelCFG`."""

    def __init__(
        self,
        name: str,
        sink: D.DiagnosticSink,
        constants: dict[str, int | float] | None = None,
    ) -> None:
        self.name = name
        self.sink = sink
        self.env: dict[str, Scalar | ArrayType] = {}
        self.consts: dict[str, int | float] = dict(constants or {})
        self.affines: dict[str, AffineIndex] = {}
        self.region_stack: list[Region] = []
        #: >0 while re-walking an already-counted subexpression (the index
        #: of an augmented-assignment store): nothing is emitted or
        #: re-reported.
        self._quiet = 0
        #: Barrier-phase counter: incremented by every ``barrier()`` so
        #: accesses record which synchronization phase they execute in.
        self._phase = 0

    # ------------------------------------------------------------ plumbing

    @property
    def block(self) -> Block:
        return self.region_stack[-1].tail_block()

    def _error(self, node: ast.AST | None, code: str, msg: str) -> _Value:
        if not self._quiet:
            self.sink.report(node, code, msg)
        return _ERROR

    # ----------------------------------------------------------- signature

    def lower(self, fn: ast.FunctionDef) -> KernelCFG:
        self._bind_params(fn)
        body = Region()
        self.region_stack.append(body)
        stmts = fn.body
        # Skip a leading docstring.
        if (
            stmts
            and isinstance(stmts[0], ast.Expr)
            and isinstance(stmts[0].value, ast.Constant)
            and isinstance(stmts[0].value.value, str)
        ):
            stmts = stmts[1:]
        for stmt in stmts:
            self._stmt(stmt)
        self.region_stack.pop()
        params = dict(self.env)
        return KernelCFG(name=self.name, params=params, body=body)

    def _bind_params(self, fn: ast.FunctionDef) -> None:
        args = fn.args
        if args.vararg or args.kwarg or args.kwonlyargs:
            self.sink.report(
                fn, D.BAD_SIGNATURE,
                "device kernels take only plain positional parameters",
            )
        defaults = dict(
            zip((a.arg for a in reversed(args.args)), reversed(args.defaults))
        )
        for arg in list(args.posonlyargs) + list(args.args):
            typ = self._param_type(arg)
            self.env[arg.arg] = typ
            if typ is Scalar.INT:
                self.affines[arg.arg] = _affine_var(arg.arg)
            default = defaults.get(arg.arg)
            if default is not None:
                if isinstance(default, ast.Constant) and isinstance(
                    default.value, (int, float)
                ) and not isinstance(default.value, bool):
                    self.consts[arg.arg] = default.value
                else:
                    self.sink.report(
                        default, D.BAD_SIGNATURE,
                        f"default for {arg.arg!r} must be an int/float literal",
                    )

    def _param_type(self, arg: ast.arg) -> Scalar | ArrayType:
        ann = arg.annotation
        if ann is None:
            if arg.arg in ID_PARAMS:
                return Scalar.INT
            return ArrayType(Space.GLOBAL, Scalar.FLOAT)
        label: str | None = None
        if isinstance(ann, ast.Name):
            label = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            label = ann.value
        if label in _ANNOTATIONS:
            return _ANNOTATIONS[label]
        self.sink.report(
            ann, D.BAD_SIGNATURE,
            f"unknown parameter annotation on {arg.arg!r} "
            f"(use one of {sorted(_ANNOTATIONS)})",
        )
        return ArrayType(Space.GLOBAL, Scalar.FLOAT)

    # ---------------------------------------------------------- statements

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._ann_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._error(
                    stmt, D.RETURN_VALUE,
                    "device kernels return results through arrays, not values",
                )
        elif isinstance(stmt, ast.Expr):
            self._expr_stmt(stmt)
        else:
            self._error(
                stmt, D.UNSUPPORTED_STATEMENT,
                f"{type(stmt).__name__} is outside the device-Python subset "
                "(only assignments, counted for-loops, pass and barrier())",
            )

    def _expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "barrier"
            and not value.args
            and not value.keywords
        ):
            # Work-group barrier: synchronization only, zero ops — but it
            # opens a new phase for the race pass's ordering suppression.
            self._phase += 1
            return
        self._error(
            stmt, D.UNSUPPORTED_STATEMENT,
            "expression statements other than barrier() have no effect "
            "on a device kernel",
        )

    def _assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            self._error(
                stmt, D.BAD_ASSIGNMENT_TARGET,
                "chained assignment is not supported",
            )
            return
        self._assign_one(stmt.targets[0], stmt.value, stmt)

    def _ann_assign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            self._error(
                stmt, D.BAD_ASSIGNMENT_TARGET,
                "annotation without a value is not supported",
            )
            return
        self._assign_one(stmt.target, stmt.value, stmt)

    def _assign_one(
        self, target: ast.expr, value: ast.expr, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            # Local array declaration: tile = local(f32, N).
            if self._is_local_decl(value):
                self.env[target.id] = self._local_decl(value)  # type: ignore[arg-type]
                self.affines.pop(target.id, None)
                self.consts.pop(target.id, None)
                return
            v = self._expr(value)
            if isinstance(v.type, ArrayType):
                self._error(
                    stmt, D.ARRAY_ALIASING,
                    f"binding array to a second name {target.id!r} would "
                    "alias it; index the original instead",
                )
                return
            self.env[target.id] = v.type
            if v.affine is not None and v.type is Scalar.INT:
                self.affines[target.id] = v.affine
            else:
                self.affines.pop(target.id, None)
            if v.const is not None:
                self.consts[target.id] = v.const
            else:
                self.consts.pop(target.id, None)
        elif isinstance(target, ast.Subscript):
            v = self._expr(value)
            if isinstance(v.type, ArrayType):
                self._error(
                    stmt, D.ARRAY_ALIASING,
                    "storing an array reference into an array element",
                )
                return
            self._access(target, is_store=True)
        else:
            self._error(
                target, D.BAD_ASSIGNMENT_TARGET,
                f"cannot assign to {type(target).__name__} "
                "(tuple unpacking and attribute stores are unsupported)",
            )

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            current = self.env.get(name)
            if current is None:
                self._error(
                    stmt, D.TYPE_ERROR,
                    f"augmented assignment to unbound name {name!r}",
                )
                return
            if isinstance(current, ArrayType):
                self._error(
                    stmt, D.TYPE_ERROR,
                    f"augmented assignment to array {name!r}",
                )
                return
            v = self._expr(stmt.value)
            if isinstance(v.type, ArrayType):
                self._error(stmt, D.TYPE_ERROR, "array used as a scalar operand")
                return
            lhs = _Value(current, self.affines.get(name))
            result = self._binop_result(stmt.op, lhs, v, stmt)
            self.env[name] = result.type
            if result.affine is not None and result.type is Scalar.INT:
                self.affines[name] = result.affine
            else:
                self.affines.pop(name, None)
            self.consts.pop(name, None)
        elif isinstance(stmt.target, ast.Subscript):
            loaded = self._access(stmt.target, is_store=False)
            v = self._expr(stmt.value)
            self._binop_result(stmt.op, loaded, v, stmt)
            self._access(stmt.target, is_store=True, count_index_ops=False)
        else:
            self._error(
                stmt.target, D.BAD_ASSIGNMENT_TARGET,
                f"cannot augment-assign to {type(stmt.target).__name__}",
            )

    # --------------------------------------------------------------- loops

    def _for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            self._error(
                stmt, D.MALFORMED_LOOP, "for/else is not supported"
            )
        if not isinstance(stmt.target, ast.Name):
            self._error(
                stmt.target, D.MALFORMED_LOOP,
                "loop target must be a single name",
            )
            return
        trip, start, step = self._trip_count(stmt)
        var = stmt.target.id
        # Loop variable: int, affine in itself, not a compile-time const.
        saved = (
            self.env.get(var), self.affines.get(var), self.consts.get(var)
        )
        self.env[var] = Scalar.INT
        self.affines[var] = _affine_var(var)
        self.consts.pop(var, None)
        body = Region()
        self.region_stack.append(body)
        for inner in stmt.body:
            self._stmt(inner)
        self.region_stack.pop()
        self.region_stack[-1].items.append(
            CountedLoop(var=var, trip_count=trip, body=body, line=stmt.lineno,
                        start=start, step=step)
        )
        # After the loop the variable stays bound (Python semantics) but
        # its value is no longer a compile-time constant.
        if saved[0] is not None and saved[0] is not Scalar.INT:
            self.env[var] = saved[0]

    def _trip_count(self, stmt: ast.For) -> tuple[int, int, int]:
        """Fold the loop's range; returns ``(trip_count, start, step)``."""
        it = stmt.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            self._error(
                it, D.MALFORMED_LOOP,
                "device loops must iterate over range(...)",
            )
            return 0, 0, 1
        if it.keywords or not 1 <= len(it.args) <= 3:
            self._error(it, D.MALFORMED_LOOP, "malformed range(...) call")
            return 0, 0, 1
        bounds: list[int] = []
        for arg in it.args:
            value = self._const_int(arg)
            if value is None:
                self._error(
                    arg, D.DYNAMIC_LOOP_BOUND,
                    "loop bound is not a compile-time integer "
                    "(use a literal, or a scalar parameter with a default)",
                )
                return 0, 0, 1
            bounds.append(value)
        if len(bounds) == 3 and bounds[2] == 0:
            self._error(it.args[2], D.MALFORMED_LOOP, "range step cannot be 0")
            return 0, 0, 1
        start = bounds[0] if len(bounds) >= 2 else 0
        step = bounds[2] if len(bounds) == 3 else 1
        return len(range(*bounds)), start, step

    def _const_int(self, node: ast.expr) -> int | None:
        """Compile-time fold of a loop bound (counts no operations)."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return node.value
            return None
        if isinstance(node, ast.Name):
            value = self.consts.get(node.id)
            return value if isinstance(value, int) else None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._const_int(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.BinOp):
            left = self._const_int(node.left)
            right = self._const_int(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv) and right != 0:
                return left // right
            if isinstance(node.op, ast.Mod) and right != 0:
                return left % right
        return None

    # ---------------------------------------------------------- expressions

    def _expr(self, node: ast.expr) -> _Value:
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            if isinstance(left.type, ArrayType) or isinstance(
                right.type, ArrayType
            ):
                return self._error(
                    node, D.TYPE_ERROR, "array used as a scalar operand"
                )
            return self._binop_result(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, ast.Subscript):
            return self._access(node, is_store=False)
        if isinstance(node, ast.Call):
            return self._call(node)
        return self._error(
            node, D.UNSUPPORTED_EXPRESSION,
            f"{type(node).__name__} is outside the device-Python subset "
            "(no comparisons, boolean logic, or container literals)",
        )

    def _constant(self, node: ast.Constant) -> _Value:
        v = node.value
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return self._error(
                node, D.UNSUPPORTED_EXPRESSION,
                f"literal {v!r} has no device type",
            )
        if isinstance(v, int):
            return _Value(Scalar.INT, _affine_const(v), v)
        return _Value(Scalar.FLOAT, None, v)

    def _name(self, node: ast.Name) -> _Value:
        typ = self.env.get(node.id)
        if typ is None:
            return self._error(
                node, D.TYPE_ERROR,
                f"unknown name {node.id!r} (parameters, locals and loop "
                "variables only; there is no closure capture)",
            )
        if isinstance(typ, ArrayType):
            return _Value(typ)
        return _Value(typ, self.affines.get(node.id), self.consts.get(node.id))

    def _unary(self, node: ast.UnaryOp) -> _Value:
        if isinstance(node.op, ast.Not):
            return self._error(
                node, D.UNSUPPORTED_EXPRESSION, "boolean not is unsupported"
            )
        # Fold a negated literal: -1 is a constant, not an operation.
        if isinstance(node.operand, ast.Constant) and isinstance(
            node.operand.value, (int, float)
        ) and not isinstance(node.operand.value, bool):
            value = node.operand.value
            if isinstance(node.op, ast.USub):
                value = -value
            elif isinstance(node.op, ast.Invert):
                if not isinstance(value, int):
                    return self._error(
                        node, D.TYPE_ERROR, "bitwise invert of a float literal"
                    )
                value = ~value
            if isinstance(value, int):
                return _Value(Scalar.INT, _affine_const(value), value)
            return _Value(Scalar.FLOAT, None, value)
        operand = self._expr(node.operand)
        if isinstance(operand.type, ArrayType):
            return self._error(
                node, D.TYPE_ERROR, "array used as a scalar operand"
            )
        if isinstance(node.op, ast.UAdd):
            return operand  # +x is the identity: no operation
        if isinstance(node.op, ast.Invert):
            if operand.type is not Scalar.INT:
                return self._error(
                    node, D.TYPE_ERROR, "bitwise invert of a float"
                )
            self._emit("int_bw", node)
            return _Value(Scalar.INT)
        # USub: negation is an add-class op (subtraction from zero).
        cls = "int_add" if operand.type is Scalar.INT else "float_add"
        self._emit(cls, node)
        affine = (
            _affine_scale(operand.affine, -1)
            if operand.affine is not None and operand.type is Scalar.INT
            else None
        )
        return _Value(operand.type, affine)

    def _binop_result(
        self, op: ast.operator, left: _Value, right: _Value, node: ast.AST
    ) -> _Value:
        lt, rt = left.type, right.type
        assert isinstance(lt, Scalar) and isinstance(rt, Scalar)
        out = _promote(lt, rt)
        if isinstance(op, (ast.Add, ast.Sub)):
            self._emit("int_add" if out is Scalar.INT else "float_add", node)
            affine = None
            if (
                out is Scalar.INT
                and left.affine is not None
                and right.affine is not None
            ):
                sign = 1 if isinstance(op, ast.Add) else -1
                affine = _affine_add(left.affine, right.affine, sign)
            return _Value(out, affine)
        if isinstance(op, ast.Mult):
            self._emit("int_mul" if out is Scalar.INT else "float_mul", node)
            affine = None
            if (
                out is Scalar.INT
                and left.affine is not None
                and right.affine is not None
            ):
                if not left.affine.coeffs:
                    affine = _affine_scale(right.affine, left.affine.const)
                elif not right.affine.coeffs:
                    affine = _affine_scale(left.affine, right.affine.const)
            return _Value(out, affine)
        if isinstance(op, ast.Div):
            self._emit("float_div", node)
            return _Value(Scalar.FLOAT)
        if isinstance(op, (ast.FloorDiv, ast.Mod)):
            if out is Scalar.INT:
                self._emit("int_div", node)
                return _Value(Scalar.INT)
            self._emit("float_div", node)
            return _Value(Scalar.FLOAT)
        if isinstance(op, ast.Pow):
            self._emit("sf", node)
            return _Value(Scalar.FLOAT)
        if isinstance(
            op, (ast.LShift, ast.RShift, ast.BitOr, ast.BitXor, ast.BitAnd)
        ):
            if out is not Scalar.INT:
                return self._error(
                    node, D.TYPE_ERROR, "bitwise operation on floats"
                )
            self._emit("int_bw", node)
            return _Value(Scalar.INT)
        return self._error(
            node, D.UNSUPPORTED_EXPRESSION,
            f"operator {type(op).__name__} is unsupported",
        )

    # ---------------------------------------------------------------- calls

    def _is_local_decl(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "local"
        )

    def _local_decl(self, node: ast.Call) -> ArrayType:
        elem = Scalar.FLOAT
        size: int | None = None
        ok = 1 <= len(node.args) <= 2 and not node.keywords
        if ok and isinstance(node.args[0], ast.Name):
            if node.args[0].id == "i32":
                elem = Scalar.INT
            elif node.args[0].id != "f32":
                ok = False
        else:
            ok = False
        if ok and len(node.args) == 2:
            size = self._const_int(node.args[1])
            if size is None:
                ok = False
        if not ok:
            self.sink.report(
                node, D.UNKNOWN_CALL,
                "local array declarations look like local(f32, SIZE) with a "
                "compile-time size",
            )
        return ArrayType(Space.LOCAL, elem, size)

    def _call(self, node: ast.Call) -> _Value:
        if not isinstance(node.func, ast.Name) or node.keywords:
            return self._error(
                node, D.UNKNOWN_CALL,
                "only direct calls to the device intrinsics are supported",
            )
        fname = node.func.id
        if fname == self.name:
            return self._error(
                node, D.UNKNOWN_CALL,
                f"recursive call to {fname!r}: device kernels cannot recurse",
            )
        args = [self._expr(a) for a in node.args]
        for a, src in zip(args, node.args):
            if isinstance(a.type, ArrayType):
                return self._error(
                    src, D.TYPE_ERROR, "array passed to a scalar intrinsic"
                )
        if fname in SF_INTRINSICS:
            if not 1 <= len(args) <= 2:
                return self._error(
                    node, D.UNKNOWN_CALL, f"{fname}() takes 1 or 2 arguments"
                )
            self._emit("sf", node)
            return _Value(Scalar.FLOAT)
        if fname in ADD_INTRINSICS:
            if not args:
                return self._error(
                    node, D.UNKNOWN_CALL, f"{fname}() needs an argument"
                )
            out = Scalar.INT
            for a in args:
                out = _promote(out, a.type)  # type: ignore[arg-type]
            self._emit("int_add" if out is Scalar.INT else "float_add", node)
            return _Value(out)
        if fname == "float":
            if len(args) != 1:
                return self._error(node, D.UNKNOWN_CALL, "float() takes 1 argument")
            return _Value(Scalar.FLOAT)  # cast: free, drops affine view
        if fname == "int":
            if len(args) != 1:
                return self._error(node, D.UNKNOWN_CALL, "int() takes 1 argument")
            return _Value(Scalar.INT, args[0].affine)
        if fname == "local":
            return self._error(
                node, D.UNKNOWN_CALL,
                "local(...) may only appear as `name = local(f32, SIZE)`",
            )
        return self._error(
            node, D.UNKNOWN_CALL,
            f"call to unknown function {fname!r} (device kernels cannot call "
            "user functions; intrinsics: sqrt/exp/... , abs/min/max, "
            "float/int, local, barrier)",
        )

    # -------------------------------------------------------------- memory

    def _access(
        self,
        node: ast.Subscript,
        *,
        is_store: bool,
        count_index_ops: bool = True,
    ) -> _Value:
        if not isinstance(node.value, ast.Name):
            return self._error(
                node, D.TYPE_ERROR, "only named arrays can be subscripted"
            )
        arr = self.env.get(node.value.id)
        if arr is None:
            return self._error(
                node.value, D.TYPE_ERROR,
                f"unknown array {node.value.id!r}",
            )
        if not isinstance(arr, ArrayType):
            return self._error(
                node.value, D.TYPE_ERROR,
                f"subscripting non-array {node.value.id!r}",
            )
        dims = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        affine_dims: list[AffineIndex] | None = []
        # Second visit of an augmented-assignment target: the index was
        # already evaluated (and counted) by the load — re-walk quietly.
        if not count_index_ops:
            self._quiet += 1
        try:
            for dim in dims:
                if isinstance(dim, ast.Slice):
                    return self._error(
                        dim, D.UNSUPPORTED_EXPRESSION,
                        "slices are not device subscripts",
                    )
                v = self._expr(dim)
                if isinstance(v.type, ArrayType) or v.type is not Scalar.INT:
                    self._error(
                        dim, D.TYPE_ERROR, "subscript indices must be integers"
                    )
                    affine_dims = None
                elif affine_dims is not None:
                    if v.affine is None:
                        affine_dims = None
                    else:
                        affine_dims.append(v.affine)
        finally:
            if not count_index_ops:
                self._quiet -= 1
        if not self._quiet:
            self.block.accesses.append(
                Access(
                    array=node.value.id,
                    space=arr.space,
                    is_store=is_store,
                    index=(
                        tuple(affine_dims) if affine_dims is not None else None
                    ),
                    line=node.lineno,
                    col=node.col_offset,
                    phase=self._phase,
                )
            )
        return _Value(arr.elem)

    def _emit(self, cls: str, node: ast.AST) -> None:
        from repro.frontend.cfg import Op

        if self._quiet:
            return
        self.block.ops.append(
            Op(
                cls=cls,
                line=getattr(node, "lineno", 0) or 0,
                col=getattr(node, "col_offset", 0) or 0,
            )
        )


def lower_kernel(
    fn: ast.FunctionDef,
    *,
    name: str | None = None,
    sink: D.DiagnosticSink | None = None,
    constants: dict[str, int | float] | None = None,
) -> tuple[KernelCFG, D.DiagnosticSink]:
    """Lower one kernel ``FunctionDef``; returns the CFG and its sink.

    The CFG is best-effort when diagnostics were reported — callers must
    check ``sink.has_errors`` before trusting the counts.
    """
    kernel_name = name or fn.name
    sink = sink or D.DiagnosticSink(kernel_name)
    cfg = Lowerer(kernel_name, sink, constants).lower(fn)
    return cfg, sink
