"""Source-backed device-Python implementations of the app kernels.

Each kernel here is the restricted-Python source form whose §6.1 static
analysis extracts *exactly* the instruction mix declared for it in
``repro.apps`` — the differential contract the validation plane checks.
The source is the register-allocated form the paper's pass sees: every
written operation counts, there is no CSE, and loop trip counts multiply
statically. Where the declared ``locality`` is a calibrated measurement
the analysis cannot derive (tiling, texture-cache effects), it is pinned
via ``@device_kernel(locality=...)``; streaming kernels are left unpinned
so the stride/reuse estimator itself produces the declared 0.0.

:func:`backed_kernel_ir` is the bridge the app modules use: it emits the
``KernelIR`` from the front end and fails fast (``ConfigurationError``)
if extraction ever drifts from the declared mix.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.frontend.decorator import DeviceKernel, device_kernel
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR

# --------------------------------------------------------- syclbench kernels


@device_kernel
def vec_add(gid, a, b, c):
    """Streaming vector addition c = a + b."""
    c[gid] = a[gid] + b[gid]


@device_kernel
def dram(gid, a, out):
    """DRAM copy stream with a one-element shift (the index add)."""
    out[gid + 1] = a[gid]


@device_kernel
def sf(gid, a, out):
    """Special-function throughput: a chain of 48 SFU ops per item."""
    x = a[gid]
    x = x * 1.0001
    x = x * 1.0001
    x = x * 1.0001
    x = x * 1.0001
    for k in range(12):
        x = exp(x)
        x = sin(x)
        x = cos(x)
        x = sqrt(x)
    out[gid] = x


@device_kernel
def arith(gid, a, out):
    """Mixed int/float ALU throughput microbenchmark (8 unrolled rounds)."""
    i = gid
    f = a[gid]
    for k in range(8):
        i = i + k
        i = i * 3
        i = i ^ 7
        i = i + 1
        i = i * 5
        i = i & 15
        i = i + 2
        i = i * 7
        i = i >> 1
        i = i + 3
        i = i + 4
        f = f + 1.5
        f = f * 1.25
        f = f + 2.5
        f = f * 0.75
        f = f + 0.5
        f = f * 1.5
        f = f + 3.5
        f = f * 0.5
        f = f + 4.5
        f = f * 2.0
    out[gid] = f


@device_kernel(locality=0.1)
def scalar_prod(gid, lid, a, b, out):
    """Dot-product partial: product into local memory, one tree step."""
    tile = local(f32, 256)
    tile[lid] = a[gid] * b[gid]
    barrier()
    s = tile[lid] + tile[lid]
    tile[lid] = s + s


@device_kernel(locality=0.35)
def median(gid, lid, a, out):
    """3x3 median filter: 20-op min/max selection network, local exchange."""
    tile = local(f32, 130)
    r0 = gid - 1
    r2 = gid + 1
    c0 = lid - 1
    c2 = lid + 1
    v00 = a[r0, c0]
    v01 = a[r0, lid]
    v02 = a[r0, c2]
    v10 = a[gid, c0]
    v11 = a[gid, lid]
    v12 = a[gid, c2]
    v20 = a[r2, c0]
    v21 = a[r2, lid]
    v22 = a[r2, c2]
    lo0 = min(v00, v01)
    hi0 = max(v00, v01)
    lo1 = min(v02, v10)
    hi1 = max(v02, v10)
    lo2 = min(v11, v12)
    hi2 = max(v11, v12)
    lo3 = min(v20, v21)
    hi3 = max(v20, v21)
    ma = min(hi0, hi1)
    mb = max(lo0, lo1)
    mc = min(hi2, hi3)
    md = max(lo2, lo3)
    me = min(ma, mc)
    mf = max(mb, md)
    mg = min(me, v22)
    mh = max(mf, v22)
    mi = min(mg, mh)
    mj = max(mg, mh)
    mk = max(mi, md)
    med = min(mk, mj)
    tile[lid + 1] = med
    barrier()
    res = tile[lid + 2]
    out[gid, lid] = res


@device_kernel(locality=0.45)
def gemm(gid, a0, a1, a2, a3, b0, b1, b2, b3, c):
    """Register-tiled GEMM: 4x4 panel products over 16 k-blocks."""
    acc = c[gid]
    for kb in range(16):
        col = gid + kb
        x0 = a0[gid, kb]
        x1 = a1[gid, kb]
        x2 = a2[gid, kb]
        x3 = a3[gid, kb]
        y0 = b0[col]
        y1 = b1[col]
        y2 = b2[col]
        y3 = b3[col]
        acc = acc + x0 * y0
        acc = acc + x0 * y1
        acc = acc + x0 * y2
        acc = acc + x0 * y3
        acc = acc + x1 * y0
        acc = acc + x1 * y1
        acc = acc + x1 * y2
        acc = acc + x1 * y3
        acc = acc + x2 * y0
        acc = acc + x2 * y1
        acc = acc + x2 * y2
        acc = acc + x2 * y3
        acc = acc + x3 * y0
        acc = acc + x3 * y1
        acc = acc + x3 * y2
        acc = acc + x3 * y3
    c[gid] = acc


@device_kernel(locality=0.88)
def sobel3(gid, img, out_gx, out_gy, out_mag, w: i32):  # noqa: F821
    """3x3 Sobel: generic unrolled convolutions + magnitude/orientation."""
    t = gid - w
    u = gid + w
    p00 = img[t - 1] * 0.0039
    p01 = img[t] * 0.0039
    p02 = img[t + 1] * 0.0039
    p10 = img[gid - 1] * 0.0039
    p11 = img[gid] * 0.0039
    p12 = img[gid + 1] * 0.0039
    p20 = img[u - 1] * 0.0039
    p21 = img[u] * 0.0039
    p22 = img[u + 1] * 0.0039
    gx = 0.0
    gx = gx + p00 * -1.0
    gx = gx + p01 * 0.0
    gx = gx + p02 * 1.0
    gx = gx + p10 * -2.0
    gx = gx + p11 * 0.0
    gx = gx + p12 * 2.0
    gx = gx + p20 * -1.0
    gx = gx + p21 * 0.0
    gx = gx + p22 * 1.0
    gy = 0.0
    gy = gy + p00 * -1.0
    gy = gy + p01 * -2.0
    gy = gy + p02 * -1.0
    gy = gy + p10 * 0.0
    gy = gy + p11 * 0.0
    gy = gy + p12 * 0.0
    gy = gy + p20 * 1.0
    gy = gy + p21 * 2.0
    gy = gy + p22 * 1.0
    sharp = 0.0
    sharp = sharp + p00 * -0.125
    sharp = sharp + p01 * -0.125
    sharp = sharp + p02 * -0.125
    sharp = sharp + p10 * -0.125
    sharp = sharp + p11 * 2.0
    sharp = sharp + p12 * -0.125
    sharp = sharp + p20 * -0.125
    sharp = sharp + p21 * -0.125
    sharp = sharp + p22 * -0.125
    ax = abs(gx)
    ay = abs(gy)
    mag = ax + ay
    s = mag + sharp
    e = sqrt(s)
    th = atan2(gy, gx)
    o = e + th
    m = max(o, 0.0)
    out_gx[gid] = gx
    out_gy[gid] = gy
    out_mag[gid] = m


@device_kernel(locality=0.30)
def black_scholes(gid, price, strike, expiry, vol, out_call, out_put):
    """European option pricing: erf-CND prices + pdf-based risk outputs."""
    s = price[gid]
    k = strike[gid]
    t = expiry[gid]
    sig = vol[gid]
    rat = s / k
    lm = log(rat)
    st = sqrt(t)
    vs = sig * st
    s2 = sig * sig
    h = s2 * 0.5
    dr = h + 0.02
    drt = dr * t
    num = lm + drt
    d1 = num / vs
    d2 = d1 - vs
    nd1 = -d1
    nd2 = -d2
    e1 = d1 * 0.70710678
    n1 = erf(e1)
    n1 = n1 + 1.0
    n1 = n1 * 0.5
    e2 = d2 * 0.70710678
    n2 = erf(e2)
    n2 = n2 + 1.0
    n2 = n2 * 0.5
    e3 = nd1 * 0.70710678
    nn1 = erf(e3)
    nn1 = nn1 + 1.0
    nn1 = nn1 * 0.5
    e4 = nd2 * 0.70710678
    nn2 = erf(e4)
    nn2 = nn2 + 1.0
    nn2 = nn2 * 0.5
    disc = exp(t * -0.02)
    c1 = s * n1
    kd = k * disc
    c2 = kd * n2
    call = c1 - c2
    p1 = kd * nn2
    put = p1 - s * nn1
    q1 = d1 * d1
    g1 = exp(q1 * -0.5)
    pdf1 = g1 * 0.39894228
    q2 = d2 * d2
    g2 = exp(q2 * -0.5)
    pdf2 = g2 * 0.39894228
    nv = pdf1 / sig
    nt = pdf2 / t
    i1 = tanh(d1)
    i2 = tanh(d2)
    ind = i1 + i2
    sq1 = sqrt(q1)
    sq2 = sqrt(q2)
    sd = sq1 + sq2
    ew = exp(0.0 - sd)
    el1 = call / s
    el2 = put / k
    o1 = el1 + nv
    o2 = el2 + nt
    o1 = o1 + ind
    o2 = o2 + ew
    out_call[gid] = o1
    out_put[gid] = o2


# ------------------------------------------------------- miniweather kernels


@device_kernel(locality=0.25)
def mw_tendencies_x(gid, state, flux, cell, tend):
    """x-direction tendencies: 12-point flux windows over 4 fields."""
    for f in range(4):
        acc0 = 0.0
        acc1 = 0.0
        acc2 = 0.0
        acc3 = 0.0
        for s in range(12):
            q = state[f, s, gid]
            r = flux[f, s, gid]
            acc0 += q * 0.25
            acc0 += r * 0.5
            acc1 += q * 0.75
            acc1 += r * 1.5
            acc2 += q * 2.0
            acc2 += r * 0.125
            acc3 += q * 3.0
            acc3 += r * 0.375
        t0 = cell[f, gid]
        h = acc0 - acc1
        v = acc2 - acc3
        tt = h + v
        tend[f, gid] = tt + t0


@device_kernel(locality=0.25)
def mw_tendencies_z(gid, state, flux, cell, metric, tend, srcout):
    """z-direction tendencies: adds metric terms and a source exponential."""
    for f in range(4):
        acc0 = 0.0
        acc1 = 0.0
        acc2 = 0.0
        acc3 = 0.0
        for s in range(12):
            q = state[f, s, gid]
            r = flux[f, s, gid]
            acc0 += q * 0.25
            acc0 += r * 0.5
            acc1 += q * 0.75
            acc1 += r * 1.5
            acc2 += q * 2.0
            acc2 += r * 0.125
            acc3 += q * 3.0
            acc3 += r * 0.375
        c0 = cell[f, gid]
        m = metric[f, gid]
        h = acc0 - acc1
        v = acc2 - acc3
        tt = h + v
        sx = exp(c0)
        tt = tt + m * 0.5
        tt = tt + sx * 0.25
        tt = tt + c0
        tend[f, gid] = tt
        srcout[f, gid] = sx


@device_kernel(locality=0.20)
def mw_semi_discrete_step(gid, fluxm, fluxp, init, out):
    """Semi-discrete state update: blended flux pairs plus a positivity clamp."""
    for f in range(4):
        acc = 0.0
        for s in range(7):
            q = fluxm[f, s, gid]
            r = fluxp[f, s, gid]
            acc += q * r
        i0 = init[f, gid]
        tt = acc + i0
        tt = tt * 0.5
        tt = tt + acc
        m = max(tt, 0.0)
        out[f, gid] = m


# -------------------------------------------------------- cloverleaf kernels


@device_kernel(locality=0.30)
def clover_ideal_gas(gid, density, energy, volume, mass, pressure, soundspeed):
    """Ideal-gas EoS with the generalized sound-speed response chain."""
    for f in range(4):
        d = density[f, gid]
        e = energy[f, gid]
        vol = volume[f, gid]
        m = mass[f, gid]
        rv = m / vol
        p = 0.4 * d
        p = p * e
        pbyrho = p / d
        cc = 1.4 * pbyrho
        c = sqrt(cc)
        dv = 1.0 / rv
        iv = 1.0 / vol
        q = e + pbyrho
        h = q + cc * 0.5
        z = h * d
        w = z + p
        r1 = w * dv
        r2 = r1 + c
        ss = sqrt(r2)
        t1 = ss * 0.5
        t2 = t1 + q
        u1 = t2 * 1.5
        u2 = u1 + h
        x1 = u2 * 0.25
        x2 = x1 + w
        y1 = x2 * iv
        y2 = y1 + c
        z1 = y2 * 0.75
        z2 = z1 + r2
        a1 = z2 * 1.25
        a2 = a1 + t2
        b1 = a2 * 0.5
        b2 = b1 * rv
        pressure[f, gid] = p
        soundspeed[f, gid] = b2


@device_kernel(locality=0.25)
def clover_flux_calc(gid, xarea, xvel0, xvel1, yarea, yvel0, yvel1,
                     cellx, celly, vol_flux_x, vol_flux_y):
    """Volume fluxes from face areas and the two velocity time levels."""
    for f in range(4):
        xa = xarea[f, gid]
        xv0 = xvel0[f, gid]
        xv1 = xvel1[f, gid]
        ya = yarea[f, gid]
        yv0 = yvel0[f, gid]
        yv1 = yvel1[f, gid]
        cx = cellx[f, gid]
        cy = celly[f, gid]
        sx = xv0 + xv1
        fx = xa * sx
        fx = fx * 0.25
        sy = yv0 + yv1
        fy = ya * sy
        fy = fy * 0.25
        dxf = fx + cx
        dyf = fy + cy
        m1 = dxf * 0.5
        m2 = dyf * 0.5
        a1 = m1 + fy
        a2 = m2 + fx
        b1 = a1 * 1.5
        b2 = a2 * 1.5
        c1 = b1 + dyf
        c2 = b2 + dxf
        d1 = c1 * 0.25
        d2 = c2 * 0.25
        e1 = d1 + a2
        e2 = d2 + a1
        vol_flux_x[f, gid] = e1
        vol_flux_y[f, gid] = e2


#: All source-backed kernels, keyed by the app-facing kernel name.
KERNELS: dict[str, DeviceKernel] = {
    dk.name: dk
    for dk in (
        vec_add, dram, sf, arith, scalar_prod, median, gemm, sobel3,
        black_scholes, mw_tendencies_x, mw_tendencies_z,
        mw_semi_discrete_step, clover_ideal_gas, clover_flux_calc,
    )
}


def backed_kernel_ir(
    name: str,
    declared: InstructionMix,
    work_items: int,
    locality: float,
) -> KernelIR:
    """Build a kernel's IR through the front end, cross-checked exactly.

    The returned IR is physically identical to the hand-declared one
    (same mix, geometry and locality — so sweep-cache fingerprints and
    golden traces are unchanged), but its mix now *comes from* static
    analysis of kernel source. Any drift between source and declaration
    raises :class:`ConfigurationError` at import time.
    """
    dk = KERNELS.get(name)
    if dk is None:
        raise ConfigurationError(f"no source-backed kernel named {name!r}")
    ir = dk.kernel_ir(work_items=work_items)
    if ir.mix != declared:
        extracted = {k: v for k, v in ir.mix.as_dict().items()}
        want = {k: v for k, v in declared.as_dict().items()}
        diff = {
            k: (extracted[k], want[k])
            for k in want
            if extracted[k] != want[k]
        }
        raise ConfigurationError(
            f"kernel {name!r}: extracted mix diverges from declared mix "
            f"(extracted, declared) per class: {diff}"
        )
    if ir.locality != locality:
        raise ConfigurationError(
            f"kernel {name!r}: front-end locality {ir.locality!r} != "
            f"declared {locality!r} (pin it via @device_kernel(locality=...))"
        )
    return ir
