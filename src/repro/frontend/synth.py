"""Synthesize device-Python source realizing a declared instruction mix.

The inverse direction of the front end, used by the property-based
round-trip test: given an :class:`InstructionMix` with integer counts,
emit a kernel whose static analysis extracts *exactly* that mix. One
statement per operation keeps the mapping trivially auditable — the
front end performs no CSE or folding of non-literal expressions, so each
emitted binary operation, intrinsic call and subscript contributes
exactly one count.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.kernelir.instructions import InstructionMix

#: One statement template per Table-1 class; each extracts exactly one
#: count of its class (and nothing else).
_TEMPLATES: dict[str, str] = {
    "int_add": "s{n} = 1 + 2",
    "int_mul": "s{n} = 3 * 5",
    "int_div": "s{n} = 7 // 2",
    "int_bw": "s{n} = 6 ^ 3",
    "float_add": "s{n} = 1.5 + 2.5",
    "float_mul": "s{n} = 1.5 * 2.5",
    "float_div": "s{n} = 1.5 / 2.5",
    "sf": "s{n} = sqrt(2.5)",
    "gl_access": "s{n} = a[gid]",
    "loc_access": "s{n} = tile[lid]",
}


def source_for_mix(mix: InstructionMix, *, name: str = "synth_kernel") -> str:
    """Emit kernel source whose extracted mix equals ``mix`` exactly.

    Counts must be non-negative integers (the synthesizer emits whole
    statements); fractional declared mixes have no source realization.
    """
    counts = mix.as_dict()
    for cls, value in counts.items():
        if value != int(value):
            raise ValidationError(
                f"cannot synthesize fractional count {cls}={value!r}"
            )
    lines = [f"def {name}(gid, lid: i32, a: global_f32):"]
    body: list[str] = []
    if counts["loc_access"]:
        body.append("tile = local(f32, 16)")
    n = 0
    for cls, template in _TEMPLATES.items():
        for _ in range(int(counts[cls])):
            body.append(template.format(n=n))
            n += 1
    if not body:
        body.append("pass")
    lines.extend(f"    {stmt}" for stmt in body)
    return "\n".join(lines) + "\n"
