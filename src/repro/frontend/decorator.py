"""``@device_kernel`` — the entry point of the §6.1 front-end pass.

Decorating a restricted device-Python function captures its source,
parses it, and (lazily, on first use) runs the full static analysis:
lowering + type inference (:mod:`repro.frontend.lowering`), Table-1
counting (:func:`repro.frontend.cfg.count_region`) and the stride/reuse
locality analysis (:mod:`repro.frontend.locality`). The result is
everything :class:`~repro.kernelir.kernel.KernelIR` needs, so a decorated
function slots straight into ``SynergyCompiler`` and the sweep→train→
predict pipeline without a hand-declared :class:`InstructionMix`.

Usage::

    @device_kernel
    def vec_add(gid, a, b, c):
        c[gid] = a[gid] + b[gid]

    ir = vec_add.kernel_ir(work_items=1 << 24)

``locality=...`` pins the DRAM-reuse fraction when the paper's calibrated
value is known (the analysis estimate is still computed and reported by
``repro-synergy analyze``); ``constants=...`` provides compile-time values
for scalar parameters so ``range`` bounds fold.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, overload

from repro.common.errors import ValidationError
from repro.frontend.cfg import KernelCFG, count_region
from repro.frontend.diagnostics import Diagnostic, DiagnosticSink, FrontendError
from repro.frontend.locality import LocalityEstimate, estimate_locality
from repro.frontend.lowering import lower_kernel
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import HostFunction, KernelIR


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the front-end pass derives from one kernel source.

    ``diagnostics`` are *lowering* findings (FE001–FE010): the kernel is
    outside the countable subset and must not reach the scheduler.
    ``races`` are the deeper FE011–FE013 findings of the
    :mod:`repro.analysis.footprints` pass — provable cross-work-item
    races and out-of-bounds accesses. They are kept separate because the
    instruction mix and locality are still exact for a racy kernel:
    lowering succeeded, so ``kernel_ir`` stays available while
    ``repro-synergy analyze`` surfaces both sets.
    """

    name: str
    cfg: KernelCFG
    mix: InstructionMix
    locality_estimate: LocalityEstimate
    diagnostics: tuple[Diagnostic, ...]
    races: tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def clean(self) -> bool:
        """No findings of any kind — lowering or race/bounds."""
        return not self.diagnostics and not self.races


def _function_def(src: str, fn_name: str | None = None) -> ast.FunctionDef:
    """Parse kernel source and pull out the (single) function definition."""
    tree = ast.parse(textwrap.dedent(src))
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if fn_name is not None:
        fns = [n for n in fns if n.name == fn_name]
    if len(fns) != 1:
        raise ValidationError(
            "kernel source must contain exactly one function definition"
            + (f" named {fn_name!r}" if fn_name else "")
            + f" (found {len(fns)})"
        )
    return fns[0]


def _shift(
    diags: tuple[Diagnostic, ...], line_offset: int, col_offset: int
) -> tuple[Diagnostic, ...]:
    """Translate snippet-relative locations into file coordinates."""
    if not line_offset and not col_offset:
        return diags
    return tuple(
        Diagnostic(
            code=d.code,
            message=d.message,
            line=d.line + line_offset,
            col=d.col + col_offset,
            kernel=d.kernel,
        )
        for d in diags
    )


def analyze_source(
    src: str,
    *,
    name: str | None = None,
    fn_name: str | None = None,
    constants: dict[str, int | float] | None = None,
    line_offset: int = 0,
    col_offset: int = 0,
) -> AnalysisResult:
    """Run the complete front-end pass over kernel source text.

    ``line_offset``/``col_offset`` translate diagnostic locations from
    snippet coordinates (line 1 = first source line, columns after any
    dedent) back into the enclosing file's coordinates — callers that
    extracted the source from a larger file pass the function's start
    line minus one and the stripped indent width. The shift applies to
    every reported location, including ones anchored inside multi-line
    statements.
    """
    fn = _function_def(src, fn_name)
    kernel_name = name or fn.name
    cfg, sink = lower_kernel(fn, name=kernel_name, constants=constants)
    mix = count_region(cfg.body)
    estimate = estimate_locality(cfg.body)
    races: tuple[Diagnostic, ...] = ()
    if not sink.has_errors:
        # The race/bounds pass needs a fully-lowered CFG; a kernel outside
        # the subset already fails hard on its lowering diagnostics.
        from repro.analysis.footprints import analyze_kernel_cfg

        races = analyze_kernel_cfg(cfg)
    return AnalysisResult(
        name=kernel_name,
        cfg=cfg,
        mix=mix,
        locality_estimate=estimate,
        diagnostics=_shift(sink.as_tuple(), line_offset, col_offset),
        races=_shift(races, line_offset, col_offset),
    )


class DeviceKernel:
    """A decorated device function plus its (lazily computed) analysis.

    Instances stay callable — the wrapped Python function is untouched, so
    tests and host-side golden implementations can still execute it.
    """

    def __init__(
        self,
        fn: Callable,
        *,
        name: str | None = None,
        locality: float | None = None,
        word_bytes: int = 4,
        constants: dict[str, int | float] | None = None,
    ) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.pinned_locality = locality
        self.word_bytes = word_bytes
        self.constants = dict(constants or {})
        self.__doc__ = fn.__doc__
        self.__name__ = self.name
        self._analysis: AnalysisResult | None = None

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)

    def __repr__(self) -> str:
        return f"DeviceKernel({self.name!r})"

    @property
    def analysis(self) -> AnalysisResult:
        """The front-end pass output (computed once, cached)."""
        if self._analysis is None:
            try:
                lines, start_line = inspect.getsourcelines(self.fn)
            except (OSError, TypeError) as exc:
                raise ValidationError(
                    f"cannot recover source for kernel {self.name!r} "
                    "(interactively-defined kernels must go through "
                    "analyze_source with explicit source text)"
                ) from exc
            raw = "".join(lines)
            src = textwrap.dedent(raw)
            # Diagnostics come back in snippet coordinates; translate to
            # the defining file's (line from getsourcelines, column from
            # the indent dedent stripped).
            indent = 0
            for before, after in zip(
                raw.splitlines(), src.splitlines()
            ):
                if after.strip():
                    indent = len(before) - len(after)
                    break
            self._analysis = analyze_source(
                src,
                name=self.name,
                fn_name=self.fn.__name__,
                constants=self.constants,
                line_offset=start_line - 1,
                col_offset=indent,
            )
        return self._analysis

    @property
    def mix(self) -> InstructionMix:
        """Extracted Table-1 static per-work-item instruction counts."""
        return self.analysis.mix

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return self.analysis.diagnostics

    @property
    def races(self) -> tuple[Diagnostic, ...]:
        """FE011–FE013 findings of the race/bounds pass."""
        return self.analysis.races

    @property
    def locality_estimate(self) -> LocalityEstimate:
        """The stride/reuse analysis result (even when a pin overrides it)."""
        return self.analysis.locality_estimate

    @property
    def locality(self) -> float:
        """Locality used for the IR: the pin if given, else the estimate."""
        if self.pinned_locality is not None:
            return self.pinned_locality
        return self.locality_estimate.value

    def kernel_ir(
        self,
        work_items: int,
        *,
        host_fn: HostFunction | None = None,
    ) -> KernelIR:
        """Emit the :class:`KernelIR` the rest of the stack consumes.

        Raises :class:`FrontendError` if the kernel produced diagnostics —
        an uncountable kernel must never reach the scheduler with a wrong
        feature vector.
        """
        analysis = self.analysis
        if analysis.diagnostics:
            raise FrontendError(self.name, analysis.diagnostics)
        return KernelIR(
            name=self.name,
            mix=analysis.mix,
            work_items=work_items,
            word_bytes=self.word_bytes,
            locality=self.locality,
            host_fn=host_fn,
        )


@overload
def device_kernel(fn: Callable) -> DeviceKernel: ...


@overload
def device_kernel(
    *,
    name: str | None = ...,
    locality: float | None = ...,
    word_bytes: int = ...,
    constants: dict[str, int | float] | None = ...,
) -> Callable[[Callable], DeviceKernel]: ...


def device_kernel(
    fn: Callable | None = None,
    *,
    name: str | None = None,
    locality: float | None = None,
    word_bytes: int = 4,
    constants: dict[str, int | float] | None = None,
):
    """Mark a function as a device kernel (usable bare or with options)."""
    def wrap(f: Callable) -> DeviceKernel:
        return DeviceKernel(
            f,
            name=name,
            locality=locality,
            word_bytes=word_bytes,
            constants=constants,
        )

    if fn is not None:
        return wrap(fn)
    return wrap
