"""Static-analysis front end for device-Python kernels (paper §6.1).

Reconstructs the paper's compiler pass: kernels written in a restricted
Python subset are lowered into a typed CFG, every operation is classified
into its Table-1 instruction class with loop-trip-count multiplication,
and a stride/reuse analysis estimates ``locality`` — producing the
:class:`~repro.kernelir.kernel.KernelIR` the rest of the stack consumes
without hand-declared counts. See ``docs/FRONTEND.md``.
"""

from repro.frontend.cfg import KernelCFG, count_region
from repro.frontend.decorator import (
    AnalysisResult,
    DeviceKernel,
    analyze_source,
    device_kernel,
)
from repro.frontend.diagnostics import (
    ALL_CODES,
    Diagnostic,
    DiagnosticSink,
    FrontendError,
)
from repro.frontend.locality import LocalityEstimate, estimate_locality
from repro.frontend.lowering import lower_kernel
from repro.frontend.synth import source_for_mix

__all__ = [
    "ALL_CODES",
    "AnalysisResult",
    "DeviceKernel",
    "Diagnostic",
    "DiagnosticSink",
    "FrontendError",
    "KernelCFG",
    "LocalityEstimate",
    "analyze_source",
    "count_region",
    "device_kernel",
    "estimate_locality",
    "lower_kernel",
    "source_for_mix",
]
