"""Located diagnostics for the device-Python front end (paper §6.1).

The paper's compiler pass runs over SYCL kernels inside a full LLVM
toolchain, so malformed kernels fail loudly at build time. Our restricted
device-Python subset gets the same contract: every construct the analysis
cannot count *exactly* produces a :class:`Diagnostic` with a stable code
and a source location, instead of a silently wrong instruction mix.

Catalogue (see ``docs/FRONTEND.md`` for the narrative version):

========  ==================================================================
code      meaning
========  ==================================================================
FE001     unsupported statement (``while``, ``if``, ``try``, ``with``, ...)
FE002     dynamic loop bound (``range`` argument not a compile-time int)
FE003     call to an unknown function (covers recursion: kernels cannot
          call themselves or any non-intrinsic)
FE004     unsupported expression (comparisons, boolean logic, lambdas, ...)
FE005     array aliasing (binding an array to a second name)
FE006     type error (unknown name, float subscript index, bitwise op on
          floats, ...)
FE007     malformed loop (non-``range`` iterable, zero step, ``else:``)
FE008     unsupported assignment target (tuple unpacking, starred,
          chained targets, attribute stores)
FE009     bad kernel signature (missing work-item id, unknown annotation)
FE010     value returned from a device kernel
FE011     cross-work-item write/write race (two work items provably store
          to the same element; reported by the ``repro.analysis`` race
          pass, not by lowering)
FE012     cross-work-item read/write race (one work item provably reads
          an element another stores, with no ordering barrier between)
FE013     statically-provable out-of-bounds access (negative index, or a
          local-array index at or beyond the declared size)
========  ==================================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.common.errors import ValidationError

#: Stable diagnostic codes, keyed to the catalogue above.
UNSUPPORTED_STATEMENT = "FE001"
DYNAMIC_LOOP_BOUND = "FE002"
UNKNOWN_CALL = "FE003"
UNSUPPORTED_EXPRESSION = "FE004"
ARRAY_ALIASING = "FE005"
TYPE_ERROR = "FE006"
MALFORMED_LOOP = "FE007"
BAD_ASSIGNMENT_TARGET = "FE008"
BAD_SIGNATURE = "FE009"
RETURN_VALUE = "FE010"
WRITE_WRITE_RACE = "FE011"
READ_WRITE_RACE = "FE012"
OUT_OF_BOUNDS = "FE013"

#: All known codes (used by tests and the ``analyze`` JSON export).
ALL_CODES: tuple[str, ...] = (
    UNSUPPORTED_STATEMENT,
    DYNAMIC_LOOP_BOUND,
    UNKNOWN_CALL,
    UNSUPPORTED_EXPRESSION,
    ARRAY_ALIASING,
    TYPE_ERROR,
    MALFORMED_LOOP,
    BAD_ASSIGNMENT_TARGET,
    BAD_SIGNATURE,
    RETURN_VALUE,
    WRITE_WRITE_RACE,
    READ_WRITE_RACE,
    OUT_OF_BOUNDS,
)


@dataclass(frozen=True)
class Diagnostic:
    """One front-end finding, anchored to a kernel source location."""

    code: str
    message: str
    line: int
    col: int
    kernel: str = ""

    def format(self) -> str:
        """``kernel:line:col: CODE message`` (the compiler-style line)."""
        where = f"{self.kernel or '<kernel>'}:{self.line}:{self.col}"
        return f"{where}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "kernel": self.kernel,
        }


class DiagnosticSink:
    """Collects diagnostics during one lowering pass."""

    def __init__(self, kernel: str = "") -> None:
        self.kernel = kernel
        self.diagnostics: list[Diagnostic] = []

    def report(self, node: ast.AST | None, code: str, message: str) -> None:
        """Record one finding, anchored to ``node``'s source location."""
        line = getattr(node, "lineno", 0) or 0
        col = getattr(node, "col_offset", 0) or 0
        self.diagnostics.append(
            Diagnostic(code=code, message=message, line=line, col=col,
                       kernel=self.kernel)
        )

    @property
    def has_errors(self) -> bool:
        return bool(self.diagnostics)

    def as_tuple(self) -> tuple[Diagnostic, ...]:
        return tuple(self.diagnostics)


class FrontendError(ValidationError):
    """A kernel failed the front-end pass; carries its diagnostics."""

    def __init__(self, kernel: str, diagnostics: tuple[Diagnostic, ...]) -> None:
        self.kernel = kernel
        self.diagnostics = diagnostics
        lines = "\n".join(d.format() for d in diagnostics)
        super().__init__(
            f"kernel {kernel!r} uses constructs outside the device-Python "
            f"subset ({len(diagnostics)} diagnostics):\n{lines}"
        )
