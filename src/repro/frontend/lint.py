"""Repo-wide determinism linter (AST pass over ``src/repro``).

The reproduction's contract is bit-stable output: golden traces, sweep
caches and validation reports must not depend on wall-clock time or
process-global RNG state. This linter enforces that statically:

========  ============================================================
rule      meaning
========  ============================================================
ND001     wall-clock read (``time.time``, ``time.time_ns``,
          ``datetime.now``/``utcnow``/``today``) — virtual time and
          seeded simulation only; ``time.perf_counter`` stays legal for
          *measuring* durations in the perf harness
ND002     process-global ``random.*`` call — use a seeded
          ``random.Random(seed)`` instance
ND003     ``numpy.random`` global-state call (``np.random.rand``,
          ``np.random.seed``, ...) — use ``numpy.random.default_rng``
          / ``Generator`` / ``SeedSequence``
ND004     ``==`` / ``!=`` against a nonzero float literal — compare
          with a tolerance; exact ``0.0`` sentinels remain legal
ND005     mutable default argument (``def f(x, acc=[])``) — the default
          is created once and shared across calls, so state leaks
          between invocations; default to ``None`` and allocate inside
========  ============================================================

Exposed as ``repro-synergy lint`` and wired into ``scripts/check.sh``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

WALLCLOCK_RULE = "ND001"
GLOBAL_RANDOM_RULE = "ND002"
NUMPY_RANDOM_RULE = "ND003"
FLOAT_EQ_RULE = "ND004"
MUTABLE_DEFAULT_RULE = "ND005"

#: AST node types whose evaluation as a default produces a fresh mutable
#: object — shared for the function's whole lifetime.
_MUTABLE_DEFAULT_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Builtin constructors whose call as a default is the same trap as a
#: literal (``def f(seen=set())``); ``frozenset``/``tuple`` stay legal.
_MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Fully-qualified callables that read the wall clock.
_BANNED_WALLCLOCK: frozenset[str] = frozenset({
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``numpy.random`` attributes that do NOT touch the global RNG state.
_NUMPY_RANDOM_OK: frozenset[str] = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "Philox",
})


@dataclass(frozen=True)
class LintViolation:
    """One determinism finding, anchored to a file location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: list[LintViolation] = []
        #: local name -> canonical dotted module/attribute path
        self.aliases: dict[str, str] = {}

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- resolution

    def _dotted(self, node: ast.expr) -> str | None:
        """``a.b.c`` as a canonical dotted string, aliases resolved."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    # ---------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted in _BANNED_WALLCLOCK:
            self._report(
                node, WALLCLOCK_RULE,
                f"wall-clock read {dotted}() breaks bit-stable replay; use "
                "the virtual clock (repro.obs) or pass timestamps in",
            )
            return
        parts = dotted.split(".")
        if (
            parts[0] == "random"
            and len(parts) == 2
            and parts[1] not in ("Random", "SystemRandom")
        ):
            self._report(
                node, GLOBAL_RANDOM_RULE,
                f"process-global {dotted}() call; use a seeded "
                "random.Random(seed) instance",
            )
            return
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RANDOM_OK
        ):
            self._report(
                node, NUMPY_RANDOM_RULE,
                f"numpy global-RNG call {dotted}(); use "
                "numpy.random.default_rng(seed)",
            )

    # ------------------------------------------------------------- defaults

    def _check_defaults(self, node) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_DEFAULT_NODES):
                kind = type(default).__name__.lower().replace("comp", " comprehension")
                self._report(
                    default, MUTABLE_DEFAULT_RULE,
                    f"mutable default argument ({kind} literal) is shared "
                    "across calls; default to None and allocate in the body",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and self.aliases.get(default.func.id, default.func.id)
                in _MUTABLE_DEFAULT_CALLS
            ):
                self._report(
                    default, MUTABLE_DEFAULT_RULE,
                    f"mutable default argument ({default.func.id}() call) is "
                    "shared across calls; default to None and allocate in "
                    "the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ---------------------------------------------------------- comparisons

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (lhs, rhs):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value != 0.0
                ):
                    self._report(
                        side, FLOAT_EQ_RULE,
                        f"exact equality against float literal "
                        f"{side.value!r}; compare with a tolerance "
                        "(math.isclose / pytest.approx)",
                    )
        self.generic_visit(node)

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=getattr(node, "lineno", 0) or 0,
                col=getattr(node, "col_offset", 0) or 0,
                rule=rule,
                message=message,
            )
        )


def lint_source(source: str, path: str = "<source>") -> list[LintViolation]:
    """Lint one unit of Python source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="ND000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    linter = _Linter(path)
    linter.visit(tree)
    return sorted(linter.violations, key=lambda v: (v.line, v.col, v.rule))


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Iterable[str | Path]) -> list[LintViolation]:
    """Lint every ``*.py`` file under the given files/directories."""
    violations: list[LintViolation] = []
    for path in _iter_py_files(Path(p) for p in paths):
        violations.extend(lint_source(path.read_text(), str(path)))
    return violations


def default_lint_root() -> Path:
    """``src/repro`` resolved from the installed package location."""
    return Path(__file__).resolve().parent.parent
