"""Stride/reuse analysis over subscript patterns → ``locality`` estimate.

:class:`~repro.kernelir.kernel.KernelIR.locality` is the fraction of a
kernel's global accesses served by on-chip storage instead of DRAM; the
paper's toolchain obtains it from the compiler's caching analysis. This
module reconstructs that analysis over the affine access patterns the
lowering recorded:

- **temporal reuse** — a static access whose affine index repeats an
  earlier access's index exactly re-touches a resident line; every dynamic
  instance after the first group member is a hit. An index that is
  *invariant* in an enclosing counted loop is the loop-carried special
  case: of its ``T`` dynamic instances, ``T - 1`` hit.
- **spatial (stencil) reuse** — an access whose index differs from an
  earlier same-shape access only by a constant offset within the cache
  window (``REUSE_WINDOW_WORDS``, last subscript dimension) lands on a
  line a neighbouring access already pulled in; all its instances hit.
  Work-item coalescing (a bare ``gid`` stride) is *not* reuse: adjacent
  work-items consume adjacent words once, so DRAM traffic is unchanged.
- everything else — streaming/opaque: misses.

``estimate = hits / total dynamic accesses`` (local-memory accesses are
excluded on both sides: local arrays are on-chip by definition). The first
member of every reuse group misses, so the estimate is always < 1, which
matches the ``locality ∈ [0, 1)`` contract of :class:`KernelIR`.

The estimator is deliberately *architectural*, not microarchitectural: it
knows nothing about associativity or replacement. Kernels whose measured
locality the paper calibrated (tiled GEMM, the Sobel family, ...) pin the
value through ``@device_kernel(locality=...)``; the estimate is still
computed and reported by ``repro-synergy analyze`` so the two can be
compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.cfg import Access, AffineIndex, Region, Space, iter_accesses

#: Words per cache line assumed by the spatial-reuse rule (32 B / fp32).
REUSE_WINDOW_WORDS: int = 8


@dataclass(frozen=True)
class LocalityEstimate:
    """Outcome of the reuse analysis for one kernel."""

    hits: float
    total: float
    #: Per-array hit/total breakdown, for ``analyze`` reporting.
    by_array: tuple[tuple[str, float, float], ...] = ()

    @property
    def value(self) -> float:
        """The locality fraction in ``[0, 1)``; 0.0 for access-free kernels."""
        if self.total <= 0:
            return 0.0
        return self.hits / self.total


def _loop_invariant_trips(
    index: tuple[AffineIndex, ...], loops: tuple[tuple[str, int], ...]
) -> int:
    """Product of trip counts of enclosing loops the index does not use."""
    used = {name for dim in index for name, _ in dim.coeffs}
    trips = 1
    for var, trip in loops:
        if var not in used and trip > 1:
            trips *= trip
    return trips


def _spatial_neighbor(
    index: tuple[AffineIndex, ...],
    seen: list[tuple[AffineIndex, ...]],
    window: int,
) -> bool:
    for other in seen:
        if len(other) != len(index):
            continue
        if any(not a.same_shape(b) for a, b in zip(index, other)):
            continue
        if any(a.const != b.const for a, b in zip(index[:-1], other[:-1])):
            continue
        if abs(index[-1].const - other[-1].const) <= window:
            return True
    return False


def estimate_locality(
    region: Region, *, window: int = REUSE_WINDOW_WORDS
) -> LocalityEstimate:
    """Run the reuse analysis over a lowered kernel body."""
    per_array: dict[str, list[float]] = {}
    seen_indices: dict[str, list[tuple[AffineIndex, ...]]] = {}
    for access, weight, loops in iter_accesses(region):
        if access.space is not Space.GLOBAL:
            continue
        stats = per_array.setdefault(access.array, [0.0, 0.0])
        stats[1] += weight
        hits = _classify(access, weight, loops, seen_indices, window)
        stats[0] += hits
    total = sum(s[1] for s in per_array.values())
    hit_count = sum(s[0] for s in per_array.values())
    return LocalityEstimate(
        hits=hit_count,
        total=total,
        by_array=tuple(
            (name, s[0], s[1]) for name, s in sorted(per_array.items())
        ),
    )


def _classify(
    access: Access,
    weight: float,
    loops: tuple[tuple[str, int], ...],
    seen_indices: dict[str, list[tuple[AffineIndex, ...]]],
    window: int,
) -> float:
    """Dynamic hit count contributed by one static access."""
    if access.index is None:
        return 0.0  # opaque subscript: assume it streams
    seen = seen_indices.setdefault(access.array, [])
    hits = 0.0
    if access.index in seen:
        # Exact temporal repeat of an earlier static access: every dynamic
        # instance lands on a resident line.
        hits = weight
    elif _spatial_neighbor(access.index, seen, window):
        # Stencil neighbour within the cache window: the line is resident.
        hits = weight
    else:
        # First touch of this pattern. If the index ignores enclosing
        # loops, iterations after the first re-touch the same address.
        invariant_trips = _loop_invariant_trips(access.index, loops)
        if invariant_trips > 1:
            hits = weight * (invariant_trips - 1) / invariant_trips
    seen.append(access.index)
    return hits
