"""The typed kernel CFG the front end lowers device-Python into.

The shape mirrors what the paper's LLVM pass sees after loop analysis: a
structured region of straight-line :class:`Block` s and statically-bounded
:class:`CountedLoop` s. Every operation has already been classified into
one of the ten Table-1 instruction classes during lowering, so the static
count walk (:func:`count_region`) is a pure trip-count-weighted fold, and
the stride/reuse analysis reads the recorded :class:`Access` patterns
without touching the AST again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.kernelir.instructions import InstructionMix

# ------------------------------------------------------------------- types


class Scalar(enum.Enum):
    """Inferred scalar type of an expression."""

    INT = "i32"
    FLOAT = "f32"


class Space(enum.Enum):
    """Memory space of an array parameter (Table-1 access classes)."""

    GLOBAL = "global"
    LOCAL = "local"


@dataclass(frozen=True)
class ArrayType:
    """An array parameter: memory space plus element type.

    ``size`` is the statically-declared element count when known — local
    arrays carry the ``local(f32, SIZE)`` literal so the out-of-bounds
    pass (FE013) can check provable overruns; parameter arrays have no
    declared extent and stay ``None``.
    """

    space: Space
    elem: Scalar
    size: int | None = None

    def __str__(self) -> str:
        return f"{self.space.value}_{self.elem.value}"


# ------------------------------------------------------------- instructions

#: The ten Table-1 operation classes plus the access classes the memory
#: instructions resolve to. ``OpClass`` values match InstructionMix fields.
OP_CLASSES: tuple[str, ...] = (
    "int_add", "int_mul", "int_div", "int_bw",
    "float_add", "float_mul", "float_div", "sf",
    "gl_access", "loc_access",
)


@dataclass(frozen=True)
class AffineIndex:
    """One subscript dimension in affine form: ``sum(coeffs[v]*v) + const``.

    ``coeffs`` maps work-item/loop variable names to integer coefficients
    (sorted by name for stable equality). Multi-dimensional subscripts
    (``a[gid, k]``) record one :class:`AffineIndex` per dimension. A
    non-affine dimension makes the whole access opaque (``index=None``) —
    opaque accesses are never classified as reuse hits.
    """

    coeffs: tuple[tuple[str, int], ...]
    const: int

    def same_shape(self, other: "AffineIndex") -> bool:
        """Same variable part — candidates for spatial/temporal reuse."""
        return self.coeffs == other.coeffs


@dataclass(frozen=True)
class Op:
    """One classified arithmetic/special-function operation."""

    cls: str  # one of the eight compute classes
    line: int
    col: int


@dataclass(frozen=True)
class Access:
    """One static memory access (load or store).

    ``phase`` counts the ``barrier()`` calls lowered before this access:
    two local-memory accesses in different phases are ordered by the
    work-group barrier between them and can never race (the suppression
    rule of the FE011/FE012 race pass).
    """

    array: str
    space: Space
    is_store: bool
    index: tuple[AffineIndex, ...] | None  # None = opaque subscript
    line: int
    col: int
    phase: int = 0

    @property
    def cls(self) -> str:
        return "gl_access" if self.space is Space.GLOBAL else "loc_access"


# ------------------------------------------------------------------ regions


@dataclass
class Block:
    """Straight-line run of classified ops and accesses, in program order."""

    ops: list[Op] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)


@dataclass
class CountedLoop:
    """A statically-bounded counted loop (``for v in range(...)``).

    ``start``/``step`` record the folded ``range`` parameters so the
    footprint analysis can enumerate the loop variable's concrete value
    set (``start, start+step, ...`` for ``trip_count`` values); the
    Table-1 count walk only ever uses ``trip_count``.
    """

    var: str
    trip_count: int
    body: "Region"
    line: int = 0
    start: int = 0
    step: int = 1

    def values(self) -> range:
        """The loop variable's concrete value sequence."""
        return range(self.start, self.start + self.step * self.trip_count,
                     self.step) if self.step else range(0)


@dataclass
class Region:
    """Ordered sequence of blocks and nested counted loops."""

    items: list[Block | CountedLoop] = field(default_factory=list)

    def tail_block(self) -> Block:
        """The open block at the end of the region (created on demand)."""
        if not self.items or not isinstance(self.items[-1], Block):
            self.items.append(Block())
        return self.items[-1]  # type: ignore[return-value]


@dataclass
class KernelCFG:
    """The lowered kernel: parameters plus its structured body region."""

    name: str
    params: dict[str, ArrayType | Scalar]
    body: Region


# ----------------------------------------------------------------- counting


def count_region(region: Region) -> InstructionMix:
    """Fold a region into per-work-item static counts (Table 1).

    Counts inside a :class:`CountedLoop` are multiplied by its trip count;
    nesting multiplies multiplicities, exactly the loop-trip resolution the
    paper's pass performs before emitting the feature vector.
    """
    counts = dict.fromkeys(InstructionMix().as_dict(), 0)
    _accumulate(region, 1, counts)
    return InstructionMix(**counts)


def _accumulate(region: Region, weight: int, counts: dict[str, float]) -> None:
    for item in region.items:
        if isinstance(item, Block):
            for op in item.ops:
                counts[op.cls] += weight
            for acc in item.accesses:
                counts[acc.cls] += weight
        else:
            _accumulate(item.body, weight * item.trip_count, counts)


def iter_accesses(region: Region, weight: int = 1):
    """Yield ``(access, dynamic_weight, loop_vars)`` over a region.

    ``dynamic_weight`` is the product of enclosing trip counts;
    ``loop_vars`` the tuple of enclosing loop variables with their trip
    counts, innermost last — the locality analysis needs both to reason
    about loop-invariant reuse.
    """
    yield from _iter_accesses(region, weight, ())


def _iter_accesses(region: Region, weight: int, loops: tuple):
    for item in region.items:
        if isinstance(item, Block):
            for acc in item.accesses:
                yield acc, weight, loops
        else:
            yield from _iter_accesses(
                item.body, weight * item.trip_count,
                loops + ((item.var, item.trip_count),),
            )
