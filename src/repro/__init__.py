"""SYnergy reproduction: fine-grained energy-efficient heterogeneous computing.

A full-stack, simulation-backed reproduction of *SYnergy: Fine-grained
Energy-Efficient Heterogeneous Computing for Scalable Energy Saving*
(Fan et al., SC '23): the ``synergy::queue`` energy API over a mini-SYCL
runtime, compiler feature extraction + ML frequency prediction, and a SLURM
``nvgpufreq`` plugin — all running against analytic NVIDIA V100 / A100 and
AMD MI100 DVFS models in deterministic virtual time.

Quickstart::

    from repro import (
        SynergyQueue, SimulatedGPU, NVIDIA_V100, set_default_device,
        gpu_selector_v, KernelIR, InstructionMix, MIN_EDP,
    )

    gpu = SimulatedGPU(NVIDIA_V100)
    set_default_device(gpu)
    q = SynergyQueue(gpu_selector_v)
    k = KernelIR("saxpy", InstructionMix(float_add=1, float_mul=1,
                                         gl_access=3), work_items=1 << 24)
    e = q.submit(lambda h: h.parallel_for(k.work_items, k))
    e.wait_and_throw()
    print(q.kernel_energy_consumption(e), "J")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-reproduction results.
"""

from repro.core import (
    CompiledApplication,
    EnergyModelBundle,
    FrequencyPlan,
    FrequencyPredictor,
    SynergyCompiler,
    SynergyQueue,
    build_training_set,
)
from repro.hw import (
    AMD_MI100,
    GPUSpec,
    NVIDIA_A100,
    NVIDIA_V100,
    SimulatedGPU,
    get_spec,
)
from repro.frontend import DeviceKernel, analyze_source, device_kernel
from repro.kernelir import InstructionMix, KernelIR, extract_features
from repro.metrics import (
    ES_25,
    ES_50,
    ES_75,
    ES_100,
    EnergyTarget,
    MAX_PERF,
    MIN_ED2P,
    MIN_EDP,
    MIN_ENERGY,
    PL_25,
    PL_50,
    PL_75,
)
from repro.sycl import (
    Buffer,
    gpu_selector_v,
    set_default_device,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hardware
    "GPUSpec",
    "NVIDIA_V100",
    "NVIDIA_A100",
    "AMD_MI100",
    "SimulatedGPU",
    "get_spec",
    # kernels
    "KernelIR",
    "InstructionMix",
    "extract_features",
    # §6.1 front end
    "device_kernel",
    "DeviceKernel",
    "analyze_source",
    # SYCL surface
    "Buffer",
    "gpu_selector_v",
    "set_default_device",
    # SYnergy core
    "SynergyQueue",
    "SynergyCompiler",
    "CompiledApplication",
    "FrequencyPlan",
    "FrequencyPredictor",
    "EnergyModelBundle",
    "build_training_set",
    # targets
    "EnergyTarget",
    "MAX_PERF",
    "MIN_ENERGY",
    "MIN_EDP",
    "MIN_ED2P",
    "ES_25",
    "ES_50",
    "ES_75",
    "ES_100",
    "PL_25",
    "PL_50",
    "PL_75",
]
