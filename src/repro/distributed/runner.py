"""Graph executors: the scalar reference path and the engine facade.

Two execution paths share the semantics of a :class:`CommandGraph`:

- :func:`run_graph_scalar` — the reference. One
  :class:`~repro.core.queue.SynergyQueue` per rank; every kernel node is
  a real per-event submission (explicit clocks from the global plan,
  redundancy-skipped switches with the §4.4 overhead, per-event energy
  records). Transfer nodes advance only the dependency frontier — halo
  traffic rides the network while the GPUs compute, which is exactly the
  communication/compute overlap the graph scheduler exists to expose.
- :func:`repro.engine.multirank.execute_graph_batched` — the vectorized
  path: the same recurrence evaluated wave-by-wave in NumPy, reusing the
  batched engine's memoized operating tables. Validated against the
  scalar path by ``repro-synergy validate --only distributed``.

:func:`run_graph` picks the batched path when its exactness
preconditions hold (no armed fault plane, no power caps, homogeneous
boards) and otherwise falls back to the scalar reference, mirroring
:func:`repro.engine.executor.execute_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import VirtualClock
from repro.common.errors import ValidationError
from repro.core.compiler import GlobalFrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.distributed.graph import GATHER, HALO, KERNEL, CommandGraph
from repro.hw.device import SimulatedGPU
from repro.hw.specs import GPUSpec
from repro.mpi.comm import SimulatedComm


def build_comm(
    spec: GPUSpec,
    n_ranks: int,
    *,
    ranks_per_node: int = 4,
    injector=None,
) -> SimulatedComm:
    """A bare communicator for graph runs: one board per rank.

    Each rank gets its own virtual clock (ranks progress independently
    between collectives); ranks pack onto nodes ``ranks_per_node`` at a
    time, which the network model prices (intra-node vs inter-node vs
    inter-group links).
    """
    if n_ranks <= 0:
        raise ValidationError(f"need at least one rank ({n_ranks})")
    if ranks_per_node <= 0:
        raise ValidationError(f"ranks_per_node must be positive ({ranks_per_node})")
    gpus = [
        SimulatedGPU(spec, clock=VirtualClock(), index=r) for r in range(n_ranks)
    ]
    node_of_rank = [r // ranks_per_node for r in range(n_ranks)]
    return SimulatedComm(gpus, node_of_rank, injector=injector)


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one graph execution, per node and per rank.

    ``start_s``/``finish_s`` are indexed by node id (for transfer nodes,
    ``start_s`` is the dependency-ready time — transfers never occupy the
    GPU). ``mode`` is the path that ran; ``fallback`` names the batched
    precondition that failed when the facade dropped to scalar.
    """

    mode: str
    fallback: str | None
    start_s: np.ndarray
    finish_s: np.ndarray
    rank_time_s: np.ndarray
    rank_energy_j: np.ndarray
    rank_switches: np.ndarray
    completion_s: float
    n_kernels: int
    n_transfers: int

    def __post_init__(self) -> None:
        for arr in (
            self.start_s, self.finish_s, self.rank_time_s,
            self.rank_energy_j, self.rank_switches,
        ):
            arr.setflags(write=False)

    @property
    def total_energy_j(self) -> float:
        """Whole-job compute energy across all ranks."""
        return float(self.rank_energy_j.sum())

    def summary(self) -> dict[str, float]:
        """Aggregate totals, keyed like the queue summaries."""
        return {
            "ranks": float(len(self.rank_time_s)),
            "kernels": float(self.n_kernels),
            "transfers": float(self.n_transfers),
            "completion_s": self.completion_s,
            "kernel_energy_j": self.total_energy_j,
            "clock_switches": float(self.rank_switches.sum()),
        }


def run_graph_scalar(
    graph: CommandGraph,
    comm: SimulatedComm,
    plan: GlobalFrequencyPlan,
    *,
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
) -> ExecutionResult:
    """Execute a graph through per-event SYnergy queues (the reference).

    Nodes run in id order (a topological order by construction). A kernel
    node waits for its dependency frontier, then submits with the global
    plan's clocks for its rank; the device timeline serializes rank-local
    work and charges switch overheads exactly as single-device runs do.
    Gather nodes poll the communicator's fault plane at their ready time,
    so rank/node failures surface out of collectives here too.
    """
    from repro.core.queue import SynergyQueue

    if comm.size != graph.n_ranks:
        raise ValidationError(
            f"graph spans {graph.n_ranks} ranks; communicator has {comm.size}"
        )
    queues = [
        SynergyQueue(gpu, switch_overhead_s=switch_overhead_s)
        for gpu in comm.gpus
    ]
    n = len(graph.nodes)
    start_s = np.zeros(n)
    finish_s = np.zeros(n)
    for node in graph.nodes:
        ready = 0.0
        for dep in node.deps:
            if finish_s[dep] > ready:
                ready = float(finish_s[dep])
        if node.kind == KERNEL:
            kernel = node.kernel
            assert kernel is not None
            gpu = comm.gpus[node.rank]
            if ready > gpu.clock.now:
                gpu.clock.advance_to(ready)
            mem, core = plan.clocks_for(node.rank, kernel.name)
            event = queues[node.rank].submit(
                mem, core, lambda h, k=kernel: h.parallel_for(k.work_items, k)
            )
            start_s[node.nid] = event.start_s
            finish_s[node.nid] = event.end_s
        else:
            if node.kind == GATHER and comm.injector is not None:
                comm._check_faults(ready)
            start_s[node.nid] = ready
            finish_s[node.nid] = ready + node.cost_s
    rank_time = np.asarray([g.clock.now for g in comm.gpus])
    rank_energy = np.asarray(
        [q.summary()["kernel_energy_j"] for q in queues]
    )
    rank_switches = np.asarray(
        [q.scaler.switch_count for q in queues], dtype=int
    )
    completion = float(max(finish_s.max(initial=0.0), rank_time.max()))
    counts = graph.counts()
    return ExecutionResult(
        mode="scalar",
        fallback=None,
        start_s=start_s,
        finish_s=finish_s,
        rank_time_s=rank_time,
        rank_energy_j=rank_energy,
        rank_switches=rank_switches,
        completion_s=completion,
        n_kernels=counts.get(KERNEL, 0),
        n_transfers=counts.get(HALO, 0) + counts.get(GATHER, 0),
    )


def run_graph(
    graph: CommandGraph,
    comm: SimulatedComm,
    plan: GlobalFrequencyPlan,
    *,
    engine: str = "batched",
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
) -> ExecutionResult:
    """Execute a graph, vectorized when exact bulk replay is possible.

    ``engine="batched"`` uses the wave-vectorized multi-rank engine
    unless a precondition forces the scalar reference: an attached fault
    injector (per-event RNG draws must happen in per-event order), a
    power-capped board (throttle scans are per-event), or heterogeneous
    board specs. ``engine="scalar"`` always runs the reference.

    The batched path is a pure computation — it leaves the communicator's
    devices untouched — while the scalar path commits events, records and
    clock advances to them, exactly like the single-queue engine's
    fallback. Differential parity between the two is part of the
    validation plane.
    """
    from repro.engine.multirank import execute_graph_batched

    if engine not in ("batched", "scalar"):
        raise ValidationError(f"unknown engine {engine!r}")
    fallback = None
    if engine == "batched":
        if comm.injector is not None:
            fallback = "faults"
        elif any(
            g.power_limit_w < g.default_power_limit_w for g in comm.gpus
        ):
            fallback = "powercap"
        elif len({g.spec.name for g in comm.gpus}) > 1:
            fallback = "heterogeneous"
        else:
            return execute_graph_batched(
                graph, comm, plan, switch_overhead_s=switch_overhead_s
            )
    result = run_graph_scalar(
        graph, comm, plan, switch_overhead_s=switch_overhead_s
    )
    if fallback is not None:
        result = ExecutionResult(
            mode="scalar",
            fallback=fallback,
            start_s=result.start_s.copy(),
            finish_s=result.finish_s.copy(),
            rank_time_s=result.rank_time_s.copy(),
            rank_energy_j=result.rank_energy_j.copy(),
            rank_switches=result.rank_switches.copy(),
            completion_s=result.completion_s,
            n_kernels=result.n_kernels,
            n_transfers=result.n_transfers,
        )
    return result
