"""The weak-scaling distributed benchmark (Fig. 10 reopened, 256–2048).

Two measurements over the halo-exchange stencil graph:

- **parity + speedup** at the base scale (256 ranks): the same graph and
  global plan through both executors; asserts batched-vs-scalar parity
  (rel ≤ 1e-12, switch counts exact) and reports the wall-clock speedup
  of the wave-vectorized engine over the per-event reference — the
  ratio the acceptance floor (≥10×) tracks,
- **weak scaling** (batched only) at 512/1024/2048 ranks: per-rank work
  is constant, the problem grows with the rank count; each scale reports
  executed completion, global-plan vs all-MAX_PERF energy and the
  savings fraction — the paper's scalable-energy-saving story.

The section merges under the ``distributed`` key of ``BENCH_perf.json``
(other sections preserved), mirroring the loadgen benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.sweepcache import scoped_cache

#: Base scale for the parity/speedup measurement.
BASE_RANKS = 256

#: Weak-scaling sweep (batched engine only — the scalar reference at
#: these scales is exactly what the engine exists to avoid).
SCALE_RANKS = (512, 1024, 2048)

QUICK_BASE_RANKS = 32
QUICK_SCALE_RANKS = (64, 128)

#: Stencil steps per run.
STEPS = 4

#: Plan SLA factor.
SLA_FACTOR = 1.25


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    d = np.abs(np.asarray(a) - np.asarray(b))
    s = np.maximum(np.abs(a), np.abs(b))
    with np.errstate(invalid="ignore"):
        r = np.where(s > 0.0, d / np.where(s > 0.0, s, 1.0), d)
    return float(r.max(initial=0.0))


def _build(spec, n_ranks: int):
    from repro.core.compiler import plan_global_frequencies
    from repro.distributed import build_comm, build_stencil_graph

    comm = build_comm(spec, n_ranks)
    graph = build_stencil_graph(comm, steps=STEPS)
    plan = plan_global_frequencies(
        spec, graph.rank_kernels(), sla_factor=SLA_FACTOR, cache=True
    )
    baseline = plan_global_frequencies(
        spec, graph.rank_kernels(), sla_factor=SLA_FACTOR,
        objective="MAX_PERF", cache=True,
    )
    return comm, graph, plan, baseline


def run_distributed_bench(
    *,
    quick: bool = False,
    json_path: str | Path | None = None,
) -> dict:
    """Measured distributed run; returns (and optionally merges) the section.

    ``quick`` shrinks the rank counts for smoke use (CLI ``--bench`` in
    tests); the tracked numbers come from the full configuration.
    """
    from repro.distributed import build_comm, run_graph, run_graph_scalar

    base_ranks = QUICK_BASE_RANKS if quick else BASE_RANKS
    scale_ranks = QUICK_SCALE_RANKS if quick else SCALE_RANKS

    with scoped_cache():
        spec = _spec()
        comm, graph, plan, baseline = _build(spec, base_ranks)

        # Warm the shared caches outside the timed region: the batched
        # path is pure (safe to re-run on the same communicator) and
        # populates the memoized operating tables; the scalar reference
        # commits clock advances, so its warmup runs on a throwaway
        # communicator, leaving ``comm`` pristine for the timed runs.
        run_graph(graph, comm, plan)
        run_graph_scalar(graph, build_comm(spec, base_ranks), plan)

        batched_wall_s = min(
            _timed(lambda: run_graph(graph, comm, plan))[1]
            for _ in range(3)
        )
        batched = run_graph(graph, comm, plan)

        scalar, scalar_wall_s = _timed(
            lambda: run_graph_scalar(graph, comm, plan)
        )

        base = {
            "ranks": base_ranks,
            "nodes": len(graph.nodes),
            "kernels": batched.n_kernels,
            "transfers": batched.n_transfers,
            "batched_wall_s": batched_wall_s,
            "scalar_wall_s": scalar_wall_s,
            "speedup": scalar_wall_s / batched_wall_s,
            "parity_rel_err": max(
                _rel_err(batched.start_s, scalar.start_s),
                _rel_err(batched.finish_s, scalar.finish_s),
                _rel_err(batched.rank_energy_j, scalar.rank_energy_j),
                _rel_err(batched.rank_time_s, scalar.rank_time_s),
            ),
            "switches_equal": batched.rank_switches.tolist()
            == scalar.rank_switches.tolist(),
            "completion_s": batched.completion_s,
            "energy_j": batched.total_energy_j,
        }

        scales = []
        for n_ranks in scale_ranks:
            comm, graph, plan, baseline = _build(spec, n_ranks)
            result = run_graph(graph, comm, plan)
            ref = run_graph(graph, build_comm(spec, n_ranks), baseline)
            scales.append(
                {
                    "ranks": n_ranks,
                    "nodes": len(graph.nodes),
                    "mode": result.mode,
                    "completion_s": result.completion_s,
                    "maxperf_completion_s": ref.completion_s,
                    "sla_factor": SLA_FACTOR,
                    "energy_j": result.total_energy_j,
                    "maxperf_energy_j": ref.total_energy_j,
                    "saved_frac": 1.0
                    - result.total_energy_j / ref.total_energy_j,
                    "slack_ranks": sum(
                        t != "MAX_PERF" for t in plan.rank_targets
                    ),
                }
            )

    section = {
        "quick": quick,
        "device": spec.name,
        "steps": STEPS,
        "base": base,
        "scales": scales,
    }
    if json_path is not None:
        path = Path(json_path)
        doc = json.loads(path.read_text()) if path.exists() else {}
        doc["distributed"] = section
        path.write_text(json.dumps(doc, indent=2))
    return section


def _spec():
    from repro.hw.specs import get_spec

    return get_spec("A100")
