"""The weak-scaling stencil workload behind Fig. 10's reopened regime.

A 1-D block-distributed field iterates ``steps`` rounds of the classic
halo-exchange pattern, expressed as distributed command groups so the
graph scheduler derives every edge:

- ``flux`` (sobel3): reads the field with a halo, writes a flux buffer —
  this is the wave whose halo transfers overlap the previous wave's
  compute,
- boundary work (gemm) on the edge ranks only — the heterogeneity that
  creates a critical path (edge ranks) and slack (interior ranks), which
  the global frequency planner converts into energy savings,
- ``update`` (median): reads the flux, read-modify-writes the field —
  its WAR edges against the neighbours' same-step halo pulls keep
  boundary data sound,
- a ``gather`` collective every ``gather_every`` steps (residual norm),
  which is also where the fault plane is polled.

Weak scaling: per-rank block size is fixed, so the problem grows with
the rank count — the 256–2048-rank sweep of the distributed benchmark.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.distributed.graph import CommandGraph
from repro.mpi.comm import SimulatedComm
from repro.sycl.distributed import DistributedBuffer, DistributedRange


def build_stencil_graph(
    comm: SimulatedComm,
    *,
    steps: int = 4,
    elems_per_rank: int = 1 << 20,
    halo_elems: int = 4096,
    gather_every: int = 2,
    boundary_kernel: str = "gemm",
    flux_kernel: str = "sobel3",
    update_kernel: str = "median",
) -> CommandGraph:
    """Build the stencil command graph over a communicator's ranks."""
    from repro.apps import get_benchmark

    if steps <= 0:
        raise ValidationError(f"steps must be positive ({steps})")
    if gather_every <= 0:
        raise ValidationError(f"gather_every must be positive ({gather_every})")
    n_ranks = comm.size
    flux_k = get_benchmark(flux_kernel).kernel
    update_k = get_benchmark(update_kernel).kernel
    boundary_k = get_benchmark(boundary_kernel).kernel

    rng = DistributedRange(elems_per_rank * n_ranks, n_ranks)
    field = DistributedBuffer(rng, name="field")
    flux = DistributedBuffer(rng, name="flux")
    bc = DistributedBuffer(rng, name="boundary")

    graph = CommandGraph(
        n_ranks, comm.node_of_rank, network=comm.network
    )
    halo = min(halo_elems, elems_per_rank)
    edge_ranks = {0, n_ranks - 1}
    boundary_wave = [
        boundary_k if r in edge_ranks else None for r in range(n_ranks)
    ]
    for step in range(steps):
        graph.parallel_for(
            flux_k, [field.read(halo=halo), flux.write()]
        )
        if n_ranks > 1:
            # Edge ranks integrate boundary conditions — extra work the
            # interior never pays, making the edges the critical path.
            graph.parallel_for(boundary_wave, [bc.read_write()])
        graph.parallel_for(
            update_k, [flux.read(), field.read_write()]
        )
        if (step + 1) % gather_every == 0:
            graph.gather(field)
    return graph
