"""Distributed command-graph scheduling over the mini-SYCL runtime.

The Celerity-style layer: buffers carry distributed ranges, submitting a
command group derives inter-rank dependency edges and halo transfers
(:mod:`repro.distributed.graph`), per-rank clocks come from a *global*
energy target (:func:`repro.core.compiler.plan_global_frequencies`), and
two executors — a per-event scalar reference and a wave-vectorized
engine — run the graph in virtual time with communication overlapping
compute (:mod:`repro.distributed.runner`,
:mod:`repro.engine.multirank`).
"""

from repro.distributed.graph import GATHER, HALO, KERNEL, CommandGraph, CommandNode
from repro.distributed.runner import (
    ExecutionResult,
    build_comm,
    run_graph,
    run_graph_scalar,
)
from repro.distributed.stencil import build_stencil_graph

__all__ = [
    "CommandGraph",
    "CommandNode",
    "KERNEL",
    "HALO",
    "GATHER",
    "ExecutionResult",
    "build_comm",
    "run_graph",
    "run_graph_scalar",
    "build_stencil_graph",
]
