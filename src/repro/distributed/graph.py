"""The distributed command graph.

Submitting a command group against distributed buffers does not execute
anything: it *derives structure*. For every rank the builder creates a
kernel node, and from the declared access modes it derives

- **RAW edges** — a reading access depends on the last command that
  wrote the rank's block (and, with a halo, on the halo transfer that
  materializes the neighbour boundary),
- **WAR edges** — a writing access depends on every command that read
  the block since its last write, *including neighbour halo transfers of
  the same wave* (a rank must not overwrite its boundary while a
  neighbour is still pulling the previous version),
- **WAW edges** — via the last-writer dependency,
- **halo-transfer nodes** — one per (rank, halo access), costed from the
  :class:`~repro.mpi.network.NetworkModel` between the owning nodes,
- **gather nodes** — a global collective depending on every rank's last
  writer, costed with the ring-allreduce model.

Node ids are assigned in creation order and every dependency points to a
smaller id, so the id order is a valid topological order. Each builder
call is one *wave*; within a wave, halo nodes precede kernel nodes. The
executors (:mod:`repro.distributed.runner`, scalar reference;
:mod:`repro.engine.multirank`, vectorized) exploit this static wave
structure. Communication costs are computed once here and shared by both
execution paths, so their comm timelines agree bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ValidationError
from repro.kernelir.kernel import KernelIR
from repro.mpi.network import NetworkModel
from repro.sycl.distributed import DistributedAccess, DistributedBuffer

#: Node kinds.
KERNEL = "kernel"
HALO = "halo"
GATHER = "gather"


@dataclass(frozen=True)
class WaveRecord:
    """What one builder call *declared*, before any edge was derived.

    The static auditor (:mod:`repro.analysis.graphaudit`) re-derives every
    block access from these records alone — never from the builder's edge
    state — so it cross-checks the 3-pass hazard derivation with an
    independent algorithm. ``kernel_nids`` maps active ranks to their
    kernel node, ``halo_nids`` maps ``(rank, access index)`` to the halo
    transfer that serves that access.
    """

    wave: int
    kind: str  # "parallel_for" or "gather"
    accesses: tuple[DistributedAccess, ...]
    buffer: "DistributedBuffer | None"
    kernel_nids: tuple[tuple[int, int], ...]
    halo_nids: tuple[tuple[tuple[int, int], int], ...]
    gather_nid: int | None


@dataclass(frozen=True)
class CommandNode:
    """One scheduled command: a rank-local kernel or a transfer.

    ``deps`` are node ids that must finish before this node may start;
    all of them are smaller than ``nid``. ``cost_s`` is the precomputed
    communication cost for transfer nodes (0 for kernels — their duration
    depends on the frequency plan and is resolved at execution time).
    """

    nid: int
    kind: str
    rank: int  # -1 for global collectives
    wave: int
    label: str
    deps: tuple[int, ...]
    kernel: KernelIR | None = None
    nbytes: float = 0.0
    cost_s: float = 0.0


class CommandGraph:
    """Builder and container for a distributed command DAG."""

    def __init__(
        self,
        n_ranks: int,
        node_of_rank: Sequence[int],
        network: NetworkModel | None = None,
    ) -> None:
        if n_ranks <= 0:
            raise ValidationError(f"graph needs at least one rank ({n_ranks})")
        if len(node_of_rank) != n_ranks:
            raise ValidationError(
                f"node_of_rank length {len(node_of_rank)} != ranks {n_ranks}"
            )
        self.n_ranks = int(n_ranks)
        self.node_of_rank = list(node_of_rank)
        self.network = network if network is not None else NetworkModel()
        self.nodes: list[CommandNode] = []
        self.submissions: list[WaveRecord] = []
        self._wave = -1
        # Per (buffer, rank) hazard state: the node id of the last write,
        # and ids of reads since then. Owned by the graph (not the buffer)
        # so independently-built graphs never interfere.
        self._last_writer: dict[DistributedBuffer, list[int | None]] = {}
        self._readers: dict[DistributedBuffer, list[list[int]]] = {}

    # -------------------------------------------------------------- plumbing

    def _state(
        self, buf: DistributedBuffer
    ) -> tuple[list[int | None], list[list[int]]]:
        if buf.n_ranks != self.n_ranks:
            raise ValidationError(
                f"buffer {buf.name!r} is distributed over {buf.n_ranks} "
                f"ranks; graph has {self.n_ranks}"
            )
        if buf not in self._last_writer:
            self._last_writer[buf] = [None] * self.n_ranks
            self._readers[buf] = [[] for _ in range(self.n_ranks)]
        return self._last_writer[buf], self._readers[buf]

    def _neighbours(self, rank: int) -> list[int]:
        """Non-periodic ±1 neighbours (stencil codes pin the boundary)."""
        out = []
        if rank > 0:
            out.append(rank - 1)
        if rank < self.n_ranks - 1:
            out.append(rank + 1)
        return out

    def _add(self, **kwargs) -> CommandNode:
        node = CommandNode(nid=len(self.nodes), wave=self._wave, **kwargs)
        self.nodes.append(node)
        return node

    @staticmethod
    def _dedup(deps: list[int]) -> tuple[int, ...]:
        return tuple(sorted(set(deps)))

    # ------------------------------------------------------------ submission

    def parallel_for(
        self,
        kernel: KernelIR | Sequence[KernelIR | None],
        accesses: Sequence[DistributedAccess],
    ) -> list[CommandNode]:
        """Submit one SPMD command group; returns the created kernel nodes.

        ``kernel`` is either one :class:`KernelIR` every rank runs, or a
        per-rank sequence where ``None`` marks an idle rank (heterogeneous
        waves — e.g. boundary-condition kernels on edge ranks only).
        Dependency edges are derived from ``accesses`` as described in the
        module docstring.
        """
        if isinstance(kernel, KernelIR):
            per_rank: list[KernelIR | None] = [kernel] * self.n_ranks
        else:
            per_rank = list(kernel)
            if len(per_rank) != self.n_ranks:
                raise ValidationError(
                    f"per-rank kernel list covers {len(per_rank)} ranks; "
                    f"graph has {self.n_ranks}"
                )
        if not any(k is not None for k in per_rank):
            raise ValidationError("command group has no active rank")
        self._wave += 1

        # Pass 1 — halo transfers, derived from the *pre-wave* state. Each
        # active rank with a halo access gets one transfer node pulling
        # both neighbour boundaries; the node registers immediately as a
        # reader of the neighbour blocks so same-wave writes order behind
        # it (the WAR edge that keeps boundary pulls sound).
        halo_of: dict[tuple[int, int], int] = {}  # (rank, access idx) -> nid
        for ai, access in enumerate(accesses):
            if not access.halo:
                continue
            writers, readers = self._state(access.buffer)
            for rank in range(self.n_ranks):
                if per_rank[rank] is None:
                    continue
                neighbours = self._neighbours(rank)
                if not neighbours:
                    continue
                deps = [
                    writers[n] for n in neighbours if writers[n] is not None
                ]
                # Both directions proceed concurrently; the slower link
                # bounds the exchange (send + receive, as in
                # SimulatedComm.halo_exchange).
                cost = 2.0 * max(
                    self.network.transfer_time(
                        access.halo_nbytes,
                        self.node_of_rank[rank],
                        self.node_of_rank[n],
                    )
                    for n in neighbours
                )
                node = self._add(
                    kind=HALO,
                    rank=rank,
                    label=f"halo:{access.buffer.name}[r{rank}]",
                    deps=self._dedup(deps),
                    nbytes=float(access.halo_nbytes),
                    cost_s=cost,
                )
                halo_of[(rank, ai)] = node.nid
                for n in neighbours:
                    readers[n].append(node.nid)

        # Pass 2 — kernel nodes, deps from the pre-wave state plus this
        # wave's halo nodes. Effects are *not* committed yet: same-wave
        # kernels on different ranks are concurrent, never ordered against
        # each other through their own wave's reads.
        created: list[CommandNode] = []
        for rank in range(self.n_ranks):
            k = per_rank[rank]
            if k is None:
                continue
            deps: list[int] = []
            for ai, access in enumerate(accesses):
                writers, readers = self._state(access.buffer)
                if access.mode.reads:
                    if writers[rank] is not None:
                        deps.append(writers[rank])
                    hid = halo_of.get((rank, ai))
                    if hid is not None:
                        deps.append(hid)
                if access.mode.writes:
                    if writers[rank] is not None:
                        deps.append(writers[rank])
                    deps.extend(readers[rank])
            node = self._add(
                kind=KERNEL,
                rank=rank,
                label=f"{k.name}[r{rank}]",
                deps=self._dedup(deps),
                kernel=k,
            )
            created.append(node)

        # Pass 3 — commit this wave's effects. Writes supersede the block's
        # reader set (later writers transitively order behind them through
        # the new last-writer edge); pure reads join it.
        for node in created:
            for access in accesses:
                writers, readers = self._state(access.buffer)
                if access.mode.writes:
                    writers[node.rank] = node.nid
                    readers[node.rank] = []
                else:
                    readers[node.rank].append(node.nid)
        self.submissions.append(
            WaveRecord(
                wave=self._wave,
                kind="parallel_for",
                accesses=tuple(accesses),
                buffer=None,
                kernel_nids=tuple((n.rank, n.nid) for n in created),
                halo_nids=tuple(halo_of.items()),
                gather_nid=None,
            )
        )
        return created

    def gather(
        self, buf: DistributedBuffer, *, nbytes: float | None = None
    ) -> CommandNode:
        """Submit a global gather/reduction over every block of ``buf``.

        Depends on every rank's last writer and registers as a reader of
        every block, so subsequent writes order behind the collective.
        Costed with the ring-allreduce model over the per-rank
        contribution (the largest block, unless ``nbytes`` overrides).
        """
        self._wave += 1
        writers, readers = self._state(buf)
        deps = [w for w in writers if w is not None]
        if nbytes is None:
            nbytes = float(int(buf.range.counts.max()) * buf.itemsize)
        cost = (
            self.network.allreduce_time(nbytes, self.node_of_rank)
            if self.n_ranks > 1
            else 0.0
        )
        node = self._add(
            kind=GATHER,
            rank=-1,
            label=f"gather:{buf.name}",
            deps=self._dedup(deps),
            nbytes=float(nbytes),
            cost_s=cost,
        )
        for rank in range(self.n_ranks):
            readers[rank].append(node.nid)
        self.submissions.append(
            WaveRecord(
                wave=self._wave,
                kind="gather",
                accesses=(),
                buffer=buf,
                kernel_nids=(),
                halo_nids=(),
                gather_nid=node.nid,
            )
        )
        return node

    # ------------------------------------------------------------ inspection

    @property
    def n_waves(self) -> int:
        """Number of submitted waves."""
        return self._wave + 1

    def kernel_nodes(self) -> list[CommandNode]:
        """All kernel nodes in id (= topological) order."""
        return [n for n in self.nodes if n.kind == KERNEL]

    def counts(self) -> dict[str, int]:
        """Node count per kind."""
        out: dict[str, int] = {}
        for n in self.nodes:
            out[n.kind] = out.get(n.kind, 0) + 1
        return out

    def rank_kernels(self) -> list[list[KernelIR]]:
        """Per-rank kernel sequence, in execution (id) order.

        This is exactly the shape
        :func:`repro.core.compiler.plan_global_frequencies` consumes to
        choose per-rank clocks from a global energy target.
        """
        out: list[list[KernelIR]] = [[] for _ in range(self.n_ranks)]
        for n in self.nodes:
            if n.kind == KERNEL:
                assert n.kernel is not None
                out[n.rank].append(n.kernel)
        return out

    def check_edges(self) -> bool:
        """Structural soundness: acyclic-by-construction edge contract.

        Returns ``True`` when every dependency id precedes its node id
        (so id order is a topological order); raises otherwise.
        """
        for node in self.nodes:
            for dep in node.deps:
                if not 0 <= dep < node.nid:
                    raise ValidationError(
                        f"node {node.nid} ({node.label}) depends on "
                        f"{dep}, violating the topological id order"
                    )
        return True
