"""Tracked performance benchmark of the vectorized fast paths.

Times every fast path against its preserved scalar baseline at realistic
experiment scales, asserts the two produce equivalent results, and writes
a machine-readable report (``BENCH_perf.json``) so regressions in either
speed or equivalence are visible across commits:

- ``sweep_1d`` — :func:`~repro.core.models.measure_sweep` over the full
  V100 core-frequency table vs the per-clock scalar loop (target ≥ 5×),
- ``sweep_2d`` — :func:`~repro.experiments.sweep.sweep_kernel_2d` over the
  Titan X (memory × core) grid vs the nested scalar loop (target ≥ 5×),
- ``forest_fit`` / ``forest_predict`` — presorted, vectorized random
  forest vs the per-node-argsort / node-walk reference (target ≥ 3×, and
  bitwise-identical results),
- ``sweep_cache`` — cold vs warm pass over the training sweeps through
  the keyed sweep cache, with hit/miss counters,
- ``forest_determinism`` — serial vs multi-worker training must produce
  bitwise-identical forests,
- ``scenario_batched`` — a full cluster scenario (one exclusive 64-node
  job, hundreds of mixed-target kernels per board) through the batched
  virtual-time engine (``Scheduler.submit_many`` + ``submit_batch`` +
  batched accounting) vs the per-event scalar reference (target ≥ 10×,
  with per-record clock plans compared exactly and energies/times at
  1e-12 relative).

Equivalence tolerances: sweeps are compared at 1e-12 relative error
(vectorized NumPy pow may differ from scalar libm pow by ~1 ulp); all ML
results must match exactly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.models import (
    build_training_set,
    expand_design,
    measure_sweep,
    measure_sweep_scalar,
)
from repro.core.profiling import fastpath_cache_report
from repro.core.sweepcache import SweepCache
from repro.experiments.sweep import sweep_kernel_2d, sweep_kernel_2d_scalar
from repro.hw.specs import NVIDIA_TITAN_X, NVIDIA_V100
from repro.kernelir.microbench import generate_microbenchmarks
from repro.ml.forest import RandomForestRegressor
from repro.ml.serialization import serialize_estimator

#: Speed targets the tentpole commits to (checked by the perf benchmark).
SPEEDUP_TARGETS: dict[str, float] = {
    "sweep_1d": 5.0,
    "sweep_2d": 5.0,
    "forest_fit": 3.0,
    "forest_predict": 3.0,
    "scenario_batched": 10.0,
}

#: Relative tolerance for vectorized-vs-scalar sweep equivalence.
SWEEP_RTOL = 1e-12


def _timed(fn, repeats: int = 1):
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _max_rel_err(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.maximum(np.abs(b), 1e-300)
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b)) / denom))


def _record(
    name: str, baseline_s: float, fast_s: float, max_rel_err: float
) -> dict:
    target = SPEEDUP_TARGETS.get(name)
    speedup = baseline_s / max(fast_s, 1e-12)
    return {
        "name": name,
        "baseline_s": baseline_s,
        "fast_s": fast_s,
        "speedup": speedup,
        "target": target,
        "meets_target": bool(target is None or speedup >= target),
        "max_rel_err": max_rel_err,
    }


def _batched_scenario(
    n_nodes: int, kernels_per_board: int, repeats: int
) -> tuple[float, float, float]:
    """Time one exclusive whole-cluster job: batched engine vs scalar.

    Twin clusters run the identical mixed-target submission stream per
    board — once through ``Scheduler.submit`` + the per-event scalar
    queue loop with scalar energy accounting, once through
    ``Scheduler.submit_many`` + ``SynergyQueue.submit_batch`` with
    batched accounting. Returns ``(baseline_s, fast_s, max_rel_err)``
    after asserting per-record clock-plan identity and 1e-12 agreement
    of energies, timestamps and the accounted job energy.
    """
    from repro.apps import get_benchmark
    from repro.engine.payload import KernelBatchPayload, plan_from_sweeps
    from repro.metrics.targets import (
        DEADLINE,
        MAX_PERF,
        MIN_EDP,
        MIN_ENERGY,
        SLA_SLACK,
    )
    from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
    from repro.slurm.job import JobSpec
    from repro.slurm.plugin import NvGpuFreqPlugin
    from repro.slurm.scheduler import Scheduler

    spec = NVIDIA_V100
    kernels = [get_benchmark(n).kernel for n in ("gemm", "sobel3", "median")]
    targets = [MIN_EDP, MAX_PERF, MIN_ENERGY, DEADLINE(0.05), SLA_SLACK(1.3)]
    plan = plan_from_sweeps(spec, kernels, targets)
    table = spec.core_freqs_mhz
    requests = tuple(
        (spec.default_mem_mhz, table[(11 * i) % len(table)], kernels[i % 3])
        if i % 4 == 3
        else (targets[i % 5], kernels[i % 3])
        for i in range(kernels_per_board)
    )

    def run(batched: bool):
        cluster = Cluster.build(
            spec, n_nodes=n_nodes, gpus_per_node=1, gres={NVGPUFREQ_GRES}
        )
        scheduler = Scheduler(cluster, plugins=[NvGpuFreqPlugin()])
        job_spec = JobSpec(
            name="scenario-batched",
            n_nodes=n_nodes,
            exclusive=True,
            gres=frozenset({NVGPUFREQ_GRES}),
            payload=KernelBatchPayload(
                requests=requests, plan=plan, batched=batched
            ),
        )
        if batched:
            job = scheduler.submit_many([job_spec], accounting="batched")[0]
        else:
            job = scheduler.submit(job_spec)
        return cluster, job

    run(True)  # move lazy imports and sweep warmup off the timed path
    base_s, (scalar_cluster, scalar_job) = _timed(lambda: run(False), repeats)
    fast_s, (fast_cluster, fast_job) = _timed(lambda: run(True), repeats)

    scalar_gpus = [g for node in scalar_cluster.nodes for g in node.gpus]
    fast_gpus = [g for node in fast_cluster.nodes for g in node.gpus]
    err = _max_rel_err([fast_job.gpu_energy_j], [scalar_job.gpu_energy_j])
    for scalar_gpu, fast_gpu in zip(scalar_gpus, fast_gpus):
        a, b = scalar_gpu.records, fast_gpu.records
        assert len(a) == len(b) == kernels_per_board, (
            "scenario_batched record counts diverged"
        )
        assert [(r.core_mhz, r.mem_mhz) for r in a] == [
            (r.core_mhz, r.mem_mhz) for r in b
        ], "scenario_batched clock plans diverged"
        err = max(
            err,
            _max_rel_err([r.energy_j for r in b], [r.energy_j for r in a]),
            _max_rel_err([r.end_s for r in b], [r.end_s for r in a]),
        )
    assert err < SWEEP_RTOL, f"scenario_batched equivalence broke: {err:.3e}"
    return base_s, fast_s, err


def run_perf_pipeline(
    quick: bool = False,
    n_jobs: int | None = None,
    json_path: str | Path | None = None,
    repeats: int = 1,
) -> dict:
    """Run the full sweep/train/predict perf benchmark.

    ``quick`` shrinks every scale for smoke runs (CI / the verify skill);
    speed targets are only meaningful — and only enforced by the perf
    benchmark suite — at full scale. Raises ``AssertionError`` if any
    fast path fails its equivalence check.
    """
    n_kernels = 8 if quick else 24
    n_kernels_2d = 2 if quick else 4
    n_trees = 8 if quick else 30
    predict_tile = 2 if quick else 8
    kernels = generate_microbenchmarks(random_count=n_kernels)
    sections: list[dict] = []

    # --- 1-D sweeps over the full V100 frequency table -------------------
    fast_s, fast = _timed(
        lambda: [measure_sweep(NVIDIA_V100, k, cache=False) for k in kernels],
        repeats,
    )
    base_s, base = _timed(
        lambda: [measure_sweep_scalar(NVIDIA_V100, k) for k in kernels]
    )
    err = max(
        max(_max_rel_err(f[1], b[1]), _max_rel_err(f[2], b[2]))
        for f, b in zip(fast, base)
    )
    assert err < SWEEP_RTOL, f"sweep_1d equivalence broke: {err:.3e}"
    sections.append(_record("sweep_1d", base_s, fast_s, err))

    # --- 2-D (memory x core) sweeps on the Titan X -----------------------
    grid = kernels[:n_kernels_2d]
    fast_s, fast = _timed(
        lambda: [sweep_kernel_2d(NVIDIA_TITAN_X, k, cache=False) for k in grid],
        repeats,
    )
    base_s, base = _timed(
        lambda: [sweep_kernel_2d_scalar(NVIDIA_TITAN_X, k) for k in grid]
    )
    err = max(
        max(
            _max_rel_err(f.time_s, b.time_s),
            _max_rel_err(f.energy_j, b.energy_j),
        )
        for f, b in zip(fast, base)
    )
    assert err < SWEEP_RTOL, f"sweep_2d equivalence broke: {err:.3e}"
    sections.append(_record("sweep_2d", base_s, fast_s, err))

    # --- forest training and prediction ----------------------------------
    training = build_training_set(
        NVIDIA_V100, kernels, NVIDIA_V100.core_freqs_mhz[:: 8 if quick else 4]
    )
    X = expand_design(training.X)
    y = np.log(np.maximum(training.time_s, 1e-300))
    params = dict(
        n_estimators=n_trees, max_depth=14, min_samples_leaf=2, seed=11
    )
    fast_forest = RandomForestRegressor(n_jobs=1, **params)
    base_forest = RandomForestRegressor(n_jobs=1, **params)
    fast_s, _ = _timed(lambda: fast_forest.fit(X, y))
    base_s, _ = _timed(lambda: base_forest.fit_scalar(X, y))
    identical_fit = serialize_estimator(fast_forest) == serialize_estimator(
        base_forest
    )
    assert identical_fit, "presorted forest fit diverged from reference"
    sections.append(_record("forest_fit", base_s, fast_s, 0.0))

    Xq = np.tile(X, (predict_tile, 1))
    fast_s, pred_fast = _timed(lambda: fast_forest.predict(Xq), repeats)
    base_s, pred_base = _timed(lambda: fast_forest.predict_scalar(Xq))
    assert np.array_equal(pred_fast, pred_base), (
        "flat forest prediction diverged from node walk"
    )
    sections.append(_record("forest_predict", base_s, fast_s, 0.0))

    # --- parallel-training determinism -----------------------------------
    parallel_forest = RandomForestRegressor(n_jobs=2, **params).fit(X, y)
    forest_deterministic = serialize_estimator(
        parallel_forest
    ) == serialize_estimator(fast_forest)
    assert forest_deterministic, "parallel forest differs from serial"
    if n_jobs is not None and n_jobs != 2:
        extra = RandomForestRegressor(n_jobs=n_jobs, **params).fit(X, y)
        assert serialize_estimator(extra) == serialize_estimator(fast_forest)

    # --- batched cluster scenario vs the scalar reference ----------------
    n_nodes = 8 if quick else 64
    kernels_per_board = 48 if quick else 384
    base_s, fast_s, err = _batched_scenario(n_nodes, kernels_per_board, repeats)
    sections.append(_record("scenario_batched", base_s, fast_s, err))

    # --- keyed sweep cache: cold vs warm ---------------------------------
    cache = SweepCache()
    cold_s, _ = _timed(
        lambda: [measure_sweep(NVIDIA_V100, k, cache=cache) for k in kernels]
    )
    warm_s, _ = _timed(
        lambda: [measure_sweep(NVIDIA_V100, k, cache=cache) for k in kernels]
    )
    cache_section = {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / max(warm_s, 1e-12),
        **cache.stats.as_dict(),
        "entries": len(cache),
    }

    report = {
        "quick": quick,
        "scales": {
            "n_kernels": n_kernels,
            "n_kernels_2d": n_kernels_2d,
            "n_trees": n_trees,
            "training_rows": int(X.shape[0]),
            "predict_rows": int(Xq.shape[0]),
            "scenario_nodes": n_nodes,
            "scenario_kernels_per_board": kernels_per_board,
        },
        "sections": sections,
        "sweep_cache": cache_section,
        "forest_deterministic": forest_deterministic,
        "global_caches": fastpath_cache_report(),
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(report, indent=2) + "\n")
    return report
