"""Prediction-accuracy analysis (paper §8.3: Fig. 9 and Table 2).

Protocol, exactly as the paper describes it:

- models are trained only on micro-benchmarks; the 23 SYCL benchmarks are
  unseen workloads,
- for each benchmark × objective × algorithm, the predictor picks a
  frequency from the model curves; the *actual* optimal frequency comes
  from the measured sweep,
- the error is **not** raw regression error: it compares the measured
  objective value at the predicted frequency against the measured
  objective value at the actual optimal frequency (APE per benchmark;
  RMSE/MAPE across benchmarks in Table 2),
- Table 2's dashes are respected: each objective is only evaluated with
  the algorithm families the paper tested it with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.apps.syclbench import SyclBenchmark, iter_benchmarks
from repro.core.models import EnergyModelBundle
from repro.core.predictor import FrequencyPredictor
from repro.experiments.sweep import FrequencySweep, sweep_kernel
from repro.experiments.training import ALGORITHM_NAMES, train_bundles
from repro.hw.specs import GPUSpec
from repro.metrics.errors import rmse
from repro.metrics.targets import TABLE2_OBJECTIVES, EnergyTarget

#: Which algorithm families each objective is evaluated with (Table 2's
#: non-dash cells).
OBJECTIVE_ALGORITHMS: Mapping[str, tuple[str, ...]] = {
    "MAX_PERF": ("Linear", "Lasso", "RandomForest"),
    "MIN_ENERGY": ("RandomForest", "SVR"),
    "MIN_EDP": ("RandomForest", "SVR"),
    "MIN_ED2P": ("Linear", "RandomForest", "SVR"),
    "ES_25": ("RandomForest", "SVR"),
    "ES_50": ("RandomForest", "SVR"),
    "ES_75": ("RandomForest", "SVR"),
    "PL_25": ("Linear", "Lasso", "RandomForest"),
    "PL_50": ("Linear", "Lasso", "RandomForest"),
    "PL_75": ("Linear", "Lasso", "RandomForest"),
}


@dataclass(frozen=True)
class PredictionRecord:
    """One (benchmark, objective, algorithm) prediction outcome."""

    benchmark: str
    objective: str
    algorithm: str
    predicted_freq_mhz: float
    actual_freq_mhz: float
    predicted_value: float
    actual_value: float

    @property
    def ape(self) -> float:
        """Absolute percentage error on the objective value (Fig. 9 y-axis)."""
        return abs(self.actual_value - self.predicted_value) / abs(self.actual_value)


@dataclass
class AccuracyAnalysis:
    """All prediction records plus Table-2-style aggregates."""

    device_name: str
    records: list[PredictionRecord] = field(default_factory=list)

    def for_cell(self, objective: str, algorithm: str) -> list[PredictionRecord]:
        """Records of one Table 2 cell (across benchmarks)."""
        return [
            r
            for r in self.records
            if r.objective == objective and r.algorithm == algorithm
        ]

    def cell_errors(self, objective: str, algorithm: str) -> tuple[float, float]:
        """``(RMSE, MAPE)`` of one Table 2 cell; NaNs when untested."""
        cell = self.for_cell(objective, algorithm)
        if not cell:
            return (float("nan"), float("nan"))
        actual = np.array([r.actual_value for r in cell])
        predicted = np.array([r.predicted_value for r in cell])
        mape = float(np.mean(np.abs(actual - predicted) / np.abs(actual)))
        return (rmse(actual, predicted), mape)

    def best_algorithm(self, objective: str) -> str:
        """The family with the lowest MAPE for an objective (Table 2 'Best')."""
        candidates = OBJECTIVE_ALGORITHMS[objective]
        return min(candidates, key=lambda a: self.cell_errors(objective, a)[1])

    def table2(self) -> list[dict[str, object]]:
        """Table 2 rows: per objective, per family RMSE/MAPE plus winner."""
        rows = []
        for target in TABLE2_OBJECTIVES:
            row: dict[str, object] = {"objective": target.name}
            for algorithm in ALGORITHM_NAMES:
                r, m = self.cell_errors(target.name, algorithm)
                row[f"{algorithm}_rmse"] = r
                row[f"{algorithm}_mape"] = m
            row["best"] = self.best_algorithm(target.name)
            rows.append(row)
        return rows


def run_accuracy_analysis(
    spec: GPUSpec,
    bundles: Mapping[str, EnergyModelBundle] | None = None,
    benchmarks: Sequence[SyclBenchmark] | None = None,
    objectives: Sequence[EnergyTarget] = TABLE2_OBJECTIVES,
) -> AccuracyAnalysis:
    """Run the full §8.3 protocol on one device."""
    suite = list(benchmarks) if benchmarks is not None else list(iter_benchmarks())
    fitted = bundles if bundles is not None else train_bundles(spec)
    predictors = {
        name: FrequencyPredictor(bundle, spec) for name, bundle in fitted.items()
    }
    analysis = AccuracyAnalysis(device_name=spec.name)
    sweeps: dict[str, FrequencySweep] = {
        b.name: sweep_kernel(spec, b.kernel) for b in suite
    }
    for bench in suite:
        sweep = sweeps[bench.name]
        for target in objectives:
            actual_idx = sweep.resolve(target)
            for algorithm in OBJECTIVE_ALGORITHMS[target.name]:
                if algorithm not in predictors:
                    continue
                predicted_idx = predictors[algorithm].predict_index(
                    bench.kernel, target
                )
                analysis.records.append(
                    PredictionRecord(
                        benchmark=bench.name,
                        objective=target.name,
                        algorithm=algorithm,
                        predicted_freq_mhz=float(sweep.freqs_mhz[predicted_idx]),
                        actual_freq_mhz=float(sweep.freqs_mhz[actual_idx]),
                        predicted_value=sweep.objective_value(target, predicted_idx),
                        actual_value=sweep.objective_value(target, actual_idx),
                    )
                )
    return analysis
