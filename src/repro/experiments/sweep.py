"""Per-kernel frequency sweeps.

A :class:`FrequencySweep` bundles everything the characterization figures
plot: per-frequency time/energy, speedup and normalized energy against the
device-default baseline, EDP/ED2P curves, the Pareto mask and the resolved
index of any energy target. Derived arrays are memoized per instance —
repeated figure/table passes over the same sweep reuse one computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.models import measure_sweep
from repro.core.sweepcache import SweepCache, resolve_cache
from repro.hw.cache import models_for
from repro.hw.power import PowerModel
from repro.hw.specs import GPUSpec
from repro.hw.timing import TimingModel
from repro.kernelir.kernel import KernelIR
from repro.metrics.energy import ed2p, edp
from repro.metrics.pareto import pareto_front_mask
from repro.metrics.targets import EnergyTarget


@dataclass(frozen=True)
class FrequencySweep:
    """Measured sweep of one kernel over a device's core-frequency table.

    The derived curves (:attr:`speedup`, :attr:`normalized_energy`,
    :attr:`edp`, :attr:`ed2p`, :attr:`pareto_mask`) are computed lazily and
    memoized on first access; ``functools.cached_property`` stores them in
    the instance ``__dict__``, which is compatible with the frozen
    dataclass (only attribute *assignment* is blocked).
    """

    kernel_name: str
    device_name: str
    freqs_mhz: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray
    default_index: int

    @cached_property
    def speedup(self) -> np.ndarray:
        """Per-frequency speedup vs the default configuration (Fig. 7 x-axis)."""
        return self.time_s[self.default_index] / self.time_s

    @cached_property
    def normalized_energy(self) -> np.ndarray:
        """Per-task energy normalized to the default (Fig. 7 y-axis)."""
        return self.energy_j / self.energy_j[self.default_index]

    @cached_property
    def edp(self) -> np.ndarray:
        """EDP curve over the sweep (Fig. 4a)."""
        return np.asarray(edp(self.energy_j, self.time_s))

    @cached_property
    def ed2p(self) -> np.ndarray:
        """ED2P curve over the sweep (Fig. 4b)."""
        return np.asarray(ed2p(self.energy_j, self.time_s))

    @cached_property
    def pareto_mask(self) -> np.ndarray:
        """Pareto-optimal configurations on the speedup/energy plane."""
        return pareto_front_mask(self.speedup, self.normalized_energy)

    def resolve(self, target: EnergyTarget) -> int:
        """Index of the configuration realizing ``target`` on measured data."""
        return target.resolve_index(
            self.freqs_mhz, self.time_s, self.energy_j, self.default_index
        )

    def objective_value(self, target: EnergyTarget, index: int) -> float:
        """The target's reported objective at a sweep index (Table 2 protocol).

        MAX_PERF and PL_x report time; MIN_ENERGY, ES_x and the
        deadline/SLA family report energy (they maximize saving subject to
        a time bound); MIN_EDP / MIN_ED2P report their product metric.
        """
        from repro.metrics.targets import TargetKind

        if target.kind in (TargetKind.MAX_PERF, TargetKind.PL):
            return float(self.time_s[index])
        if target.kind in (
            TargetKind.MIN_ENERGY,
            TargetKind.ES,
            TargetKind.DEADLINE,
            TargetKind.SLA_SLACK,
        ):
            return float(self.energy_j[index])
        if target.kind is TargetKind.MIN_EDP:
            return float(self.edp[index])
        return float(self.ed2p[index])


def sweep_kernel(
    spec: GPUSpec,
    kernel: KernelIR,
    *,
    cache: bool | SweepCache | None = None,
) -> FrequencySweep:
    """Measure a kernel across the device's full core-frequency table."""
    freqs, times, energies = measure_sweep(spec, kernel, cache=cache)
    default_index = int(np.argmin(np.abs(freqs - spec.default_core_mhz)))
    return FrequencySweep(
        kernel_name=kernel.name,
        device_name=spec.name,
        freqs_mhz=freqs,
        time_s=times,
        energy_j=energies,
        default_index=default_index,
    )


@dataclass(frozen=True)
class FrequencySweep2D:
    """Joint core × memory frequency sweep (boards with selectable memory
    clocks, e.g. the Titan X of §2.1).

    ``time_s`` and ``energy_j`` have shape ``(n_mem, n_core)``.
    """

    kernel_name: str
    device_name: str
    core_mhz: np.ndarray
    mem_mhz: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray

    def min_energy_config(self) -> tuple[int, int]:
        """``(mem_mhz, core_mhz)`` of the minimum-energy configuration."""
        i, j = np.unravel_index(int(np.argmin(self.energy_j)), self.energy_j.shape)
        return int(self.mem_mhz[i]), int(self.core_mhz[j])

    def max_perf_config(self) -> tuple[int, int]:
        """``(mem_mhz, core_mhz)`` of the fastest configuration."""
        i, j = np.unravel_index(int(np.argmin(self.time_s)), self.time_s.shape)
        return int(self.mem_mhz[i]), int(self.core_mhz[j])


def _compute_sweep_2d(
    spec: GPUSpec, kernel: KernelIR, core: np.ndarray, mem: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The full (memory × core) grid in one broadcasted model evaluation."""
    timing_model, power_model = models_for(spec)
    timing = timing_model.sweep(kernel, core[None, :], mem[:, None])
    power = np.asarray(
        power_model.power(
            core[None, :],
            mem[:, None],
            timing.core_power_utilization,
            timing.u_mem,
        ),
        dtype=float,
    )
    return timing.time_s, power * timing.time_s


def sweep_kernel_2d(
    spec: GPUSpec,
    kernel: KernelIR,
    *,
    cache: bool | SweepCache | None = None,
) -> FrequencySweep2D:
    """Measure a kernel over every (memory, core) clock combination.

    Collapses to one row on HBM devices whose memory clock is fixed. The
    whole grid is a single broadcasted evaluation of the timing and power
    models, memoized in the keyed sweep cache like :func:`sweep_kernel`.
    """
    core = np.asarray(spec.core_freqs_mhz, dtype=float)
    mem = np.asarray(spec.mem_freqs_mhz, dtype=float)
    store = resolve_cache(cache)
    if store is None:
        times, energies = _compute_sweep_2d(spec, kernel, core, mem)
    else:
        times, energies = store.get_or_compute(
            store.sweep2d_key(spec, kernel, core, mem),
            lambda: _compute_sweep_2d(spec, kernel, core, mem),
        )
    return FrequencySweep2D(
        kernel_name=kernel.name,
        device_name=spec.name,
        core_mhz=core,
        mem_mhz=mem,
        time_s=times,
        energy_j=energies,
    )


def sweep_kernel_2d_scalar(spec: GPUSpec, kernel: KernelIR) -> FrequencySweep2D:
    """Pre-vectorization 2-D sweep (per-row sweep, per-cell power call).

    Kept callable as the baseline the perf benchmark suite measures
    :func:`sweep_kernel_2d` against; results are identical.
    """
    timing_model = TimingModel(spec)
    power_model = PowerModel(spec)
    core = np.asarray(spec.core_freqs_mhz, dtype=float)
    mem = np.asarray(spec.mem_freqs_mhz, dtype=float)
    times = np.empty((mem.size, core.size))
    energies = np.empty_like(times)
    for i, fm in enumerate(mem):
        for j, timing in enumerate(
            timing_model.sweep_scalar(kernel, core, float(fm))
        ):
            power = float(
                power_model.power(
                    core[j], fm, timing.core_power_utilization, timing.u_mem
                )
            )
            times[i, j] = timing.time_s
            energies[i, j] = power * timing.time_s
    return FrequencySweep2D(
        kernel_name=kernel.name,
        device_name=spec.name,
        core_mhz=core,
        mem_mhz=mem,
        time_s=times,
        energy_j=energies,
    )
