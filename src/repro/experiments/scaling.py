"""Multi-node energy scaling (paper §8.4, Fig. 10).

Weak scaling of CloverLeaf / MiniWeather on a simulated Marconi-100: IBM
Power9 nodes with 4 NVIDIA V100s each, InfiniBand EDR, DragonFly+. For each
GPU count and each energy target the app is compiled (per-kernel frequency
plan) and submitted as an exclusive, ``nvgpufreq``-tagged SLURM job; the
plugin grants clock privileges, the app runs one MPI rank per GPU, and the
report captures end-to-end time (computation + communication) against
GPU-only energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.apps.miniapp import AppReport, MpiMiniApp
from repro.common.errors import ConfigurationError, ValidationError
from repro.core.compiler import SynergyCompiler
from repro.core.models import EnergyModelBundle
from repro.experiments.training import microbench_training_set
from repro.hw.specs import GPUSpec, NVIDIA_V100
from repro.metrics.targets import (
    ES_25,
    ES_50,
    ES_75,
    EnergyTarget,
    MIN_EDP,
    PL_25,
    PL_50,
)
from repro.mpi.launcher import launch_ranks
from repro.mpi.network import NetworkModel
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import JobContext, JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler

#: The target set plotted in Fig. 10 (plus the default baseline).
FIG10_TARGETS: tuple[EnergyTarget, ...] = (MIN_EDP, ES_25, ES_50, ES_75, PL_25, PL_50)

#: Marconi-100 packs 4 V100 boards per node.
GPUS_PER_NODE: int = 4


@dataclass(frozen=True)
class ScalingPoint:
    """One point of Fig. 10: an (app, GPU count, target) configuration."""

    app_name: str
    n_gpus: int
    target_name: str
    elapsed_s: float
    gpu_energy_j: float
    comm_time_s: float

    def energy_saving_vs(self, baseline: "ScalingPoint") -> float:
        """Fractional GPU energy saving against a baseline point."""
        return 1.0 - self.gpu_energy_j / baseline.gpu_energy_j


@dataclass
class ScalingResult:
    """All measured points of the weak-scaling experiment."""

    app_name: str
    device_name: str
    points: list[ScalingPoint] = field(default_factory=list)

    def point(self, n_gpus: int, target_name: str) -> ScalingPoint:
        """Look one configuration up."""
        for p in self.points:
            if p.n_gpus == n_gpus and p.target_name == target_name:
                return p
        raise ConfigurationError(
            f"no point for {n_gpus} GPUs / target {target_name!r}"
        )

    def baseline(self, n_gpus: int) -> ScalingPoint:
        """The default-frequency point at one GPU count."""
        return self.point(n_gpus, "default")

    def savings_table(self) -> list[dict[str, object]]:
        """Per GPU count, fractional energy saving of every target."""
        rows = []
        counts = sorted({p.n_gpus for p in self.points})
        targets = sorted({p.target_name for p in self.points} - {"default"})
        for n in counts:
            base = self.baseline(n)
            row: dict[str, object] = {"n_gpus": n}
            for t in targets:
                row[t] = self.point(n, t).energy_saving_vs(base)
            rows.append(row)
        return rows


def run_scaling_experiment(
    app_factory: Callable[[], MpiMiniApp],
    gpu_counts: Sequence[int] = (4, 8, 16, 32, 64),
    targets: Sequence[EnergyTarget] = FIG10_TARGETS,
    spec: GPUSpec = NVIDIA_V100,
    bundle: EnergyModelBundle | None = None,
    network: NetworkModel | None = None,
) -> ScalingResult:
    """Run the Fig. 10 experiment for one application.

    ``bundle`` defaults to the paper's per-objective best models trained on
    the micro-benchmark suite of this device.
    """
    for count in gpu_counts:
        if count < 1 or count % GPUS_PER_NODE:
            raise ValidationError(
                f"GPU counts must be positive multiples of {GPUS_PER_NODE} "
                f"(got {count})"
            )
    fitted = bundle
    if fitted is None:
        fitted = EnergyModelBundle().fit(microbench_training_set(spec))

    template = app_factory()
    compiler = SynergyCompiler(fitted, spec)
    compiled = compiler.compile(list(template.timestep_kernels()), targets)

    result = ScalingResult(app_name=template.name, device_name=spec.name)
    for count in gpu_counts:
        cluster = Cluster.build(
            spec,
            n_nodes=count // GPUS_PER_NODE,
            gpus_per_node=GPUS_PER_NODE,
            gres={NVGPUFREQ_GRES},
        )
        scheduler = Scheduler(cluster, plugins=[NvGpuFreqPlugin()])
        for target in (None, *targets):
            app = app_factory()

            def payload(
                context: JobContext,
                target: EnergyTarget | None = target,
                app: MpiMiniApp = app,
            ) -> AppReport:
                comm = launch_ranks(context, network=network)
                return app.run(comm, target=target, plan=compiled.plan)

            job = scheduler.submit(
                JobSpec(
                    name=f"{template.name}-{count}gpu-"
                    f"{target.name if target else 'default'}",
                    n_nodes=count // GPUS_PER_NODE,
                    exclusive=True,
                    gres=frozenset({NVGPUFREQ_GRES}),
                    payload=payload,
                )
            )
            if job.error is not None:
                raise ConfigurationError(
                    f"scaling job failed: {job.error} ({job.spec.name})"
                )
            report = job.result
            assert isinstance(report, AppReport)
            result.points.append(
                ScalingPoint(
                    app_name=report.app_name,
                    n_gpus=count,
                    target_name=report.target_name,
                    elapsed_s=report.elapsed_s,
                    gpu_energy_j=report.gpu_energy_j,
                    comm_time_s=report.comm_time_max_s,
                )
            )
    return result
