"""Model training over the micro-benchmark suite (paper §6.1, §8.3).

The paper compares four regression families. :func:`make_bundle` builds an
:class:`~repro.core.models.EnergyModelBundle` whose four targets all use one
family (for the per-algorithm comparison); :func:`train_bundles` fits one
bundle per family on the same micro-benchmark training set.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.core.models import EnergyModelBundle, TrainingSet, build_training_set
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.kernelir.microbench import generate_microbenchmarks
from repro.ml.forest import RandomForestRegressor
from repro.ml.lasso import Lasso
from repro.ml.linear import LinearRegression
from repro.ml.svr import SVR

#: The §8.3 algorithm families, in the paper's column order.
ALGORITHM_NAMES: tuple[str, ...] = ("Linear", "Lasso", "RandomForest", "SVR")


def _factory(algorithm: str, seed: int):
    if algorithm == "Linear":
        return LinearRegression
    if algorithm == "Lasso":
        return lambda: Lasso(alpha=1e-4, max_iter=2000)
    if algorithm == "RandomForest":
        return lambda: RandomForestRegressor(
            n_estimators=30, max_depth=14, min_samples_leaf=2, seed=seed
        )
    if algorithm == "SVR":
        return lambda: SVR(C=50.0, epsilon=1e-3, max_iter=200)
    raise ConfigurationError(
        f"unknown algorithm {algorithm!r}; known: {list(ALGORITHM_NAMES)}"
    )


def make_bundle(algorithm: str, seed: int = 11) -> EnergyModelBundle:
    """Bundle whose four target models all use one algorithm family."""
    factory = _factory(algorithm, seed)
    return EnergyModelBundle(
        time_factory=factory,
        energy_factory=factory,
        edp_factory=factory,
        ed2p_factory=factory,
        seed=seed,
    )


def microbench_training_set(
    spec: GPUSpec,
    freq_stride: int = 4,
    random_count: int = 24,
    kernels: Sequence[KernelIR] | None = None,
) -> TrainingSet:
    """Sweep the micro-benchmark suite on a device (training steps ①–②).

    ``freq_stride`` subsamples the frequency table to keep per-family
    training tractable (196 V100 clocks → 49 at the default stride).
    """
    if freq_stride < 1:
        raise ConfigurationError(f"freq_stride must be >= 1 ({freq_stride!r})")
    suite = (
        list(kernels)
        if kernels is not None
        else generate_microbenchmarks(random_count=random_count)
    )
    freqs = spec.core_freqs_mhz[::freq_stride]
    return build_training_set(spec, suite, core_freqs_mhz=freqs)


def train_bundles(
    spec: GPUSpec,
    training: TrainingSet | None = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    seed: int = 11,
) -> dict[str, EnergyModelBundle]:
    """Fit one single-family bundle per algorithm on a shared training set."""
    data = training if training is not None else microbench_training_set(spec)
    bundles: dict[str, EnergyModelBundle] = {}
    for algorithm in algorithms:
        bundles[algorithm] = make_bundle(algorithm, seed=seed).fit(data)
    return bundles
