"""Chaos sweep: energy-target quality under injected faults.

The resilience ablation the robustness work is for: run one mini-app at a
fixed energy target while sweeping the transient NVML clock-set failure
rate (optionally stacking further faults — a scheduled node failure, sensor
dropouts, a degraded link). Each rate gets a fresh cluster armed with a
seeded :class:`~repro.faults.plan.FaultPlan`; the point records how the
per-kernel tuning machinery held up:

- did the job complete (requeues after node failures included),
- time and GPU energy actually spent,
- how many clock-sets needed retries and how many kernels degraded to
  driver-default clocks (their target was best-effort only),
- full fault-log accounting (faults injected vs recoveries taken).

Everything derives from the plan seed, so a sweep is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.apps.miniapp import AppReport, MpiMiniApp
from repro.common.errors import ConfigurationError, ValidationError
from repro.core.compiler import SynergyCompiler
from repro.core.models import EnergyModelBundle
from repro.experiments.training import microbench_training_set
from repro.faults import FaultSpec, transient_nvml_plan
from repro.hw.specs import GPUSpec, NVIDIA_V100
from repro.metrics.targets import EnergyTarget, MIN_EDP
from repro.mpi.launcher import launch_ranks
from repro.mpi.network import NetworkModel
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import JobContext, JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler

#: Default fault-rate grid of the sweep (0 is the control point).
DEFAULT_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class ChaosPoint:
    """One sweep point: an (app, fault rate) configuration's outcome."""

    fault_rate: float
    state: str
    requeues: int
    elapsed_s: float
    gpu_energy_j: float
    kernel_launches: int
    clock_retries: int
    degraded_kernels: int
    energy_fallbacks: int
    faults_injected: int
    recoveries: int
    fault_counts: dict[str, int]

    @property
    def degraded_fraction(self) -> float:
        """Share of kernel launches whose clock request was best-effort."""
        if not self.kernel_launches:
            return 0.0
        return self.degraded_kernels / self.kernel_launches


@dataclass
class ChaosResult:
    """All points of one chaos sweep."""

    app_name: str
    device_name: str
    target_name: str
    seed: int
    points: list[ChaosPoint] = field(default_factory=list)

    def point(self, fault_rate: float) -> ChaosPoint:
        """Look one fault rate up."""
        for p in self.points:
            if p.fault_rate == fault_rate:
                return p
        raise ConfigurationError(f"no point for fault rate {fault_rate!r}")

    def energy_overhead(self, fault_rate: float) -> float:
        """Fractional GPU-energy cost of a fault rate vs the 0-rate control."""
        base = self.point(0.0)
        return self.point(fault_rate).gpu_energy_j / base.gpu_energy_j - 1.0

    def rows(self) -> list[dict[str, object]]:
        """Plain-dict rows (stable order) for tables and JSON export."""
        return [
            {
                "fault_rate": p.fault_rate,
                "state": p.state,
                "requeues": p.requeues,
                "elapsed_s": p.elapsed_s,
                "gpu_energy_j": p.gpu_energy_j,
                "kernel_launches": p.kernel_launches,
                "clock_retries": p.clock_retries,
                "degraded_kernels": p.degraded_kernels,
                "degraded_fraction": p.degraded_fraction,
                "energy_fallbacks": p.energy_fallbacks,
                "faults_injected": p.faults_injected,
                "recoveries": p.recoveries,
                "fault_counts": dict(sorted(p.fault_counts.items())),
            }
            for p in self.points
        ]


def run_fault_sweep(
    app_factory: Callable[[], MpiMiniApp],
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    n_nodes: int = 2,
    spare_nodes: int = 0,
    gpus_per_node: int = 4,
    target: EnergyTarget | None = MIN_EDP,
    spec: GPUSpec = NVIDIA_V100,
    bundle: EnergyModelBundle | None = None,
    network: NetworkModel | None = None,
    extra_specs: tuple[FaultSpec, ...] = (),
) -> ChaosResult:
    """Sweep the transient clock-set fault rate for one application.

    The job requests ``n_nodes``; the cluster is provisioned with
    ``n_nodes + spare_nodes`` so a scheduled node failure (passed through
    ``extra_specs``) leaves enough healthy nodes for the requeue.
    """
    if not rates:
        raise ValidationError("chaos sweep needs at least one fault rate")
    if spare_nodes < 0:
        raise ValidationError(f"spare_nodes cannot be negative ({spare_nodes!r})")
    fitted = bundle
    if fitted is None and target is not None:
        fitted = EnergyModelBundle().fit(microbench_training_set(spec))

    template = app_factory()
    plan = None
    if target is not None:
        compiler = SynergyCompiler(fitted, spec)
        plan = compiler.compile(list(template.timestep_kernels()), (target,)).plan

    result = ChaosResult(
        app_name=template.name,
        device_name=spec.name,
        target_name=target.name if target is not None else "default",
        seed=seed,
    )
    for rate in rates:
        fault_plan = transient_nvml_plan(rate, seed=seed, extra=extra_specs)
        cluster = Cluster.build(
            spec,
            n_nodes=n_nodes + spare_nodes,
            gpus_per_node=gpus_per_node,
            gres={NVGPUFREQ_GRES},
            fault_plan=fault_plan,
        )
        scheduler = Scheduler(cluster, plugins=[NvGpuFreqPlugin()])
        app = app_factory()

        def payload(
            context: JobContext, app: MpiMiniApp = app
        ) -> AppReport:
            comm = launch_ranks(context, network=network)
            return app.run(comm, target=target, plan=plan)

        job = scheduler.submit(
            JobSpec(
                name=f"{template.name}-chaos-{rate:g}",
                n_nodes=n_nodes,
                exclusive=True,
                gres=frozenset({NVGPUFREQ_GRES}),
                payload=payload,
            )
        )
        requeues = 0
        probe = job
        while probe.requeue_of is not None:
            requeues += 1
            probe = scheduler.jobs[probe.requeue_of]
        report = job.result if isinstance(job.result, AppReport) else None
        log = cluster.fault_injector.log
        result.points.append(
            ChaosPoint(
                fault_rate=rate,
                state=job.state.value,
                requeues=requeues,
                elapsed_s=report.elapsed_s if report else 0.0,
                gpu_energy_j=report.gpu_energy_j if report else 0.0,
                kernel_launches=report.kernel_launches if report else 0,
                clock_retries=report.clock_retries if report else 0,
                degraded_kernels=report.degraded_kernels if report else 0,
                energy_fallbacks=report.energy_fallbacks if report else 0,
                faults_injected=len(log.faults),
                recoveries=len(log.recoveries),
                fault_counts=log.counts(),
            )
        )
        # A point that could not complete is itself a result (the edge of
        # the resilience envelope), so the sweep continues regardless.
    return result
