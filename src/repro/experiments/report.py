"""ASCII report formatting for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ValidationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render a fixed-width table (floats via ``float_fmt``)."""
    if not headers:
        raise ValidationError("table needs headers")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValidationError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>12.6g}  {y:>12.6g}")
    return "\n".join(lines)
