"""Benchmark characterization (Figs. 2, 7, 8) and the fine-vs-coarse ablation.

:func:`characterize` produces the speedup/normalized-energy summary the
paper plots per benchmark; :func:`fine_vs_coarse` quantifies §2.2's central
claim — per-kernel (fine-grained) frequency selection beats the best single
frequency for a whole multi-kernel application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.sweep import FrequencySweep, sweep_kernel
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget


@dataclass(frozen=True)
class CharacterizationResult:
    """Summary of one benchmark's Pareto structure on one device."""

    sweep: FrequencySweep
    #: Speedup range across Pareto-optimal configurations (Fig. 7 analysis).
    pareto_speedup_min: float
    pareto_speedup_max: float
    #: Largest energy saving vs default among Pareto points (fraction).
    max_energy_saving: float
    #: Performance loss (fraction) at the maximum-energy-saving point.
    loss_at_max_saving: float
    #: Whether the default configuration is itself Pareto-optimal.
    default_is_pareto: bool


def characterize(spec: GPUSpec, kernel: KernelIR) -> CharacterizationResult:
    """Sweep a kernel and summarize its Pareto front."""
    sweep = sweep_kernel(spec, kernel)
    mask = sweep.pareto_mask
    speedups = sweep.speedup[mask]
    energies = sweep.normalized_energy[mask]
    best_saving_idx = int(np.argmin(energies))
    return CharacterizationResult(
        sweep=sweep,
        pareto_speedup_min=float(speedups.min()),
        pareto_speedup_max=float(speedups.max()),
        max_energy_saving=float(1.0 - energies.min()),
        loss_at_max_saving=float(1.0 - speedups[best_saving_idx]),
        default_is_pareto=bool(mask[sweep.default_index]),
    )


@dataclass(frozen=True)
class FineVsCoarseResult:
    """Energy comparison between tuning granularities for one target."""

    target_name: str
    #: Total energy with per-kernel frequencies (fine-grained, §2.2).
    fine_energy_j: float
    fine_time_s: float
    #: Total energy with the single best application-wide frequency.
    coarse_energy_j: float
    coarse_time_s: float
    #: Fraction of coarse energy saved by going fine-grained.
    fine_advantage: float


def fine_vs_coarse(
    spec: GPUSpec, kernels: Sequence[KernelIR], target: EnergyTarget
) -> FineVsCoarseResult:
    """Compare per-kernel tuning against the best single frequency.

    *Fine-grained* resolves the target independently per kernel and sums
    the per-kernel optima. *Coarse-grained* evaluates every single
    frequency applied to all kernels, resolves the target on the summed
    curves, and reports that optimum — the best any application-wide
    setting could do.
    """
    sweeps = [sweep_kernel(spec, k) for k in kernels]
    freqs = sweeps[0].freqs_mhz
    default_index = sweeps[0].default_index

    fine_time = 0.0
    fine_energy = 0.0
    for sweep in sweeps:
        idx = sweep.resolve(target)
        fine_time += float(sweep.time_s[idx])
        fine_energy += float(sweep.energy_j[idx])

    total_time = np.sum([s.time_s for s in sweeps], axis=0)
    total_energy = np.sum([s.energy_j for s in sweeps], axis=0)
    coarse_idx = target.resolve_index(freqs, total_time, total_energy, default_index)
    coarse_time = float(total_time[coarse_idx])
    coarse_energy = float(total_energy[coarse_idx])

    return FineVsCoarseResult(
        target_name=target.name,
        fine_energy_j=fine_energy,
        fine_time_s=fine_time,
        coarse_energy_j=coarse_energy,
        coarse_time_s=coarse_time,
        fine_advantage=1.0 - fine_energy / coarse_energy,
    )
