"""JSON export of experiment results (artifact-evaluation style).

Every harness result maps to a plain JSON document so downstream tooling
(plotting scripts, the AD/AE appendix workflow the paper mentions) can
consume reproduction data without importing this package.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.accuracy import AccuracyAnalysis
from repro.experiments.characterization import CharacterizationResult
from repro.experiments.faults import ChaosResult
from repro.experiments.scaling import ScalingResult
from repro.experiments.sweep import FrequencySweep
from repro.faults import FaultLog


def sweep_to_dict(sweep: FrequencySweep) -> dict:
    """Full per-frequency series of one kernel sweep."""
    return {
        "kind": "frequency_sweep",
        "kernel": sweep.kernel_name,
        "device": sweep.device_name,
        "default_index": sweep.default_index,
        "freqs_mhz": sweep.freqs_mhz.tolist(),
        "time_s": sweep.time_s.tolist(),
        "energy_j": sweep.energy_j.tolist(),
        "speedup": sweep.speedup.tolist(),
        "normalized_energy": sweep.normalized_energy.tolist(),
        "pareto_mask": sweep.pareto_mask.tolist(),
    }


def characterization_to_dict(result: CharacterizationResult) -> dict:
    """Summary + full sweep of one characterization run (Figs. 2/7/8)."""
    return {
        "kind": "characterization",
        "summary": {
            "pareto_speedup_min": result.pareto_speedup_min,
            "pareto_speedup_max": result.pareto_speedup_max,
            "max_energy_saving": result.max_energy_saving,
            "loss_at_max_saving": result.loss_at_max_saving,
            "default_is_pareto": result.default_is_pareto,
        },
        "sweep": sweep_to_dict(result.sweep),
    }


def scaling_to_dict(result: ScalingResult) -> dict:
    """All points of a Fig. 10 weak-scaling run."""
    return {
        "kind": "scaling",
        "app": result.app_name,
        "device": result.device_name,
        "points": [
            {
                "n_gpus": p.n_gpus,
                "target": p.target_name,
                "elapsed_s": p.elapsed_s,
                "gpu_energy_j": p.gpu_energy_j,
                "comm_time_s": p.comm_time_s,
            }
            for p in result.points
        ],
    }


def accuracy_to_dict(analysis: AccuracyAnalysis) -> dict:
    """All prediction records plus the Table 2 aggregate."""
    def _clean(value):
        return None if isinstance(value, float) and np.isnan(value) else value

    return {
        "kind": "accuracy",
        "device": analysis.device_name,
        "records": [
            {
                "benchmark": r.benchmark,
                "objective": r.objective,
                "algorithm": r.algorithm,
                "predicted_freq_mhz": r.predicted_freq_mhz,
                "actual_freq_mhz": r.actual_freq_mhz,
                "predicted_value": r.predicted_value,
                "actual_value": r.actual_value,
                "ape": r.ape,
            }
            for r in analysis.records
        ],
        "table2": [
            {key: _clean(value) for key, value in row.items()}
            for row in analysis.table2()
        ],
    }


def chaos_to_dict(result: ChaosResult) -> dict:
    """All points of a chaos sweep (resilience vs fault rate)."""
    return {
        "kind": "chaos_sweep",
        "app": result.app_name,
        "device": result.device_name,
        "target": result.target_name,
        "seed": result.seed,
        "points": result.rows(),
    }


def fault_log_to_dicts(log: FaultLog) -> list[dict]:
    """A fault log as plain dicts (byte-stable for determinism checks)."""
    return log.to_dicts()


def write_json(payload: dict, path: str | Path) -> Path:
    """Write an exported document to disk; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path
