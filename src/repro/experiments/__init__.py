"""Experiment harnesses reproducing the paper's tables and figures.

Each module is a reusable building block; the ``benchmarks/`` tree wires
them into one pytest-benchmark target per table/figure (see DESIGN.md's
experiment index):

- :mod:`~repro.experiments.sweep` — per-kernel frequency sweeps (the
  measurement underlying Figs. 2, 4, 5, 7, 8),
- :mod:`~repro.experiments.characterization` — speedup/normalized-energy
  characterization and Pareto fronts; fine- vs coarse-grained tuning,
- :mod:`~repro.experiments.training` — micro-benchmark training sets and
  per-algorithm model bundles (§6.1),
- :mod:`~repro.experiments.accuracy` — the §8.3 prediction-accuracy
  protocol (Fig. 9 APE, Table 2 RMSE/MAPE),
- :mod:`~repro.experiments.scaling` — the §8.4 multi-node weak-scaling
  experiment on the simulated Marconi-100 (Fig. 10),
- :mod:`~repro.experiments.report` — ASCII tables/series matching the
  paper's presentation,
- :mod:`~repro.experiments.perf` — the tracked perf benchmark of the
  vectorized fast paths (docs/PERFORMANCE.md).
"""

from repro.experiments.accuracy import AccuracyAnalysis, run_accuracy_analysis
from repro.experiments.characterization import (
    CharacterizationResult,
    characterize,
    fine_vs_coarse,
)
from repro.experiments.perf import run_perf_pipeline
from repro.experiments.report import format_series, format_table
from repro.experiments.scaling import ScalingResult, run_scaling_experiment
from repro.experiments.sweep import (
    FrequencySweep,
    FrequencySweep2D,
    sweep_kernel,
    sweep_kernel_2d,
)
from repro.experiments.training import ALGORITHM_NAMES, make_bundle, train_bundles

__all__ = [
    "FrequencySweep",
    "FrequencySweep2D",
    "sweep_kernel",
    "sweep_kernel_2d",
    "run_perf_pipeline",
    "CharacterizationResult",
    "characterize",
    "fine_vs_coarse",
    "ALGORITHM_NAMES",
    "make_bundle",
    "train_bundles",
    "AccuracyAnalysis",
    "run_accuracy_analysis",
    "ScalingResult",
    "run_scaling_experiment",
    "format_table",
    "format_series",
]
