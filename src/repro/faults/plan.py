"""Fault plans: *what* can go wrong, *where*, and *when*.

A :class:`FaultPlan` is a declarative, seeded description of the faults an
experiment injects: a list of :class:`FaultSpec` entries, each bound to one
injection *site* (a named hook inside the stack — an NVML call, the power
sensor's sampling grid, the SLURM node lifecycle, an MPI collective). Specs
fire either probabilistically (an independent seeded draw per invocation)
or at a scheduled virtual timestamp; window sites stay active for a
duration. Because everything derives from the plan seed and the simulation
is single-threaded virtual time, identical plans produce byte-identical
fault sequences — chaos runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Known injection sites, by layer. Validation catches typo'd site names at
#: plan construction instead of silently never firing.
FAULT_SITES: frozenset[str] = frozenset(
    {
        # vendor: the simulated NVML entry points
        "nvml.set_clocks",      # transient failure of a clock-set/reset call
        "nvml.power_read",      # transient failure of a power/energy read
        "nvml.gpu_lost",        # persistent: the board falls off the bus
        # hw: the board and its power sensor
        "hw.thermal_throttle",  # window: core clock capped at `param` MHz
        "hw.sensor_dropout",    # a sensor sample is dropped
        "hw.sensor_stuck",      # window: the sensor repeats its last value
        # slurm: node lifecycle and the plugin's prologue
        "slurm.node_fail",      # the node dies (detected at the next sync)
        "slurm.dlopen_fail",    # the NVML shared object fails to load
        "slurm.prologue_fail",  # the prologue itself crashes
        # mpi: ranks and links
        "mpi.rank_fail",        # one rank dies (detected at the next sync)
        "mpi.link_degraded",    # window: link bandwidth scaled by `param`
    }
)

#: Sites whose faults are windows (active over ``[at_s, at_s + duration_s)``)
#: rather than one-shot events.
WINDOW_SITES: frozenset[str] = frozenset(
    {"hw.thermal_throttle", "hw.sensor_stuck", "mpi.link_degraded"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source bound to an injection site.

    Attributes
    ----------
    site:
        Injection site name (one of :data:`FAULT_SITES`).
    probability:
        Per-invocation firing probability (independent seeded draws).
        Mutually exclusive with ``at_s``.
    at_s:
        Virtual timestamp: the fault fires at the first site invocation at
        or after this time (window sites: activation start).
    target:
        Restrict the spec to one entity — a device index for vendor/hw
        sites, a node name for slurm sites, a rank for mpi sites. ``None``
        matches every entity passing through the site.
    count:
        Maximum number of firings. Defaults to 1 for scheduled faults and
        unlimited (0) for probabilistic ones.
    param:
        Site-specific magnitude: the throttle cap in MHz
        (``hw.thermal_throttle``) or the remaining bandwidth fraction in
        ``(0, 1]`` (``mpi.link_degraded``).
    duration_s:
        Window length for window sites.
    code:
        Vendor error code override for ``nvml.*`` transient sites.
    """

    site: str
    probability: float = 0.0
    at_s: float | None = None
    target: object | None = None
    count: int = 0
    param: float | None = None
    duration_s: float | None = None
    code: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; known: "
                f"{', '.join(sorted(FAULT_SITES))}"
            )
        scheduled = self.at_s is not None
        if scheduled == (self.probability > 0.0):
            raise ValidationError(
                f"fault spec for {self.site!r} needs exactly one of "
                "probability > 0 or at_s"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"probability must be in [0, 1] ({self.probability!r})"
            )
        if scheduled and self.at_s < 0.0:
            raise ValidationError(f"at_s cannot be negative ({self.at_s!r})")
        if self.count < 0:
            raise ValidationError(f"count cannot be negative ({self.count!r})")
        if scheduled and self.count == 0:
            # A scheduled fault without an explicit count fires once.
            object.__setattr__(self, "count", 1)
        if self.site in WINDOW_SITES:
            if not scheduled or self.duration_s is None or self.duration_s <= 0:
                raise ValidationError(
                    f"window site {self.site!r} needs at_s and a positive "
                    "duration_s"
                )
            if self.site == "mpi.link_degraded" and not (
                self.param is not None and 0.0 < self.param <= 1.0
            ):
                raise ValidationError(
                    "mpi.link_degraded needs param in (0, 1] "
                    "(remaining bandwidth fraction)"
                )
            if self.site == "hw.thermal_throttle" and not (
                self.param is not None and self.param > 0
            ):
                raise ValidationError(
                    "hw.thermal_throttle needs param > 0 (core cap in MHz)"
                )
        elif self.duration_s is not None:
            raise ValidationError(
                f"duration_s only applies to window sites ({self.site!r})"
            )

    @property
    def scheduled(self) -> bool:
        """Whether the spec fires at a virtual timestamp (vs per-draw)."""
        return self.at_s is not None

    def matches(self, target: object | None) -> bool:
        """Whether this spec applies to an entity passing the site."""
        return self.target is None or self.target == target


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs — the full chaos scenario.

    The plan is immutable and hashable-by-content so experiment reports can
    reference it; :meth:`injector` builds the live
    :class:`~repro.faults.injector.FaultInjector` for one run.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        """All specs bound to one site."""
        return tuple(s for s in self.specs if s.site == site)

    def injector(self, trace=None):
        """Build a fresh injector (fresh RNG streams and fault log)."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, trace=trace)


def transient_nvml_plan(
    rate: float, seed: int = 0, extra: tuple[FaultSpec, ...] = ()
) -> FaultPlan:
    """Convenience plan: transient NVML clock-set failures at ``rate``.

    The building block of the chaos sweep: every clock-set call fails with
    ``NVML_ERROR_UNKNOWN`` with probability ``rate``; ``extra`` specs are
    appended (node failures, sensor dropouts, ...).
    """
    if rate < 0.0 or rate > 1.0:
        raise ValidationError(f"fault rate must be in [0, 1] ({rate!r})")
    specs: tuple[FaultSpec, ...] = ()
    if rate > 0.0:
        specs = (FaultSpec(site="nvml.set_clocks", probability=rate),)
    return FaultPlan(seed=seed, specs=specs + tuple(extra))
