"""The live fault-injection engine and its structured log.

A :class:`FaultInjector` is instantiated once per run from a
:class:`~repro.faults.plan.FaultPlan` and threaded through the stack
(``Cluster.build`` attaches it to every node and GPU; standalone tests
attach it by hand). Components consult it at their injection sites:

- :meth:`FaultInjector.fires` — one-shot faults (probabilistic draws and
  scheduled events),
- :meth:`FaultInjector.active` — window faults (thermal throttle, stuck
  sensor, degraded link),
- :meth:`FaultInjector.device_lost` / :meth:`mark_device_lost` — the
  persistent GPU-is-lost state machine.

Every injected fault and every recovery action lands in the
:class:`FaultLog`, so an experiment report can account for each fault and
show what the runtime did about it. All randomness comes from per-spec
seeded streams derived from the plan seed; with a fixed plan and workload,
logs are byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FaultInjectionError
from repro.common.rng import derive_seed, make_rng
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.session import TraceSession, resolve_trace


class NodeFailure(FaultInjectionError):
    """A compute node died mid-job (the ``slurm.node_fail`` site)."""

    def __init__(self, nodes: tuple[str, ...], t: float) -> None:
        self.nodes = tuple(nodes)
        self.t = float(t)
        super().__init__(
            f"node failure at t={self.t:.6f}s: {', '.join(self.nodes)}"
        )


class RankFailure(FaultInjectionError):
    """An MPI rank died mid-job (the ``mpi.rank_fail`` site)."""

    def __init__(self, rank: int, t: float) -> None:
        self.rank = int(rank)
        self.t = float(t)
        super().__init__(f"rank {self.rank} failed at t={self.t:.6f}s")


@dataclass(frozen=True)
class FaultRecord:
    """One log entry: an injected fault or a recovery action."""

    t: float
    kind: str  # "fault" | "recovery"
    site: str
    target: str
    detail: str

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON export and byte-comparison."""
        return {
            "t": self.t,
            "kind": self.kind,
            "site": self.site,
            "target": self.target,
            "detail": self.detail,
        }


@dataclass
class FaultLog:
    """Ordered record of every injected fault and recovery action.

    With a trace session attached, every entry is mirrored as an instant
    on the ``faults`` track and counted, so the exported timeline shows
    injections and recovery actions in place.
    """

    entries: list[FaultRecord] = field(default_factory=list)
    trace: "TraceSession | None" = field(default=None, repr=False)

    def record_fault(
        self, t: float, site: str, target: object = None, detail: str = ""
    ) -> None:
        """Log one injected fault."""
        self.entries.append(
            FaultRecord(float(t), "fault", site, _target_str(target), detail)
        )
        if self.trace is not None and self.trace.enabled:
            self.trace.instant(
                float(t), "faults", "fault", site,
                target=_target_str(target), detail=detail,
            )
            self.trace.count("faults.injected")
            self.trace.count(f"faults.site.{site}")

    def record_recovery(
        self, t: float, site: str, target: object = None, detail: str = ""
    ) -> None:
        """Log one recovery action taken in response to faults."""
        self.entries.append(
            FaultRecord(float(t), "recovery", site, _target_str(target), detail)
        )
        if self.trace is not None and self.trace.enabled:
            self.trace.instant(
                float(t), "faults", "recovery", site,
                target=_target_str(target), detail=detail,
            )
            self.trace.count("faults.recoveries")

    @property
    def faults(self) -> tuple[FaultRecord, ...]:
        """Injected faults only, in injection order."""
        return tuple(e for e in self.entries if e.kind == "fault")

    @property
    def recoveries(self) -> tuple[FaultRecord, ...]:
        """Recovery actions only, in order."""
        return tuple(e for e in self.entries if e.kind == "recovery")

    def counts(self) -> dict[str, int]:
        """Injected-fault count per site."""
        out: dict[str, int] = {}
        for e in self.faults:
            out[e.site] = out.get(e.site, 0) + 1
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        """The whole log as plain dicts (stable, JSON-serializable)."""
        return [e.as_dict() for e in self.entries]


def _target_str(target: object) -> str:
    return "" if target is None else str(target)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against live site invocations."""

    def __init__(self, plan: FaultPlan, trace: "TraceSession | None" = None) -> None:
        self.plan = plan
        self.trace = resolve_trace(trace)
        self.log = FaultLog(trace=trace)
        # One independent RNG stream per probabilistic spec, derived from
        # the plan seed + the spec's position: firing decisions for one
        # site never perturb another site's stream.
        self._rngs = {
            i: make_rng(derive_seed(plan.seed, spec.site, i))
            for i, spec in enumerate(plan.specs)
            if not spec.scheduled
        }
        # Site → [(plan index, spec), ...] in plan order. ``fires``/``active``
        # only ever match specs of the invoked site, so walking this index
        # instead of the whole plan is behaviour-preserving (first-match
        # order and per-spec RNG draw counts are unchanged) while making
        # unarmed sites O(1) — the common case on hot collective paths.
        self._by_site: dict[str, list[tuple[int, FaultSpec]]] = {}
        for i, spec in enumerate(plan.specs):
            self._by_site.setdefault(spec.site, []).append((i, spec))
        self._fired = [0] * len(plan.specs)
        # Window specs currently known to be active (logged once).
        self._activated: set[int] = set()
        self._lost_devices: set[int] = set()

    def armed(self, site: str) -> bool:
        """Whether the plan has any spec at ``site``.

        When False, :meth:`fires`/:meth:`active` at that site are guaranteed
        no-ops (no match, no RNG draw), so per-target polling loops can be
        skipped wholesale without changing behaviour or stream state.
        """
        return site in self._by_site

    # ------------------------------------------------------------- one-shot

    def fires(
        self, site: str, now: float, target: object = None, detail: str = ""
    ) -> FaultSpec | None:
        """Check a one-shot site invocation; logs and returns the spec hit.

        Scheduled specs fire at the first invocation at/after ``at_s``;
        probabilistic specs draw from their seeded stream. At most one spec
        fires per invocation (the first match in plan order).
        """
        for i, spec in self._by_site.get(site, ()):
            if not spec.matches(target):
                continue
            if spec.count and self._fired[i] >= spec.count:
                continue
            if spec.scheduled:
                if now < spec.at_s:
                    continue
            elif not self._rngs[i].random() < spec.probability:
                continue
            self._fired[i] += 1
            self.log.record_fault(now, site, target, detail)
            return spec
        return None

    # -------------------------------------------------------------- windows

    def active(
        self, site: str, now: float, target: object = None
    ) -> FaultSpec | None:
        """Check whether a window fault covers ``now`` for ``target``.

        The first invocation inside the window logs the fault; later
        invocations return the spec silently (the fault is one event, even
        if it affects many operations).
        """
        for i, spec in self._by_site.get(site, ()):
            if not spec.matches(target):
                continue
            if not spec.scheduled or spec.duration_s is None:
                continue
            if spec.at_s <= now < spec.at_s + spec.duration_s:
                if i not in self._activated:
                    self._activated.add(i)
                    self._fired[i] += 1
                    self.log.record_fault(
                        now, site, target,
                        f"window [{spec.at_s:.6f}, "
                        f"{spec.at_s + spec.duration_s:.6f}]s",
                    )
                return spec
        return None

    # ------------------------------------------------------ persistent loss

    def mark_device_lost(self, index: int) -> None:
        """Transition a board to the persistent lost state."""
        self._lost_devices.add(int(index))

    def device_lost(self, index: int) -> bool:
        """Whether a board is in the lost state."""
        return int(index) in self._lost_devices

    # ------------------------------------------------------------ reporting

    @property
    def total_faults(self) -> int:
        """Number of faults injected so far."""
        return len(self.log.faults)
