"""Deterministic fault-injection plane (``repro.faults``).

Seeded, virtual-time chaos engineering for the SYnergy stack: declare a
:class:`FaultPlan` (per-site fault specs — probabilistic or scheduled),
attach its :class:`FaultInjector` to a cluster, and the vendor/hw/slurm/mpi
layers inject the declared faults while the runtime's resilience paths
(clock-set retries, sensor fallback, node drain + requeue, epilogue clock
restore) recover. Every fault and recovery is recorded in the
:class:`FaultLog`; identical plans reproduce identical logs.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultLog,
    FaultRecord,
    NodeFailure,
    RankFailure,
)
from repro.faults.plan import (
    FAULT_SITES,
    WINDOW_SITES,
    FaultPlan,
    FaultSpec,
    transient_nvml_plan,
)

__all__ = [
    "FAULT_SITES",
    "WINDOW_SITES",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "NodeFailure",
    "RankFailure",
    "transient_nvml_plan",
]
