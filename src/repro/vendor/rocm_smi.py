"""Simulated AMD ROCm System Management Interface.

Implements the ROCm-SMI call subset SYnergy's AMD binding uses. Unlike NVML,
ROCm SMI addresses devices by integer index (no handles), reports power in
**microwatts**, and selects clocks through discrete *performance levels* via
a frequency bitmask (``rsmi_dev_gpu_clk_freq_set``). The MI100 exposes 16
such levels (Fig. 1). With the device in ``AUTO`` performance mode the
driver picks the top level under load — the paper's observation that the
MI100 default is always the fastest configuration (Fig. 8).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.hw.device import ClockPermissionError, SimulatedGPU
from repro.hw.sensor import PowerSensor
from repro.vendor.errors import (
    RSMI_STATUS_INVALID_ARGS,
    RSMI_STATUS_NOT_SUPPORTED,
    RSMI_STATUS_PERMISSION,
    RSMI_STATUS_UNINITIALIZED,
    RocmSMIError,
)

#: ``rsmi_clk_type_t`` values (subset).
RSMI_CLK_TYPE_SYS = 0  # shader/system clock
RSMI_CLK_TYPE_MEM = 4

#: ``rsmi_dev_perf_level_t`` values (subset).
RSMI_DEV_PERF_LEVEL_AUTO = 0
RSMI_DEV_PERF_LEVEL_MANUAL = 4


class ROCmSMILibrary:
    """One loaded instance of the simulated ``librocm_smi64`` library."""

    def __init__(self, devices: list[SimulatedGPU], *, available: bool = True) -> None:
        for dev in devices:
            if dev.spec.vendor != "amd":
                raise ConfigurationError(
                    f"ROCm SMI cannot manage non-AMD device {dev.spec.name!r}"
                )
        self._devices = list(devices)
        self._sensors = [PowerSensor(dev) for dev in devices]
        self._initialized = False
        self.available = bool(available)
        self.effective_root = False
        self._perf_level = [RSMI_DEV_PERF_LEVEL_AUTO] * len(devices)

    # ------------------------------------------------------------- lifecycle

    def rsmi_init(self, flags: int = 0) -> None:
        """Initialize the library."""
        if not self.available:
            raise RocmSMIError(RSMI_STATUS_NOT_SUPPORTED, "librocm_smi64 not found")
        self._initialized = True

    def rsmi_shut_down(self) -> None:
        """Shut the library down."""
        self._require_init()
        self._initialized = False

    def _require_init(self) -> None:
        if not self._initialized:
            raise RocmSMIError(RSMI_STATUS_UNINITIALIZED)

    def _resolve(self, index: int) -> SimulatedGPU:
        self._require_init()
        if not 0 <= index < len(self._devices):
            raise RocmSMIError(
                RSMI_STATUS_INVALID_ARGS, f"device index {index} out of range"
            )
        return self._devices[index]

    # ---------------------------------------------------------------- queries

    def rsmi_num_monitor_devices(self) -> int:
        """Number of AMD devices visible to this library."""
        self._require_init()
        return len(self._devices)

    def rsmi_dev_name_get(self, index: int) -> str:
        """Marketing name of the board."""
        return self._resolve(index).spec.name

    def rsmi_dev_power_ave_get(self, index: int, sensor_ind: int = 0) -> int:
        """Average board power in **microwatts** (sensor-sampled)."""
        dev = self._resolve(index)
        sensor = self._sensors[index]
        watts = sensor.measure_average_power(dev.clock.now, dev.clock.now)
        return int(round(watts * 1_000_000.0))

    def rsmi_dev_gpu_clk_freq_get(self, index: int, clk_type: int) -> dict:
        """Frequency table and current level for a clock domain.

        Returns ``{"num_supported", "current", "frequency"}`` like the C
        struct ``rsmi_frequencies_t`` (frequencies in Hz, ascending).
        """
        dev = self._resolve(index)
        if clk_type == RSMI_CLK_TYPE_SYS:
            table = dev.spec.core_freqs_mhz
            current_mhz = dev.core_mhz
        elif clk_type == RSMI_CLK_TYPE_MEM:
            table = dev.spec.mem_freqs_mhz
            current_mhz = dev.mem_mhz
        else:
            raise RocmSMIError(RSMI_STATUS_INVALID_ARGS, f"clk_type {clk_type}")
        return {
            "num_supported": len(table),
            "current": table.index(current_mhz),
            "frequency": [int(f * 1e6) for f in table],
        }

    def rsmi_dev_perf_level_get(self, index: int) -> int:
        """Current performance-level policy (AUTO or MANUAL)."""
        self._resolve(index)
        return self._perf_level[index]

    # ---------------------------------------------------------------- control

    def rsmi_dev_perf_level_set(self, index: int, level: int) -> None:
        """Switch between AUTO and MANUAL performance control (root path)."""
        dev = self._resolve(index)
        if level not in (RSMI_DEV_PERF_LEVEL_AUTO, RSMI_DEV_PERF_LEVEL_MANUAL):
            raise RocmSMIError(RSMI_STATUS_INVALID_ARGS, f"perf level {level}")
        if dev.api_restricted and not self.effective_root:
            raise RocmSMIError(
                RSMI_STATUS_PERMISSION, "perf level control requires root"
            )
        self._perf_level[index] = level
        if level == RSMI_DEV_PERF_LEVEL_AUTO:
            dev.reset_application_clocks(privileged=True)

    def rsmi_dev_gpu_clk_freq_set(
        self, index: int, clk_type: int, freq_bitmask: int
    ) -> None:
        """Restrict the clock domain to the levels set in ``freq_bitmask``.

        The device then runs at the *highest* allowed level, matching the
        driver's behaviour under load. Requires MANUAL performance level.
        """
        dev = self._resolve(index)
        if self._perf_level[index] != RSMI_DEV_PERF_LEVEL_MANUAL:
            raise RocmSMIError(
                RSMI_STATUS_NOT_SUPPORTED,
                "clock masks require MANUAL performance level",
            )
        if clk_type == RSMI_CLK_TYPE_SYS:
            table = dev.spec.core_freqs_mhz
        elif clk_type == RSMI_CLK_TYPE_MEM:
            table = dev.spec.mem_freqs_mhz
        else:
            raise RocmSMIError(RSMI_STATUS_INVALID_ARGS, f"clk_type {clk_type}")
        allowed = [
            table[i] for i in range(len(table)) if freq_bitmask & (1 << i)
        ]
        if not allowed:
            raise RocmSMIError(RSMI_STATUS_INVALID_ARGS, "empty frequency mask")
        target = max(allowed)
        try:
            if clk_type == RSMI_CLK_TYPE_SYS:
                dev.set_application_clocks(
                    dev.mem_mhz, target, privileged=self.effective_root
                )
            else:
                dev.set_application_clocks(
                    target, dev.core_mhz, privileged=self.effective_root
                )
        except ClockPermissionError as exc:
            raise RocmSMIError(RSMI_STATUS_PERMISSION, str(exc)) from exc
