"""Portable power-management backend.

The SYnergy API promises vendor portability (§4): the same ``synergy::queue``
works on NVIDIA and AMD boards because the runtime dispatches to NVML or
ROCm SMI underneath. :func:`create_backend` performs that dispatch for a
simulated device; :class:`PowerManagementBackend` is the neutral interface
the queue talks to.
"""

from __future__ import annotations

import abc

from repro.common.errors import ConfigurationError
from repro.hw.device import SimulatedGPU
from repro.vendor.nvml import (
    NVML_CLOCK_GRAPHICS,
    NVML_CLOCK_MEM,
    NVMLLibrary,
)
from repro.vendor.rocm_smi import (
    RSMI_CLK_TYPE_SYS,
    RSMI_DEV_PERF_LEVEL_MANUAL,
    ROCmSMILibrary,
)


class PowerManagementBackend(abc.ABC):
    """Vendor-neutral clock/power interface for one device."""

    @abc.abstractmethod
    def supported_core_freqs(self) -> tuple[int, ...]:
        """Supported core clocks (MHz, ascending)."""

    @abc.abstractmethod
    def supported_mem_freqs(self) -> tuple[int, ...]:
        """Supported memory clocks (MHz, ascending)."""

    @abc.abstractmethod
    def current_clocks(self) -> tuple[int, int]:
        """Current ``(core_mhz, mem_mhz)``."""

    @abc.abstractmethod
    def set_clocks(self, mem_mhz: int, core_mhz: int) -> None:
        """Apply an application-clock pair (may raise a vendor error)."""

    @abc.abstractmethod
    def reset_clocks(self) -> None:
        """Restore driver-default clocks."""

    @abc.abstractmethod
    def read_power_w(self) -> float:
        """Current sensor-reported board power (W)."""

    @abc.abstractmethod
    def read_energy_j(self) -> float:
        """Cumulative sensor-reported board energy since time zero (J)."""


class NvmlBackend(PowerManagementBackend):
    """NVML binding for one NVIDIA device."""

    def __init__(self, device: SimulatedGPU, lib: NVMLLibrary | None = None) -> None:
        self._lib = lib if lib is not None else NVMLLibrary([device])
        self._lib.nvmlInit()
        # Find the handle for this particular device within the library.
        self._handle = None
        for i in range(self._lib.nvmlDeviceGetCount()):
            handle = self._lib.nvmlDeviceGetHandleByIndex(i)
            if self._lib._devices[i] is device:  # noqa: SLF001 - sim-internal
                self._handle = handle
                break
        if self._handle is None:
            raise ConfigurationError("device is not managed by the given NVML library")
        self._device = device

    def supported_core_freqs(self) -> tuple[int, ...]:
        mem = self._lib.nvmlDeviceGetSupportedMemoryClocks(self._handle)[0]
        clocks = self._lib.nvmlDeviceGetSupportedGraphicsClocks(self._handle, mem)
        return tuple(sorted(clocks))

    def supported_mem_freqs(self) -> tuple[int, ...]:
        return tuple(sorted(self._lib.nvmlDeviceGetSupportedMemoryClocks(self._handle)))

    def current_clocks(self) -> tuple[int, int]:
        return (
            self._lib.nvmlDeviceGetApplicationsClock(self._handle, NVML_CLOCK_GRAPHICS),
            self._lib.nvmlDeviceGetApplicationsClock(self._handle, NVML_CLOCK_MEM),
        )

    def set_clocks(self, mem_mhz: int, core_mhz: int) -> None:
        self._lib.nvmlDeviceSetApplicationsClocks(self._handle, mem_mhz, core_mhz)

    def reset_clocks(self) -> None:
        self._lib.nvmlDeviceResetApplicationsClocks(self._handle)

    def read_power_w(self) -> float:
        return self._lib.nvmlDeviceGetPowerUsage(self._handle) / 1000.0

    def read_energy_j(self) -> float:
        return self._lib.nvmlDeviceGetTotalEnergyConsumption(self._handle) / 1000.0


class RocmSmiBackend(PowerManagementBackend):
    """ROCm SMI binding for one AMD device."""

    def __init__(
        self, device: SimulatedGPU, lib: ROCmSMILibrary | None = None
    ) -> None:
        self._lib = lib if lib is not None else ROCmSMILibrary([device])
        self._lib.rsmi_init()
        self._index = None
        for i in range(self._lib.rsmi_num_monitor_devices()):
            if self._lib._devices[i] is device:  # noqa: SLF001 - sim-internal
                self._index = i
                break
        if self._index is None:
            raise ConfigurationError(
                "device is not managed by the given ROCm SMI library"
            )
        self._device = device

    def supported_core_freqs(self) -> tuple[int, ...]:
        info = self._lib.rsmi_dev_gpu_clk_freq_get(self._index, RSMI_CLK_TYPE_SYS)
        return tuple(int(f / 1e6) for f in info["frequency"])

    def supported_mem_freqs(self) -> tuple[int, ...]:
        return tuple(self._device.spec.mem_freqs_mhz)

    def current_clocks(self) -> tuple[int, int]:
        return (self._device.core_mhz, self._device.mem_mhz)

    def set_clocks(self, mem_mhz: int, core_mhz: int) -> None:
        """Select a core clock by masking all levels above it.

        AMD memory clocks on HBM boards are fixed; a request for a different
        memory clock is rejected by the underlying mask validation.
        """
        table = self._device.spec.core_freqs_mhz
        if core_mhz not in table:
            # Mirror NVML's invalid-argument behaviour through the SMI path.
            from repro.vendor.errors import RSMI_STATUS_INVALID_ARGS, RocmSMIError

            raise RocmSMIError(
                RSMI_STATUS_INVALID_ARGS, f"unsupported core clock {core_mhz} MHz"
            )
        self._lib.rsmi_dev_perf_level_set(self._index, RSMI_DEV_PERF_LEVEL_MANUAL)
        mask = 0
        for i, f in enumerate(table):
            if f <= core_mhz:
                mask |= 1 << i
        self._lib.rsmi_dev_gpu_clk_freq_set(self._index, RSMI_CLK_TYPE_SYS, mask)

    def reset_clocks(self) -> None:
        from repro.vendor.rocm_smi import RSMI_DEV_PERF_LEVEL_AUTO

        self._lib.rsmi_dev_perf_level_set(self._index, RSMI_DEV_PERF_LEVEL_AUTO)

    def read_power_w(self) -> float:
        return self._lib.rsmi_dev_power_ave_get(self._index) / 1_000_000.0

    def read_energy_j(self) -> float:
        # ROCm SMI has no cumulative energy counter; integrate the true
        # timeline as the paper's sampling thread effectively does.
        return self._device.energy_between(0.0, self._device.clock.now)


def create_backend(
    device: SimulatedGPU,
    nvml: NVMLLibrary | None = None,
    rocm: ROCmSMILibrary | None = None,
) -> PowerManagementBackend:
    """Instantiate the right vendor backend for a device."""
    if device.spec.vendor == "nvidia":
        return NvmlBackend(device, lib=nvml)
    if device.spec.vendor == "amd":
        return RocmSmiBackend(device, lib=rocm)
    raise ConfigurationError(f"no power-management backend for vendor {device.spec.vendor!r}")
