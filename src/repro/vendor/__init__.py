"""Simulated vendor power-management libraries.

The paper's runtime binds to NVML on NVIDIA nodes and ROCm SMI on AMD nodes
(§4). This package reimplements the subset of both C APIs that SYnergy and
the SLURM plugin use, against :class:`repro.hw.device.SimulatedGPU` boards:

- :mod:`~repro.vendor.nvml` — handle-based API, milliwatt power reads,
  application clocks, ``SetAPIRestriction`` privilege control,
- :mod:`~repro.vendor.rocm_smi` — index-based API, performance levels and
  clock-mask frequency selection,
- :mod:`~repro.vendor.portable` — the vendor-neutral wrapper SYnergy's
  queue uses, dispatching on the device vendor.
"""

from repro.vendor.errors import (
    NVML_ERROR_INVALID_ARGUMENT,
    NVML_ERROR_NO_PERMISSION,
    NVML_ERROR_NOT_SUPPORTED,
    NVML_ERROR_UNINITIALIZED,
    NVMLError,
    RSMI_STATUS_INVALID_ARGS,
    RSMI_STATUS_NOT_SUPPORTED,
    RSMI_STATUS_PERMISSION,
    RSMI_STATUS_UNINITIALIZED,
    RocmSMIError,
)
from repro.vendor.nvml import NVMLLibrary
from repro.vendor.portable import PowerManagementBackend, create_backend
from repro.vendor.rocm_smi import ROCmSMILibrary

__all__ = [
    "NVMLError",
    "NVMLLibrary",
    "RocmSMIError",
    "ROCmSMILibrary",
    "PowerManagementBackend",
    "create_backend",
    "NVML_ERROR_UNINITIALIZED",
    "NVML_ERROR_INVALID_ARGUMENT",
    "NVML_ERROR_NO_PERMISSION",
    "NVML_ERROR_NOT_SUPPORTED",
    "RSMI_STATUS_UNINITIALIZED",
    "RSMI_STATUS_INVALID_ARGS",
    "RSMI_STATUS_PERMISSION",
    "RSMI_STATUS_NOT_SUPPORTED",
]
