"""Vendor-library error codes and exceptions.

Codes mirror the real libraries' return values so callers (the SYnergy
runtime, the SLURM plugin) can branch on failure modes exactly as the C
code would. Retryable NVML codes (``NVML_ERROR_UNKNOWN``,
``NVML_ERROR_TIMEOUT``) materialize as :class:`NVMLTransientError`, a
subclass that also derives from
:class:`~repro.common.errors.TransientError` so cross-layer retry loops
can test retryability without vendor knowledge.
"""

from __future__ import annotations

from repro.common.errors import ReproError, TransientError

# --- NVML return codes (subset) -------------------------------------------
NVML_SUCCESS = 0
NVML_ERROR_UNINITIALIZED = 1
NVML_ERROR_INVALID_ARGUMENT = 2
NVML_ERROR_NOT_SUPPORTED = 3
NVML_ERROR_NO_PERMISSION = 4
NVML_ERROR_TIMEOUT = 10
NVML_ERROR_GPU_IS_LOST = 15
NVML_ERROR_UNKNOWN = 999

_NVML_MESSAGES = {
    NVML_ERROR_UNINITIALIZED: "Uninitialized",
    NVML_ERROR_INVALID_ARGUMENT: "Invalid Argument",
    NVML_ERROR_NOT_SUPPORTED: "Not Supported",
    NVML_ERROR_NO_PERMISSION: "Insufficient Permissions",
    NVML_ERROR_TIMEOUT: "Timeout",
    NVML_ERROR_GPU_IS_LOST: "GPU is lost",
    NVML_ERROR_UNKNOWN: "Unknown Error",
}

_NVML_SYMBOLS = {
    NVML_SUCCESS: "NVML_SUCCESS",
    NVML_ERROR_UNINITIALIZED: "NVML_ERROR_UNINITIALIZED",
    NVML_ERROR_INVALID_ARGUMENT: "NVML_ERROR_INVALID_ARGUMENT",
    NVML_ERROR_NOT_SUPPORTED: "NVML_ERROR_NOT_SUPPORTED",
    NVML_ERROR_NO_PERMISSION: "NVML_ERROR_NO_PERMISSION",
    NVML_ERROR_TIMEOUT: "NVML_ERROR_TIMEOUT",
    NVML_ERROR_GPU_IS_LOST: "NVML_ERROR_GPU_IS_LOST",
    NVML_ERROR_UNKNOWN: "NVML_ERROR_UNKNOWN",
}

#: Codes a caller may retry: the driver hiccuped, the board is still there.
NVML_TRANSIENT_CODES = frozenset({NVML_ERROR_UNKNOWN, NVML_ERROR_TIMEOUT})


def nvmlErrorString(code: int) -> str:
    """Human-readable message for an NVML return code (C API helper)."""
    return _NVML_MESSAGES.get(code, f"Unknown Error {code}")


class NVMLError(ReproError):
    """Raised by the simulated NVML with a C-style error code attached.

    Constructing an ``NVMLError`` with a retryable code returns an
    :class:`NVMLTransientError` instance (the pynvml subclass-per-code
    pattern), so ``isinstance(exc, TransientError)`` works.
    """

    def __new__(cls, code: int, detail: str = "") -> "NVMLError":
        if cls is NVMLError and code in NVML_TRANSIENT_CODES:
            return super().__new__(NVMLTransientError)
        return super().__new__(cls)

    def __init__(self, code: int, detail: str = "") -> None:
        self.code = code
        symbol = _NVML_SYMBOLS.get(code)
        message = nvmlErrorString(code) + (f" ({symbol})" if symbol else "")
        super().__init__(f"NVML: {message}" + (f": {detail}" if detail else ""))

    @property
    def transient(self) -> bool:
        """Whether the code is retryable."""
        return self.code in NVML_TRANSIENT_CODES


class NVMLTransientError(NVMLError, TransientError):
    """A retryable NVML failure (``NVML_ERROR_UNKNOWN`` / ``TIMEOUT``)."""


# --- ROCm SMI return codes (subset) ----------------------------------------
RSMI_STATUS_SUCCESS = 0
RSMI_STATUS_UNINITIALIZED = 1
RSMI_STATUS_INVALID_ARGS = 2
RSMI_STATUS_NOT_SUPPORTED = 3
RSMI_STATUS_PERMISSION = 4
RSMI_STATUS_BUSY = 10
RSMI_STATUS_UNEXPECTED_DATA = 12

_RSMI_MESSAGES = {
    RSMI_STATUS_UNINITIALIZED: "Uninitialized",
    RSMI_STATUS_INVALID_ARGS: "Invalid Arguments",
    RSMI_STATUS_NOT_SUPPORTED: "Not Supported",
    RSMI_STATUS_PERMISSION: "Permission Denied",
    RSMI_STATUS_BUSY: "Device Busy",
    RSMI_STATUS_UNEXPECTED_DATA: "Unexpected Data",
}

#: Retryable ROCm SMI statuses.
RSMI_TRANSIENT_CODES = frozenset({RSMI_STATUS_BUSY})


class RocmSMIError(ReproError):
    """Raised by the simulated ROCm SMI with a C-style status attached."""

    def __new__(cls, code: int, detail: str = "") -> "RocmSMIError":
        if cls is RocmSMIError and code in RSMI_TRANSIENT_CODES:
            return super().__new__(RocmSMITransientError)
        return super().__new__(cls)

    def __init__(self, code: int, detail: str = "") -> None:
        self.code = code
        message = _RSMI_MESSAGES.get(code, f"Unknown Status {code}")
        super().__init__(f"ROCm SMI: {message}" + (f": {detail}" if detail else ""))


class RocmSMITransientError(RocmSMIError, TransientError):
    """A retryable ROCm SMI failure (``RSMI_STATUS_BUSY``)."""
