"""Vendor-library error codes and exceptions.

Codes mirror the real libraries' return values so callers (the SYnergy
runtime, the SLURM plugin) can branch on failure modes exactly as the C
code would.
"""

from __future__ import annotations

from repro.common.errors import ReproError

# --- NVML return codes (subset) -------------------------------------------
NVML_SUCCESS = 0
NVML_ERROR_UNINITIALIZED = 1
NVML_ERROR_INVALID_ARGUMENT = 2
NVML_ERROR_NOT_SUPPORTED = 3
NVML_ERROR_NO_PERMISSION = 4

_NVML_MESSAGES = {
    NVML_ERROR_UNINITIALIZED: "Uninitialized",
    NVML_ERROR_INVALID_ARGUMENT: "Invalid Argument",
    NVML_ERROR_NOT_SUPPORTED: "Not Supported",
    NVML_ERROR_NO_PERMISSION: "Insufficient Permissions",
}


class NVMLError(ReproError):
    """Raised by the simulated NVML with a C-style error code attached."""

    def __init__(self, code: int, detail: str = "") -> None:
        self.code = code
        message = _NVML_MESSAGES.get(code, f"Unknown Error {code}")
        super().__init__(f"NVML: {message}" + (f": {detail}" if detail else ""))


# --- ROCm SMI return codes (subset) ----------------------------------------
RSMI_STATUS_SUCCESS = 0
RSMI_STATUS_UNINITIALIZED = 1
RSMI_STATUS_INVALID_ARGS = 2
RSMI_STATUS_NOT_SUPPORTED = 3
RSMI_STATUS_PERMISSION = 4

_RSMI_MESSAGES = {
    RSMI_STATUS_UNINITIALIZED: "Uninitialized",
    RSMI_STATUS_INVALID_ARGS: "Invalid Arguments",
    RSMI_STATUS_NOT_SUPPORTED: "Not Supported",
    RSMI_STATUS_PERMISSION: "Permission Denied",
}


class RocmSMIError(ReproError):
    """Raised by the simulated ROCm SMI with a C-style status attached."""

    def __init__(self, code: int, detail: str = "") -> None:
        self.code = code
        message = _RSMI_MESSAGES.get(code, f"Unknown Status {code}")
        super().__init__(f"ROCm SMI: {message}" + (f": {detail}" if detail else ""))
