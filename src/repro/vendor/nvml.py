"""Simulated NVIDIA Management Library (NVML).

Implements the NVML call subset SYnergy and the ``nvgpufreq`` SLURM plugin
depend on, with the real library's semantics:

- explicit ``nvmlInit`` / ``nvmlShutdown`` lifecycle (calls on an
  uninitialized library fail with ``NVML_ERROR_UNINITIALIZED``),
- opaque device handles obtained by index,
- power in **milliwatts** and total energy in **millijoules**, read through
  the rate-limited :class:`~repro.hw.sensor.PowerSensor`,
- application-clock control guarded by the per-device API restriction;
  ``nvmlDeviceSetAPIRestriction`` itself always requires root.

Process privilege is modeled by the library's ``effective_root`` flag: the
SLURM plugin flips it around its prologue/epilogue work, user code runs with
it off.
"""

from __future__ import annotations

from repro.hw.device import ClockPermissionError, SimulatedGPU
from repro.hw.sensor import PowerSensor
from repro.common.errors import ConfigurationError
from repro.vendor.errors import (
    NVML_ERROR_GPU_IS_LOST,
    NVML_ERROR_INVALID_ARGUMENT,
    NVML_ERROR_NO_PERMISSION,
    NVML_ERROR_NOT_SUPPORTED,
    NVML_ERROR_UNINITIALIZED,
    NVML_ERROR_UNKNOWN,
    NVMLError,
)

#: ``nvmlClockType_t`` values (subset).
NVML_CLOCK_GRAPHICS = 0
NVML_CLOCK_MEM = 2

#: ``nvmlRestrictedAPI_t`` values (subset).
NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS = 0

#: ``nvmlEnableState_t`` values.
NVML_FEATURE_DISABLED = 0
NVML_FEATURE_ENABLED = 1


class _DeviceHandle:
    """Opaque NVML device handle (valid only for the issuing library)."""

    __slots__ = ("index", "_lib_id")

    def __init__(self, index: int, lib_id: int) -> None:
        self.index = index
        self._lib_id = lib_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<nvmlDevice_t index={self.index}>"


class NVMLLibrary:
    """One loaded instance of the simulated NVML shared object."""

    def __init__(self, devices: list[SimulatedGPU], *, available: bool = True) -> None:
        for dev in devices:
            if dev.spec.vendor != "nvidia":
                raise ConfigurationError(
                    f"NVML cannot manage non-NVIDIA device {dev.spec.name!r}"
                )
        self._devices = list(devices)
        self._sensors = [PowerSensor(dev) for dev in devices]
        self._initialized = False
        #: Simulates whether the shared object can be dlopen'd on this node.
        self.available = bool(available)
        #: Simulated process privilege (flipped by the SLURM plugin).
        self.effective_root = False

    # ------------------------------------------------------------- lifecycle

    def nvmlInit(self) -> None:
        """Initialize the library (idempotent, as in real NVML)."""
        if not self.available:
            raise NVMLError(NVML_ERROR_NOT_SUPPORTED, "libnvidia-ml.so not found")
        self._initialized = True

    def nvmlShutdown(self) -> None:
        """Shut the library down; handles become invalid."""
        self._require_init()
        self._initialized = False

    def _require_init(self) -> None:
        if not self._initialized:
            raise NVMLError(NVML_ERROR_UNINITIALIZED)

    def _resolve(self, handle: _DeviceHandle) -> SimulatedGPU:
        self._require_init()
        if (
            not isinstance(handle, _DeviceHandle)
            or handle._lib_id != id(self)
            or not 0 <= handle.index < len(self._devices)
        ):
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, "bad device handle")
        dev = self._devices[handle.index]
        inj = dev.fault_injector
        if inj is not None:
            # Persistent loss: a scheduled/probabilistic gpu_lost fault
            # transitions the board into the lost state; every NVML call
            # on it fails with GPU_IS_LOST from then on, as on real
            # fallen-off-the-bus hardware.
            if inj.fires("nvml.gpu_lost", dev.clock.now, target=dev.index):
                inj.mark_device_lost(dev.index)
            if inj.device_lost(dev.index):
                raise NVMLError(
                    NVML_ERROR_GPU_IS_LOST,
                    f"device {dev.index} fell off the bus",
                )
        return dev

    def _inject(self, dev: SimulatedGPU, site: str, default_code: int) -> None:
        """Raise an injected transient vendor fault for one call site."""
        inj = dev.fault_injector
        if inj is None:
            return
        spec = inj.fires(site, dev.clock.now, target=dev.index)
        if spec is not None:
            raise NVMLError(
                int(spec.code) if spec.code is not None else default_code,
                f"injected fault at {site}",
            )

    # ---------------------------------------------------------------- queries

    def nvmlDeviceGetCount(self) -> int:
        """Number of NVIDIA devices visible to this library."""
        self._require_init()
        return len(self._devices)

    def nvmlDeviceGetHandleByIndex(self, index: int) -> _DeviceHandle:
        """Get the opaque handle for device ``index``."""
        self._require_init()
        if not 0 <= index < len(self._devices):
            raise NVMLError(
                NVML_ERROR_INVALID_ARGUMENT, f"device index {index} out of range"
            )
        return _DeviceHandle(index, id(self))

    def nvmlDeviceGetName(self, handle: _DeviceHandle) -> str:
        """Marketing name of the board."""
        return self._resolve(handle).spec.name

    def nvmlDeviceGetPowerUsage(self, handle: _DeviceHandle) -> int:
        """Current board power draw in **milliwatts** (sensor-sampled)."""
        dev = self._resolve(handle)
        self._inject(dev, "nvml.power_read", NVML_ERROR_UNKNOWN)
        sensor = self._sensors[handle.index]
        return int(round(sensor.measure_average_power(dev.clock.now, dev.clock.now) * 1000.0))

    def nvmlDeviceGetTotalEnergyConsumption(self, handle: _DeviceHandle) -> int:
        """Cumulative board energy since time zero, in **millijoules**."""
        dev = self._resolve(handle)
        self._inject(dev, "nvml.power_read", NVML_ERROR_UNKNOWN)
        return int(round(dev.energy_between(0.0, dev.clock.now) * 1000.0))

    def nvmlDeviceGetSupportedMemoryClocks(self, handle: _DeviceHandle) -> list[int]:
        """Supported memory clocks (MHz), descending as real NVML reports."""
        dev = self._resolve(handle)
        return sorted(dev.spec.mem_freqs_mhz, reverse=True)

    def nvmlDeviceGetSupportedGraphicsClocks(
        self, handle: _DeviceHandle, mem_mhz: int
    ) -> list[int]:
        """Supported graphics clocks for a memory clock (MHz), descending."""
        dev = self._resolve(handle)
        if mem_mhz not in dev.spec.mem_freqs_mhz:
            raise NVMLError(
                NVML_ERROR_INVALID_ARGUMENT, f"memory clock {mem_mhz} MHz unsupported"
            )
        return sorted(dev.spec.core_freqs_mhz, reverse=True)

    def nvmlDeviceGetApplicationsClock(
        self, handle: _DeviceHandle, clock_type: int
    ) -> int:
        """Current application clock (MHz) for graphics or memory domain."""
        dev = self._resolve(handle)
        if clock_type == NVML_CLOCK_GRAPHICS:
            return dev.core_mhz
        if clock_type == NVML_CLOCK_MEM:
            return dev.mem_mhz
        raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, f"clock type {clock_type}")

    def nvmlDeviceGetAPIRestriction(self, handle: _DeviceHandle, api: int) -> int:
        """Whether an API class is root-restricted on this device."""
        dev = self._resolve(handle)
        if api != NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS:
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, f"api {api}")
        return NVML_FEATURE_ENABLED if dev.api_restricted else NVML_FEATURE_DISABLED

    def nvmlDeviceGetPowerManagementLimit(self, handle: _DeviceHandle) -> int:
        """Current board power limit in **milliwatts**."""
        dev = self._resolve(handle)
        return int(round(dev.power_limit_w * 1000.0))

    def nvmlDeviceGetPowerManagementDefaultLimit(
        self, handle: _DeviceHandle
    ) -> int:
        """Factory default board power limit in **milliwatts**."""
        dev = self._resolve(handle)
        return int(round(dev.default_power_limit_w * 1000.0))

    # ---------------------------------------------------------------- control

    def nvmlDeviceSetPowerManagementLimit(
        self, handle: _DeviceHandle, limit_mw: int
    ) -> None:
        """Set the board power limit (root only, as in real NVML)."""
        dev = self._resolve(handle)
        try:
            dev.set_power_limit(limit_mw / 1000.0, privileged=self.effective_root)
        except ClockPermissionError as exc:
            raise NVMLError(NVML_ERROR_NO_PERMISSION, str(exc)) from exc
        except ConfigurationError as exc:
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, str(exc)) from exc

    def nvmlDeviceSetApplicationsClocks(
        self, handle: _DeviceHandle, mem_mhz: int, core_mhz: int
    ) -> None:
        """Set application clocks; obeys the device's API restriction."""
        dev = self._resolve(handle)
        self._inject(dev, "nvml.set_clocks", NVML_ERROR_UNKNOWN)
        try:
            dev.set_application_clocks(
                mem_mhz, core_mhz, privileged=self.effective_root
            )
        except ClockPermissionError as exc:
            raise NVMLError(NVML_ERROR_NO_PERMISSION, str(exc)) from exc
        except ConfigurationError as exc:
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, str(exc)) from exc

    def nvmlDeviceResetApplicationsClocks(self, handle: _DeviceHandle) -> None:
        """Restore default application clocks; obeys the API restriction."""
        dev = self._resolve(handle)
        self._inject(dev, "nvml.set_clocks", NVML_ERROR_UNKNOWN)
        try:
            dev.reset_application_clocks(privileged=self.effective_root)
        except ClockPermissionError as exc:
            raise NVMLError(NVML_ERROR_NO_PERMISSION, str(exc)) from exc

    def nvmlDeviceSetAPIRestriction(
        self, handle: _DeviceHandle, api: int, state: int
    ) -> None:
        """Lower/raise the privilege requirement for an API class (root only).

        This is the call the paper's SLURM plugin leverages (§7.1) to grant
        unprivileged jobs temporary access to application clocks.
        """
        dev = self._resolve(handle)
        if api != NVML_RESTRICTED_API_SET_APPLICATION_CLOCKS:
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, f"api {api}")
        if state not in (NVML_FEATURE_ENABLED, NVML_FEATURE_DISABLED):
            raise NVMLError(NVML_ERROR_INVALID_ARGUMENT, f"state {state}")
        if not self.effective_root:
            raise NVMLError(
                NVML_ERROR_NO_PERMISSION, "SetAPIRestriction requires root"
            )
        dev.set_api_restriction(state == NVML_FEATURE_ENABLED)
