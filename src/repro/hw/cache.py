"""Shared per-spec model instances.

:class:`~repro.hw.timing.TimingModel` and :class:`~repro.hw.power.PowerModel`
are immutable functions of a :class:`~repro.hw.specs.GPUSpec`, yet the hot
sweep paths used to rebuild them (including the voltage-curve construction)
on every call. :func:`models_for` hands out one shared pair per spec
*instance* for the lifetime of the process — a sweep session constructs its
models exactly once.

Keys are object identities: specs are frozen dataclasses typically taken
from the module-level catalog, and keeping the spec in the cache value pins
its ``id`` so stale-identity collisions cannot occur.
"""

from __future__ import annotations

import threading

from repro.hw.power import PowerModel
from repro.hw.specs import GPUSpec
from repro.hw.timing import TimingModel

_MODELS: dict[int, tuple[GPUSpec, TimingModel, PowerModel]] = {}
_LOCK = threading.Lock()


def models_for(spec: GPUSpec) -> tuple[TimingModel, PowerModel]:
    """The process-wide ``(TimingModel, PowerModel)`` pair for a spec."""
    entry = _MODELS.get(id(spec))
    if entry is not None and entry[0] is spec:
        return entry[1], entry[2]
    timing = TimingModel(spec)
    power = PowerModel(spec)
    with _LOCK:
        _MODELS[id(spec)] = (spec, timing, power)
    return timing, power


def clear_model_cache() -> None:
    """Drop all shared model instances (test hook)."""
    with _LOCK:
        _MODELS.clear()
