"""Roofline kernel timing model.

Execution time is the smooth maximum of a compute phase and a memory phase:

- ``t_comp = total_issue_cycles / (compute_units · f_core)`` with issue
  cycles from the per-class throughput table,
- ``t_mem = dram_bytes / BW_eff`` where the effective bandwidth scales with
  the memory clock and is additionally capped by the cores' request issue
  rate: below ``bw_knee · f_core_max`` even memory-bound kernels slow down,
  which produces the characteristic "flat Pareto with a cliff" of
  memory-bound kernels (Fig. 2b).

``t = (t_comp^p + t_mem^p)^{1/p}`` with ``p = 4`` approximates perfect
compute/memory overlap while keeping the model differentiable; the phase
fractions become the utilizations fed to the power model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import mhz_to_hz
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR

#: Smooth-max exponent. Larger values approach ``max(t_comp, t_mem)``.
SMOOTH_MAX_P: float = 4.0


@dataclass(frozen=True)
class KernelTiming:
    """Result of timing one kernel at one frequency configuration.

    ``u_core`` / ``u_mem`` are phase-occupancy fractions in ``[0, 1]``;
    ``activity`` is the issue-slot switching activity of the kernel's
    instruction mix (1.0 for full-rate FMA streams, low for divider/SFU
    bound code). The core-domain power input is ``u_core · activity``,
    exposed as :attr:`core_power_utilization`.
    """

    time_s: float
    t_comp: float
    t_mem: float
    u_core: float
    u_mem: float
    activity: float = 1.0

    @property
    def core_power_utilization(self) -> float:
        """Effective core-domain switching input for the power model."""
        return self.u_core * self.activity


@dataclass(frozen=True)
class SweepTiming:
    """Struct-of-arrays result of a vectorized frequency sweep.

    Every per-configuration quantity of :class:`KernelTiming` as one NumPy
    array computed in a single broadcasted pass — no per-clock
    ``_combine``. Arrays share one broadcast shape: ``(n_core,)`` for a
    core-table sweep, ``(n_mem, n_core)`` for a joint 2-D sweep.
    ``activity`` stays scalar (it depends only on the instruction mix).
    """

    time_s: np.ndarray
    t_comp: np.ndarray
    t_mem: np.ndarray
    u_core: np.ndarray
    u_mem: np.ndarray
    activity: float = 1.0

    @property
    def core_power_utilization(self) -> np.ndarray:
        """Effective core-domain switching input for the power model."""
        return self.u_core * self.activity

    def __len__(self) -> int:
        return int(self.time_s.shape[0])

    def at(self, index) -> KernelTiming:
        """Materialize one configuration as a scalar :class:`KernelTiming`."""
        return KernelTiming(
            time_s=float(self.time_s[index]),
            t_comp=float(self.t_comp[index]),
            t_mem=float(self.t_mem[index]),
            u_core=float(self.u_core[index]),
            u_mem=float(self.u_mem[index]),
            activity=self.activity,
        )

    def __iter__(self):
        if self.time_s.ndim != 1:
            raise TypeError(
                f"can only iterate a 1-D sweep (shape {self.time_s.shape})"
            )
        for i in range(self.time_s.shape[0]):
            yield self.at(i)


@dataclass(frozen=True)
class TimingModel:
    """Analytic timing model bound to one device spec."""

    spec: GPUSpec

    def issue_cycles_per_item(self, kernel: KernelIR) -> float:
        """Pipeline issue cycles one work-item spends in the compute phase."""
        mix = kernel.mix.as_dict()
        return float(
            sum(count / self.spec.throughput[cls] for cls, count in mix.items())
        )

    def switching_activity(self, kernel: KernelIR) -> float:
        """Issue-slot activity in ``(0, 1]``: achieved ops/cycle vs peak.

        FMA-dense kernels retire close to the peak issue rate and toggle
        the full datapath every cycle; divider/SFU-bound kernels spend many
        cycles per op with most execution lanes dark — their core-domain
        dynamic power is proportionally lower (the mechanism behind the
        paper's per-kernel energy diversity, §2.2).
        """
        cycles = self.issue_cycles_per_item(kernel)
        if cycles <= 0.0:
            return 0.0
        peak_rate = max(self.spec.throughput.values())
        achieved = kernel.mix.total_ops / cycles
        return min(1.0, achieved / peak_rate)

    def effective_bandwidth(
        self, core_mhz: float | np.ndarray, mem_mhz: float | np.ndarray
    ) -> np.ndarray:
        """DRAM bandwidth (bytes/s) achievable at the given clocks.

        Always returns an array (0-d for scalar inputs); use
        :meth:`effective_bandwidth_scalar` for a typed ``float``.
        """
        peak = self.spec.peak_bandwidth_gbs * 1e9
        mem_scale = np.asarray(mem_mhz, dtype=float) / float(
            self.spec.mem_freqs_mhz[-1]
        )
        knee_mhz = self.spec.bw_knee * self.spec.max_core_mhz
        issue_scale = np.minimum(1.0, np.asarray(core_mhz, dtype=float) / knee_mhz)
        return np.asarray(peak * mem_scale * issue_scale, dtype=float)

    def effective_bandwidth_scalar(self, core_mhz: float, mem_mhz: float) -> float:
        """Scalar DRAM bandwidth (bytes/s) for one clock pair."""
        return float(self.effective_bandwidth(float(core_mhz), float(mem_mhz)))

    def execute(
        self, kernel: KernelIR, core_mhz: float, mem_mhz: float
    ) -> KernelTiming:
        """Time one kernel at one clock pair."""
        t_comp, t_mem = self._phase_times(kernel, core_mhz, mem_mhz)
        return self._combine(
            float(t_comp), float(t_mem), self.switching_activity(kernel)
        )

    def sweep(
        self,
        kernel: KernelIR,
        core_mhz: np.ndarray,
        mem_mhz: float | np.ndarray,
    ) -> SweepTiming:
        """Vectorized timing over a frequency sweep in one NumPy pass.

        ``core_mhz`` and ``mem_mhz`` broadcast against each other, so a 1-D
        core table gives a ``(n_core,)`` sweep and ``(core[None, :],
        mem[:, None])`` gives the full ``(n_mem, n_core)`` grid. The result
        iterates as per-clock :class:`KernelTiming` values for 1-D sweeps;
        per-element results are bitwise those of :meth:`execute`.
        """
        t_comp, t_mem = self._phase_times(kernel, core_mhz, mem_mhz)
        t_comp, t_mem = np.broadcast_arrays(
            np.asarray(t_comp, dtype=float), np.asarray(t_mem, dtype=float)
        )
        p = SMOOTH_MAX_P
        body = (t_comp**p + t_mem**p) ** (1.0 / p)
        positive = body > 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            u_core = np.where(positive, np.minimum(1.0, t_comp / body), 0.0)
            u_mem = np.where(positive, np.minimum(1.0, t_mem / body), 0.0)
        return SweepTiming(
            time_s=np.where(positive, body, 0.0) + self.spec.launch_overhead_s,
            t_comp=t_comp.copy(),
            t_mem=t_mem.copy(),
            u_core=u_core,
            u_mem=u_mem,
            activity=self.switching_activity(kernel),
        )

    def sweep_scalar(
        self, kernel: KernelIR, core_mhz: np.ndarray, mem_mhz: float
    ) -> list[KernelTiming]:
        """Per-clock reference sweep (one scalar ``_combine`` per clock).

        Kept as the baseline the perf benchmark suite measures
        :meth:`sweep` against; results are identical.
        """
        core = np.asarray(core_mhz, dtype=float)
        t_comp, t_mem = self._phase_times(kernel, core, mem_mhz)
        t_comp = np.broadcast_to(np.asarray(t_comp, dtype=float), core.shape)
        t_mem = np.broadcast_to(np.asarray(t_mem, dtype=float), core.shape)
        activity = self.switching_activity(kernel)
        return [
            self._combine(float(c), float(m), activity)
            for c, m in zip(t_comp, t_mem)
        ]

    def _phase_times(
        self,
        kernel: KernelIR,
        core_mhz: float | np.ndarray,
        mem_mhz: float | np.ndarray,
    ) -> tuple[float | np.ndarray, float | np.ndarray]:
        cycles = self.issue_cycles_per_item(kernel) * kernel.work_items
        f_core_hz = mhz_to_hz(1.0) * np.asarray(core_mhz, dtype=float)
        t_comp = cycles / (self.spec.compute_units * f_core_hz)
        bw = self.effective_bandwidth(core_mhz, mem_mhz)
        t_mem = kernel.global_bytes / np.asarray(bw, dtype=float)
        return t_comp, t_mem

    def _combine(
        self, t_comp: float, t_mem: float, activity: float = 1.0
    ) -> KernelTiming:
        p = SMOOTH_MAX_P
        if t_comp <= 0.0 and t_mem <= 0.0:
            body = 0.0
        else:
            body = float((t_comp**p + t_mem**p) ** (1.0 / p))
        time_s = body + self.spec.launch_overhead_s
        if body > 0.0:
            u_core = min(1.0, t_comp / body)
            u_mem = min(1.0, t_mem / body)
        else:
            u_core = u_mem = 0.0
        return KernelTiming(
            time_s=time_s,
            t_comp=t_comp,
            t_mem=t_mem,
            u_core=u_core,
            u_mem=u_mem,
            activity=activity,
        )
