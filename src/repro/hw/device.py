"""Stateful simulated GPU.

A :class:`SimulatedGPU` owns the mutable board state the vendor libraries
and the SYCL runtime interact with:

- current application clocks (core/memory) and the privilege model guarding
  them (``api_restricted`` mirrors NVML's ``SetAPIRestriction`` semantics:
  when restricted, only privileged callers may change clocks — the exact
  hazard the paper's SLURM plugin manages, §7),
- a busy/idle power timeline in virtual time, from which both the true
  (analytic) energy and the sampled sensor energy are derived,
- per-kernel execution records.

Kernels execute serially per device (one hardware queue), matching how the
paper profiles per-kernel energy.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError, ReproError, SimulationError
from repro.hw.cache import models_for
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR


class ClockPermissionError(ReproError):
    """Raised when an unprivileged caller changes clocks on a restricted GPU."""


@dataclass(frozen=True)
class KernelExecutionRecord:
    """Outcome of one kernel execution on a simulated GPU."""

    kernel_name: str
    device_name: str
    core_mhz: int
    mem_mhz: int
    start_s: float
    end_s: float
    energy_j: float
    avg_power_w: float
    u_core: float
    u_mem: float

    @property
    def time_s(self) -> float:
        """Kernel wall time in seconds."""
        return self.end_s - self.start_s


_device_ids = itertools.count()


class SimulatedGPU:
    """One GPU board: clocks, privilege state, power timeline, executions."""

    def __init__(
        self,
        spec: GPUSpec,
        clock: VirtualClock | None = None,
        index: int | None = None,
    ) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else VirtualClock()
        self.index = next(_device_ids) if index is None else index
        self.timing_model, self.power_model = models_for(spec)

        self._core_mhz = spec.default_core_mhz
        self._mem_mhz = spec.default_mem_mhz
        #: Board power limit (W); kernels that would exceed it run at the
        #: highest clock whose power fits (hardware throttling). Defaults
        #: to the model's peak draw, i.e. unconstrained.
        self.default_power_limit_w: float = self.power_model.peak_power()
        self.power_limit_w: float = self.default_power_limit_w
        #: NVML-style API restriction: True means clock changes need
        #: privilege. Standalone boards default to unrestricted (a developer
        #: workstation); production clusters restrict every board at node
        #: provisioning and rely on the SLURM plugin to lower it per job.
        self.api_restricted: bool = False
        self._busy_until: float = self.clock.now
        # Busy power segments: parallel arrays (start, end, power_w).
        self._seg_start: list[float] = []
        self._seg_end: list[float] = []
        self._seg_power: list[float] = []
        # Clock history: (time, core_mhz, mem_mhz), ascending in time.
        self._clock_times: list[float] = [self.clock.now]
        self._clock_values: list[tuple[int, int]] = [(self._core_mhz, self._mem_mhz)]
        self.records: list[KernelExecutionRecord] = []
        #: Count of clock-change API calls (for the §4.4 overhead analysis).
        self.clock_set_calls: int = 0
        #: Fault-injection plane, attached by ``Cluster.build`` (or tests).
        #: ``None`` means the happy path: no faults, no injection checks.
        self.fault_injector = None

    # ------------------------------------------------------------------ state

    @property
    def core_mhz(self) -> int:
        """Current application core clock (MHz)."""
        return self._core_mhz

    @property
    def mem_mhz(self) -> int:
        """Current application memory clock (MHz)."""
        return self._mem_mhz

    @property
    def busy_until(self) -> float:
        """Virtual time at which the device's hardware queue drains."""
        return self._busy_until

    def set_application_clocks(
        self, mem_mhz: int, core_mhz: int, *, privileged: bool = False
    ) -> None:
        """Set application clocks, enforcing the NVML privilege model.

        Raises :class:`ClockPermissionError` if the device is API-restricted
        and the caller is unprivileged, and
        :class:`~repro.common.errors.ConfigurationError` for clocks outside
        the device table.
        """
        if self.api_restricted and not privileged:
            raise ClockPermissionError(
                f"{self.spec.name}[{self.index}]: application clocks are "
                "root-restricted (no SetAPIRestriction lowering in effect)"
            )
        self.spec.validate_clocks(mem_mhz, core_mhz)
        self._core_mhz = int(core_mhz)
        self._mem_mhz = int(mem_mhz)
        self._record_clock_change()
        self.clock_set_calls += 1

    def reset_application_clocks(self, *, privileged: bool = False) -> None:
        """Restore the driver default clocks (epilogue cleanup path)."""
        if self.api_restricted and not privileged:
            raise ClockPermissionError(
                f"{self.spec.name}[{self.index}]: resetting clocks is "
                "root-restricted"
            )
        self._core_mhz = self.spec.default_core_mhz
        self._mem_mhz = self.spec.default_mem_mhz
        self._record_clock_change()
        self.clock_set_calls += 1

    def set_power_limit(self, watts: float, *, privileged: bool = False) -> None:
        """Set the board power limit (root-only, like real NVML).

        Limits below a safety floor (half the idle draw above zero would
        brick a real board; we require at least the idle power) or above
        the default limit are rejected.
        """
        if not privileged:
            raise ClockPermissionError(
                f"{self.spec.name}[{self.index}]: power limit changes require root"
            )
        if not self.spec.idle_power_w <= watts <= self.default_power_limit_w:
            raise ConfigurationError(
                f"power limit {watts!r} W outside "
                f"[{self.spec.idle_power_w}, {self.default_power_limit_w:.0f}] W"
            )
        self.power_limit_w = float(watts)

    def reset_power_limit(self, *, privileged: bool = False) -> None:
        """Restore the default board power limit (root-only)."""
        if not privileged:
            raise ClockPermissionError(
                f"{self.spec.name}[{self.index}]: power limit changes require root"
            )
        self.power_limit_w = self.default_power_limit_w

    def set_api_restriction(self, restricted: bool) -> None:
        """Toggle whether unprivileged clock changes are allowed.

        This is the simulated ``nvmlDeviceSetAPIRestriction`` — only the
        SLURM plugin (acting as root) calls it.
        """
        self.api_restricted = bool(restricted)

    def _record_clock_change(self) -> None:
        now = self.clock.now
        if self._clock_times and self._clock_times[-1] == now:
            self._clock_values[-1] = (self._core_mhz, self._mem_mhz)
        else:
            self._clock_times.append(now)
            self._clock_values.append((self._core_mhz, self._mem_mhz))

    def clocks_at(self, t: float) -> tuple[int, int]:
        """Application clocks (core, mem) in effect at virtual time ``t``."""
        i = bisect.bisect_right(self._clock_times, t) - 1
        return self._clock_values[max(i, 0)]

    def apply_clock_plan(
        self,
        times_s,
        pairs,
        *,
        privileged: bool = False,
    ) -> None:
        """Commit a whole sequence of clock changes in one call.

        The batched engine's analogue of repeated
        :meth:`set_application_clocks` calls: ``pairs[i] = (core_mhz,
        mem_mhz)`` lands on the history at ``times_s[i]`` (ascending).
        The same privilege model applies; every pair is validated before
        anything is committed, so a bad plan leaves the board untouched.
        """
        times_s = list(times_s)
        pairs = [(int(c), int(m)) for c, m in pairs]
        if len(times_s) != len(pairs):
            raise SimulationError(
                f"clock plan length mismatch ({len(times_s)} vs {len(pairs)})"
            )
        if not pairs:
            return
        if self.api_restricted and not privileged:
            raise ClockPermissionError(
                f"{self.spec.name}[{self.index}]: application clocks are "
                "root-restricted (no SetAPIRestriction lowering in effect)"
            )
        for core, mem in set(pairs):
            self.spec.validate_clocks(mem, core)
        if any(b < a for a, b in zip(times_s, times_s[1:])):
            raise SimulationError("clock plan times must be ascending")
        if self._clock_times and times_s[0] < self._clock_times[-1]:
            raise SimulationError(
                f"clock plan starts at {times_s[0]!r}s, before the last "
                f"recorded change at {self._clock_times[-1]!r}s"
            )
        if (
            not (self._clock_times and self._clock_times[-1] == times_s[0])
            and all(b > a for a, b in zip(times_s, times_s[1:]))
        ):
            # No merge-at-equal-time anywhere in this plan: bulk append.
            self._clock_times.extend(float(t) for t in times_s)
            self._clock_values.extend(pairs)
        else:
            for t, value in zip(times_s, pairs):
                if self._clock_times and self._clock_times[-1] == t:
                    self._clock_values[-1] = value
                else:
                    self._clock_times.append(float(t))
                    self._clock_values.append(value)
        self._core_mhz, self._mem_mhz = pairs[-1]
        self.clock_set_calls += len(pairs)

    # -------------------------------------------------------------- execution

    def execute(self, kernel: KernelIR, submit_time: float | None = None) -> KernelExecutionRecord:
        """Run one kernel at the current clocks, advancing virtual time.

        The kernel starts when the hardware queue is free (serial execution
        per device) and its busy power segment is appended to the timeline.
        """
        submit = self.clock.now if submit_time is None else float(submit_time)
        if submit < 0:
            raise SimulationError(f"negative submit time {submit!r}")
        start = max(submit, self._busy_until)
        core_mhz, timing, power = self._throttled_operating_point(kernel, start)
        end = start + timing.time_s
        self._seg_start.append(start)
        self._seg_end.append(end)
        self._seg_power.append(power)
        self._busy_until = end
        if end > self.clock.now:
            self.clock.advance_to(end)
        record = KernelExecutionRecord(
            kernel_name=kernel.name,
            device_name=self.spec.name,
            core_mhz=core_mhz,
            mem_mhz=self._mem_mhz,
            start_s=start,
            end_s=end,
            energy_j=power * timing.time_s,
            avg_power_w=power,
            u_core=timing.u_core,
            u_mem=timing.u_mem,
        )
        self.records.append(record)
        return record

    def transfer(self, nbytes: float, submit_time: float | None = None) -> KernelExecutionRecord:
        """Host-device data transfer over the PCIe-class link.

        Occupies the device timeline (copies serialize with kernels on the
        same hardware queue) at a low, memory-only power draw.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        submit = self.clock.now if submit_time is None else float(submit_time)
        start = max(submit, self._busy_until)
        duration = (
            nbytes / (self.spec.pcie_bandwidth_gbs * 1e9)
            + self.spec.launch_overhead_s
        )
        power = float(self.power_model.power(self._core_mhz, self._mem_mhz, 0.0, 0.3))
        end = start + duration
        self._seg_start.append(start)
        self._seg_end.append(end)
        self._seg_power.append(power)
        self._busy_until = end
        if end > self.clock.now:
            self.clock.advance_to(end)
        record = KernelExecutionRecord(
            kernel_name="<memcpy>",
            device_name=self.spec.name,
            core_mhz=self._core_mhz,
            mem_mhz=self._mem_mhz,
            start_s=start,
            end_s=end,
            energy_j=power * duration,
            avg_power_w=power,
            u_core=0.0,
            u_mem=0.3,
        )
        self.records.append(record)
        return record

    def _throttled_operating_point(self, kernel: KernelIR, start_s: float | None = None):
        """Clocks/timing/power for a kernel under the board power limit.

        At the application clocks the kernel may exceed the power limit; the
        board then throttles: it runs at the highest supported core clock
        (≤ the application clock) whose power fits. The lowest table clock
        is used if nothing fits. An active injected thermal-throttle window
        additionally caps the core clock at the window's MHz parameter.
        """
        ceiling = self._core_mhz
        if self.fault_injector is not None:
            at = self.clock.now if start_s is None else start_s
            throttle = self.fault_injector.active(
                "hw.thermal_throttle", at, target=self.index
            )
            if throttle is not None and throttle.param is not None:
                ceiling = min(ceiling, int(throttle.param))
        candidates = [f for f in self.spec.core_freqs_mhz if f <= ceiling]
        if not candidates:
            # Thermal cap below the table minimum: the board pins its
            # lowest supported clock.
            candidates = [self.spec.min_core_mhz]
        for core_mhz in reversed(candidates):
            timing = self.timing_model.execute(kernel, core_mhz, self._mem_mhz)
            power = float(
                self.power_model.power(
                    core_mhz,
                    self._mem_mhz,
                    timing.core_power_utilization,
                    timing.u_mem,
                )
            )
            if power <= self.power_limit_w or core_mhz == candidates[0]:
                return core_mhz, timing, power
        # Application clock below the table minimum cannot happen (clocks
        # are validated), but keep a defensive fallback.
        core_mhz = self.spec.min_core_mhz  # pragma: no cover
        timing = self.timing_model.execute(kernel, core_mhz, self._mem_mhz)
        power = float(
            self.power_model.power(
                core_mhz, self._mem_mhz, timing.core_power_utilization, timing.u_mem
            )
        )
        return core_mhz, timing, power  # pragma: no cover

    def extend_power_timeline(self, starts, ends, powers) -> None:
        """Append a run of busy segments in one call (engine fast path).

        Segments must be non-overlapping and ascending, starting no
        earlier than the current queue drain time — the same invariant
        serial :meth:`execute` calls maintain one segment at a time. The
        device's busy horizon moves to the last segment's end; the caller
        is responsible for advancing the virtual clock.
        """
        starts = [float(t) for t in starts]
        ends = [float(t) for t in ends]
        powers = [float(p) for p in powers]
        if not (len(starts) == len(ends) == len(powers)):
            raise SimulationError("segment arrays must have equal length")
        if not starts:
            return
        bounds = [self._busy_until]
        for s, e in zip(starts, ends):
            bounds.extend((s, e))
        if any(b < a for a, b in zip(bounds, bounds[1:])):
            raise SimulationError(
                "batched segments must be ascending and non-overlapping, "
                "starting at or after the device busy horizon"
            )
        self._seg_start.extend(starts)
        self._seg_end.extend(ends)
        self._seg_power.extend(powers)
        self._busy_until = ends[-1]

    # ------------------------------------------------------------------ power

    def instantaneous_power(self, t: float) -> float:
        """Board power draw (W) at virtual time ``t``: busy segment or idle."""
        i = bisect.bisect_right(self._seg_start, t) - 1
        if i >= 0 and self._seg_start[i] <= t < self._seg_end[i]:
            return self._seg_power[i]
        core, mem = self.clocks_at(t)
        return self.power_model.idle_power(core, mem)

    def energy_between(self, t0: float, t1: float) -> float:
        """True (analytic) board energy in joules over ``[t0, t1]``.

        Integrates busy segments exactly and fills gaps with idle power at
        the clocks then in effect.
        """
        if t1 < t0:
            raise SimulationError(f"energy window reversed: [{t0!r}, {t1!r}]")
        energy = 0.0
        cursor = t0
        for s, e, p in zip(self._seg_start, self._seg_end, self._seg_power):
            if e <= t0:
                continue
            if s >= t1:
                break
            if s > cursor:
                energy += self._idle_energy(cursor, min(s, t1))
                cursor = min(s, t1)
            lo, hi = max(s, cursor), min(e, t1)
            if hi > lo:
                energy += p * (hi - lo)
                cursor = hi
        if cursor < t1:
            energy += self._idle_energy(cursor, t1)
        return energy

    def energy_between_many(self, t0s, t1s) -> "np.ndarray":
        """True board energies (J) over many windows in one vectorized pass.

        The batched counterpart of :meth:`energy_between`: the power
        timeline is decomposed once into piecewise-constant intervals
        (busy-segment and clock-change breakpoints), and every window
        integrates as one overlap product against those intervals. Sums
        accumulate positive contributions only, so there is no
        cancellation; agreement with per-window :meth:`energy_between`
        is within a few ulp per interval.
        """
        import numpy as np

        t0 = np.asarray(t0s, dtype=float)
        t1 = np.asarray(t1s, dtype=float)
        if t0.shape != t1.shape:
            raise SimulationError(
                f"window arrays have mismatched shapes ({t0.shape} vs {t1.shape})"
            )
        if t0.size == 0:
            return np.zeros_like(t0)
        if np.any(t1 < t0):
            i = int(np.argmax(t1 < t0))
            raise SimulationError(
                f"energy window reversed: [{t0.flat[i]!r}, {t1.flat[i]!r}]"
            )
        seg_s = np.asarray(self._seg_start, dtype=float)
        seg_e = np.asarray(self._seg_end, dtype=float)
        seg_p = np.asarray(self._seg_power, dtype=float)
        clk_t = np.asarray(self._clock_times, dtype=float)
        # Breakpoints: every instant the board's power can change, plus a
        # floor below every query so the first interval covers all windows.
        floor = min(float(t0.min()), float(clk_t[0]))
        edges = np.unique(np.concatenate(([floor], seg_s, seg_e, clk_t)))
        # Extend the last interval past every query (idle tail).
        ceil = max(float(t1.max()), float(edges[-1])) + 1.0
        lo, hi = edges, np.append(edges[1:], ceil)
        # Power over each interval [lo, hi): the busy segment covering it,
        # or idle power at the clocks then in effect.
        if seg_s.size:
            i = np.searchsorted(seg_s, lo, side="right") - 1
            ic = np.clip(i, 0, None)
            busy = (i >= 0) & (lo < seg_e[ic])
            p_busy = seg_p[ic]
        else:
            busy = np.zeros(lo.shape, dtype=bool)
            p_busy = np.zeros(lo.shape)
        j = np.maximum(np.searchsorted(clk_t, lo, side="right") - 1, 0)
        cores = np.asarray([c for c, _ in self._clock_values], dtype=float)[j]
        mems = np.asarray([m for _, m in self._clock_values], dtype=float)[j]
        p_idle = np.asarray(
            self.power_model.power(cores, mems, 0.0, 0.0), dtype=float
        )
        p = np.where(busy, p_busy, p_idle)
        # Window x interval overlap, chunked to bound peak memory.
        flat0, flat1 = t0.reshape(-1), t1.reshape(-1)
        out = np.empty(flat0.shape)
        chunk = max(1, 2_000_000 // max(lo.size, 1))
        for k in range(0, flat0.size, chunk):
            o0 = flat0[k : k + chunk, None]
            o1 = flat1[k : k + chunk, None]
            overlap = np.minimum(hi[None, :], o1) - np.maximum(lo[None, :], o0)
            out[k : k + chunk] = np.clip(overlap, 0.0, None) @ p
        return out.reshape(t0.shape)

    def _idle_energy(self, t0: float, t1: float) -> float:
        """Idle energy over a gap, split at clock-change boundaries."""
        energy = 0.0
        cursor = t0
        i = bisect.bisect_right(self._clock_times, t0)
        boundaries = [t for t in self._clock_times[i:] if t < t1] + [t1]
        for boundary in boundaries:
            core, mem = self.clocks_at(cursor)
            energy += self.power_model.idle_power(core, mem) * (boundary - cursor)
            cursor = boundary
        return energy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedGPU({self.spec.name!r}, index={self.index}, "
            f"clocks={self._core_mhz}/{self._mem_mhz} MHz, "
            f"restricted={self.api_restricted})"
        )
