"""Voltage/frequency curve.

DVFS saves energy because dynamic power scales as ``C · V(f)² · f`` and the
achievable voltage shrinks with the clock. We model ``V(f)`` as an affine ramp
between ``(f_min, v_min)`` and ``(f_max, v_max)`` with a mild superlinear
exponent: near the top of the table each extra MHz costs disproportionally
more voltage, which is what makes the last few frequency bins so expensive on
real boards (and what creates interior energy minima, §2.2 / Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class VoltageCurve:
    """Voltage as a function of core frequency.

    Attributes
    ----------
    f_min_mhz, f_max_mhz:
        Frequency range covered by the curve (the device table endpoints).
    v_min, v_max:
        Voltages at the endpoints (volts).
    gamma:
        Shape exponent; ``1.0`` is affine, ``> 1`` makes high frequencies
        voltage-hungry.
    """

    f_min_mhz: float
    f_max_mhz: float
    v_min: float = 0.60
    v_max: float = 1.08
    gamma: float = 3.5

    def __post_init__(self) -> None:
        if self.f_max_mhz <= self.f_min_mhz:
            raise ConfigurationError(
                f"voltage curve needs f_max > f_min "
                f"({self.f_max_mhz!r} <= {self.f_min_mhz!r})"
            )
        if self.v_max <= self.v_min:
            raise ConfigurationError(
                f"voltage curve needs v_max > v_min "
                f"({self.v_max!r} <= {self.v_min!r})"
            )
        if self.gamma <= 0:
            raise ConfigurationError(f"gamma must be positive ({self.gamma!r})")

    def voltage(self, f_mhz: float | np.ndarray) -> float | np.ndarray:
        """Voltage (V) at core frequency ``f_mhz``.

        Frequencies are clipped to the curve's range: the devices never run
        outside their tables, but model-search code may probe continuous
        frequencies in between.
        """
        f = np.clip(f_mhz, self.f_min_mhz, self.f_max_mhz)
        x = (f - self.f_min_mhz) / (self.f_max_mhz - self.f_min_mhz)
        v = self.v_min + (self.v_max - self.v_min) * np.power(x, self.gamma)
        if np.isscalar(f_mhz):
            return float(v)
        return v

    def normalized_v2f(self, f_mhz: float | np.ndarray) -> float | np.ndarray:
        """Dynamic-power scale factor ``(V(f)/V_max)² · (f/f_max)``.

        Equals 1 at the top of the table; this is the factor the core-domain
        dynamic power is multiplied by.
        """
        f = np.clip(f_mhz, self.f_min_mhz, self.f_max_mhz)
        x = (f - self.f_min_mhz) / (self.f_max_mhz - self.f_min_mhz)
        v = self.v_min + (self.v_max - self.v_min) * np.power(x, self.gamma)
        scale = (v / self.v_max) ** 2 * (f / self.f_max_mhz)
        if np.isscalar(f_mhz):
            return float(scale)
        return scale
