"""Sampled power sensor.

Real GPU power reads are asynchronous and rate-limited: the paper (§4.4,
citing Burtscher et al.) notes that meaningful readings need sampling
intervals around 15 ms, so very short kernels cannot be profiled accurately.
:class:`PowerSensor` reproduces this limitation: it reads the device's true
instantaneous power only on a fixed virtual-time sampling grid, applies a
first-order lag (the on-board averaging window) and seeded gaussian noise,
then integrates the samples with the trapezoid rule.

Benchmarks that need ground truth use
:meth:`repro.hw.device.SimulatedGPU.energy_between` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import TransientError, ValidationError
from repro.common.rng import derive_seed, make_rng
from repro.hw.device import SimulatedGPU
from repro.obs.session import TraceSession, resolve_trace

#: Default sampling interval (s): the ~15 ms hardware limitation from §4.4.
DEFAULT_SAMPLING_INTERVAL_S: float = 15.0e-3


class SensorDropoutError(TransientError):
    """Raised when every sample in a requested window was dropped.

    Transient: the sensor is expected to come back; callers (the energy
    profiler) fall back to the analytic estimate for the affected window.
    """


@dataclass(frozen=True)
class PowerSample:
    """One sensor reading: virtual timestamp and reported power (W)."""

    t: float
    power_w: float


class PowerSensor:
    """Rate-limited, lagged, noisy view of a device's power draw."""

    def __init__(
        self,
        device: SimulatedGPU,
        sampling_interval_s: float = DEFAULT_SAMPLING_INTERVAL_S,
        lag_fraction: float = 0.5,
        noise_std_w: float = 1.5,
        seed: int | None = None,
        trace: TraceSession | None = None,
    ) -> None:
        if sampling_interval_s <= 0:
            raise ValidationError(
                f"sampling interval must be positive ({sampling_interval_s!r})"
            )
        if not 0.0 <= lag_fraction <= 1.0:
            raise ValidationError(f"lag fraction must be in [0, 1] ({lag_fraction!r})")
        if noise_std_w < 0:
            raise ValidationError(f"noise std cannot be negative ({noise_std_w!r})")
        self.device = device
        self.trace = resolve_trace(trace)
        self._track = f"sensor{device.index}"
        self.sampling_interval_s = float(sampling_interval_s)
        self.lag_fraction = float(lag_fraction)
        self.noise_std_w = float(noise_std_w)
        self._seed = (
            derive_seed(device.spec.name, device.index, "power-sensor")
            if seed is None
            else int(seed)
        )

    def sample_window(self, t0: float, t1: float) -> list[PowerSample]:
        """Sensor readings on the sampling grid covering ``[t0, t1]``.

        The grid is global (anchored at t=0), not at ``t0``: a real sensor
        free-runs regardless of when the caller starts watching. Each
        reading is lagged by ``lag_fraction`` of an interval (the hardware
        averaging delay) and carries seeded gaussian noise. With a fault
        injector attached to the device, samples may be dropped
        (``hw.sensor_dropout``) or frozen at the previous reading
        (``hw.sensor_stuck``).
        """
        if t1 < t0:
            raise ValidationError(f"sample window reversed: [{t0!r}, {t1!r}]")
        dt = self.sampling_interval_s
        first_idx = int(np.floor(t0 / dt))
        last_idx = int(np.ceil(t1 / dt))
        times = np.arange(first_idx, last_idx + 1, dtype=float) * dt
        lag = self.lag_fraction * dt
        rng = make_rng(derive_seed(self._seed, first_idx, last_idx))
        noise = rng.normal(0.0, self.noise_std_w, size=times.shape)
        injector = self.device.fault_injector
        samples: list[PowerSample] = []
        last_power: float | None = None
        for t, eps in zip(times, noise):
            if injector is not None and injector.fires(
                "hw.sensor_dropout", float(t), target=self.device.index
            ):
                continue
            if (
                injector is not None
                and last_power is not None
                and injector.active(
                    "hw.sensor_stuck", float(t), target=self.device.index
                )
            ):
                samples.append(PowerSample(t=float(t), power_w=last_power))
                continue
            read_at = max(t - lag, 0.0)
            power = self.device.instantaneous_power(read_at) + float(eps)
            last_power = max(power, 0.0)
            samples.append(PowerSample(t=float(t), power_w=last_power))
        return samples

    def measure_energy(self, t0: float, t1: float) -> float:
        """Sensor-estimated energy (J) over ``[t0, t1]`` via trapezoid rule.

        For windows shorter than one sampling interval this degrades to a
        single-sample rectangle — the small-kernel inaccuracy of §4.4.
        """
        samples = self.sample_window(t0, t1)
        if not samples:
            if self.trace.enabled:
                self.trace.instant(
                    t1, self._track, "sensor.dropout", "window empty", t0=t0, t1=t1
                )
                self.trace.count("sensor.dropouts")
            raise SensorDropoutError(
                f"sensor returned no samples in [{t0:.6f}, {t1:.6f}]s"
            )
        if len(samples) == 1:
            energy = samples[0].power_w * (t1 - t0)
        else:
            times = np.array([s.t for s in samples])
            powers = np.array([s.power_w for s in samples])
            # Clip the integration range to the requested window: interpolate
            # power at the window edges from the neighbouring grid samples.
            p0 = float(np.interp(t0, times, powers))
            p1 = float(np.interp(t1, times, powers))
            inside = (times > t0) & (times < t1)
            ts = np.concatenate(([t0], times[inside], [t1]))
            ps = np.concatenate(([p0], powers[inside], [p1]))
            energy = float(np.trapezoid(ps, ts))
        if self.trace.enabled:
            self.trace.add_span(
                self._track,
                "sensor.window",
                "measure",
                t0,
                t1,
                n_samples=len(samples),
                energy_j=energy,
            )
            self.trace.count("sensor.windows")
        return energy

    def measure_average_power(self, t0: float, t1: float) -> float:
        """Sensor-estimated mean power (W) over a window."""
        if t1 <= t0:
            samples = self.sample_window(t0, t0)
            if not samples:
                raise SensorDropoutError(
                    f"sensor returned no sample at t={t0:.6f}s"
                )
            return samples[-1].power_w
        return self.measure_energy(t0, t1) / (t1 - t0)
