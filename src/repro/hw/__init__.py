"""Simulated GPU hardware substrate.

This package replaces the paper's physical NVIDIA V100 / A100 and AMD MI100
boards with an analytical DVFS model:

- :mod:`~repro.hw.specs` — device catalogs, including the exact frequency
  tables of Figure 1 (196 / 81 / 16 core configurations),
- :mod:`~repro.hw.voltage` — the voltage/frequency curve,
- :mod:`~repro.hw.power` — board power as a function of clocks + utilization,
- :mod:`~repro.hw.timing` — roofline kernel timing from the instruction mix,
- :mod:`~repro.hw.device` — the stateful simulated GPU (clocks, privileges,
  power trace, energy counters) that executes kernels in virtual time,
- :mod:`~repro.hw.sensor` — the sampled power sensor with the ~15 ms
  granularity limitation described in §4.4.
"""

from repro.hw.cache import clear_model_cache, models_for
from repro.hw.device import KernelExecutionRecord, SimulatedGPU
from repro.hw.power import PowerModel
from repro.hw.sensor import PowerSensor
from repro.hw.specs import (
    AMD_MI100,
    GPUSpec,
    NVIDIA_A100,
    NVIDIA_TITAN_X,
    NVIDIA_V100,
    get_spec,
    known_devices,
)
from repro.hw.timing import KernelTiming, SweepTiming, TimingModel
from repro.hw.voltage import VoltageCurve

__all__ = [
    "models_for",
    "clear_model_cache",
    "SweepTiming",
    "GPUSpec",
    "NVIDIA_V100",
    "NVIDIA_A100",
    "NVIDIA_TITAN_X",
    "AMD_MI100",
    "get_spec",
    "known_devices",
    "VoltageCurve",
    "PowerModel",
    "TimingModel",
    "KernelTiming",
    "SimulatedGPU",
    "KernelExecutionRecord",
    "PowerSensor",
]
