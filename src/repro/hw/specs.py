"""GPU device catalogs.

The frequency tables reproduce Figure 1 of the paper exactly:

- NVIDIA V100: memory fixed at 877 MHz, 196 core configurations 135–1530 MHz,
- NVIDIA A100: memory fixed at 1215 MHz, 81 core configurations 210–1410 MHz,
- AMD MI100: memory fixed at 1200 MHz, 16 core configurations 300–1502 MHz.

Defaults follow the paper's observations: the V100 default application clock
is 1312 MHz (below the 1530 MHz maximum, so speedups > 1 are reachable,
Fig. 7), while the MI100 auto mode behaves like its top performance level
(the default is always the fastest configuration, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.common.errors import ConfigurationError

#: Default per-CU issue throughputs (operations per cycle per compute unit)
#: for each static instruction class. Values follow the relative widths of
#: modern GPU pipelines: full-rate simple ALU ops, half-rate integer
#: multiplies, slow dividers, quarter-rate special-function units.
_NVIDIA_THROUGHPUT: Mapping[str, float] = MappingProxyType(
    {
        "int_add": 64.0,
        "int_mul": 32.0,
        "int_div": 4.0,
        "int_bw": 64.0,
        "float_add": 64.0,
        "float_mul": 64.0,
        "float_div": 8.0,
        "sf": 16.0,
        "gl_access": 32.0,  # issue cost only; DRAM time is modeled separately
        "loc_access": 32.0,
    }
)

_AMD_THROUGHPUT: Mapping[str, float] = MappingProxyType(
    {
        "int_add": 64.0,
        "int_mul": 24.0,
        "int_div": 4.0,
        "int_bw": 64.0,
        "float_add": 64.0,
        "float_mul": 64.0,
        "float_div": 6.0,
        "sf": 12.0,
        "gl_access": 32.0,
        "loc_access": 32.0,
    }
)


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    name, vendor:
        Marketing name and vendor tag (``"nvidia"`` or ``"amd"``).
    compute_units:
        Number of SMs / CUs.
    core_freqs_mhz, mem_freqs_mhz:
        Supported clock tables, ascending, in MHz.
    default_core_mhz, default_mem_mhz:
        The configuration the driver applies when no application clock has
        been requested (the paper's baseline).
    peak_bandwidth_gbs:
        Peak DRAM bandwidth at the reference memory clock, in GB/s.
    idle_power_w, core_power_w, mem_power_w:
        Power model parameters: static draw, maximum core-domain dynamic
        draw, maximum memory-domain dynamic draw (watts).
    v_min, v_max:
        Core voltage range across the frequency table (volts).
    bw_knee:
        Fraction of the maximum core frequency below which the cores can no
        longer issue enough memory requests to saturate DRAM bandwidth.
    launch_overhead_s:
        Fixed per-kernel launch latency (seconds).
    throughput:
        Per-CU issue rate (ops/cycle) per instruction class.
    """

    name: str
    vendor: str
    compute_units: int
    core_freqs_mhz: tuple[int, ...]
    mem_freqs_mhz: tuple[int, ...]
    default_core_mhz: int
    default_mem_mhz: int
    peak_bandwidth_gbs: float
    idle_power_w: float
    core_power_w: float
    mem_power_w: float
    v_min: float = 0.60
    v_max: float = 1.08
    v_gamma: float = 3.5
    bw_knee: float = 0.45
    launch_overhead_s: float = 5.0e-6
    #: Host-device interconnect bandwidth (GB/s): PCIe gen3 x16 class for
    #: the NVIDIA parts, Infinity-Fabric-attached for the MI100.
    pcie_bandwidth_gbs: float = 12.0
    throughput: Mapping[str, float] = field(
        default_factory=lambda: _NVIDIA_THROUGHPUT
    )

    def __post_init__(self) -> None:
        if not self.core_freqs_mhz or not self.mem_freqs_mhz:
            raise ConfigurationError(f"{self.name}: empty frequency table")
        if list(self.core_freqs_mhz) != sorted(set(self.core_freqs_mhz)):
            raise ConfigurationError(
                f"{self.name}: core frequency table must be ascending and unique"
            )
        if self.default_core_mhz not in self.core_freqs_mhz:
            raise ConfigurationError(
                f"{self.name}: default core clock {self.default_core_mhz} MHz "
                "is not in the supported table"
            )
        if self.default_mem_mhz not in self.mem_freqs_mhz:
            raise ConfigurationError(
                f"{self.name}: default memory clock {self.default_mem_mhz} MHz "
                "is not in the supported table"
            )

    @property
    def max_core_mhz(self) -> int:
        """Highest supported core clock."""
        return self.core_freqs_mhz[-1]

    @property
    def min_core_mhz(self) -> int:
        """Lowest supported core clock."""
        return self.core_freqs_mhz[0]

    def validate_clocks(self, mem_mhz: int, core_mhz: int) -> None:
        """Raise :class:`ConfigurationError` for unsupported clock pairs."""
        if core_mhz not in self.core_freqs_mhz:
            raise ConfigurationError(
                f"{self.name}: unsupported core clock {core_mhz} MHz"
            )
        if mem_mhz not in self.mem_freqs_mhz:
            raise ConfigurationError(
                f"{self.name}: unsupported memory clock {mem_mhz} MHz"
            )

    def nearest_core_mhz(self, core_mhz: float) -> int:
        """Snap an arbitrary frequency to the nearest supported core clock."""
        table = np.asarray(self.core_freqs_mhz, dtype=float)
        return int(self.core_freqs_mhz[int(np.argmin(np.abs(table - core_mhz)))])


def _freq_table(lo: int, hi: int, count: int) -> tuple[int, ...]:
    """Evenly spaced integer clock table with exactly ``count`` entries."""
    table = np.unique(np.rint(np.linspace(lo, hi, count)).astype(int))
    if len(table) != count:  # pragma: no cover - guards catalog typos
        raise ConfigurationError(
            f"frequency table [{lo}, {hi}] with {count} steps collapsed to "
            f"{len(table)} unique entries"
        )
    return tuple(int(f) for f in table)


#: NVIDIA V100 (SXM2 16 GB): 196 core configs 135–1530 MHz, HBM2 at 877 MHz.
NVIDIA_V100 = GPUSpec(
    name="NVIDIA V100",
    vendor="nvidia",
    compute_units=80,
    core_freqs_mhz=_freq_table(135, 1530, 196),
    mem_freqs_mhz=(877,),
    default_core_mhz=_freq_table(135, 1530, 196)[
        int(np.argmin(np.abs(np.array(_freq_table(135, 1530, 196)) - 1312)))
    ],
    default_mem_mhz=877,
    peak_bandwidth_gbs=900.0,
    idle_power_w=17.0,
    core_power_w=285.0,
    mem_power_w=38.0,
    throughput=_NVIDIA_THROUGHPUT,
)

#: NVIDIA A100 (SXM4 40 GB): 81 core configs 210–1410 MHz, HBM2e at 1215 MHz.
NVIDIA_A100 = GPUSpec(
    name="NVIDIA A100",
    vendor="nvidia",
    compute_units=108,
    core_freqs_mhz=_freq_table(210, 1410, 81),
    mem_freqs_mhz=(1215,),
    default_core_mhz=1095,
    default_mem_mhz=1215,
    peak_bandwidth_gbs=1555.0,
    idle_power_w=20.0,
    core_power_w=300.0,
    mem_power_w=48.0,
    throughput=_NVIDIA_THROUGHPUT,
)

#: AMD MI100: 16 performance levels 300–1502 MHz, HBM2 at 1200 MHz. The auto
#: mode runs at the top level, so the default equals the maximum clock.
AMD_MI100 = GPUSpec(
    name="AMD MI100",
    vendor="amd",
    compute_units=120,
    core_freqs_mhz=_freq_table(300, 1502, 16),
    mem_freqs_mhz=(1200,),
    default_core_mhz=1502,
    default_mem_mhz=1200,
    peak_bandwidth_gbs=1228.8,
    idle_power_w=16.0,
    core_power_w=255.0,
    mem_power_w=35.0,
    throughput=_AMD_THROUGHPUT,
)

#: NVIDIA Titan X (Pascal): the §2.1 example of a board that exposes a
#: choice of memory frequencies (four levels) alongside the core table.
#: GDDR5X instead of HBM, so the memory clock is a real tuning knob.
NVIDIA_TITAN_X = GPUSpec(
    name="NVIDIA Titan X",
    vendor="nvidia",
    compute_units=28,
    core_freqs_mhz=_freq_table(139, 1911, 120),
    mem_freqs_mhz=(405, 810, 4513, 5005),
    default_core_mhz=_freq_table(139, 1911, 120)[
        int(np.argmin(np.abs(np.array(_freq_table(139, 1911, 120)) - 1417)))
    ],
    default_mem_mhz=5005,
    peak_bandwidth_gbs=480.0,
    idle_power_w=15.0,
    core_power_w=215.0,
    mem_power_w=40.0,
    throughput=_NVIDIA_THROUGHPUT,
)

_CATALOG: dict[str, GPUSpec] = {
    "v100": NVIDIA_V100,
    "a100": NVIDIA_A100,
    "mi100": AMD_MI100,
    "titanx": NVIDIA_TITAN_X,
}


def get_spec(model: str) -> GPUSpec:
    """Look up a device spec by short name (``"v100"``, ``"a100"``, ``"mi100"``)."""
    key = model.strip().lower()
    if key not in _CATALOG:
        raise ConfigurationError(
            f"unknown GPU model {model!r}; known models: {sorted(_CATALOG)}"
        )
    return _CATALOG[key]


def known_devices() -> tuple[str, ...]:
    """Short names of all devices in the catalog."""
    return tuple(sorted(_CATALOG))
