"""Board power model.

``P(f_core, f_mem, u_core, u_mem) = P_idle
    + P_core_max · (V(f)/V_max)² · (f/f_max) · (α + (1-α)·u_core)
    + P_mem_max  · (f_mem/f_mem_max)        · (β + (1-β)·u_mem)``

The ``α``/``β`` floors model clock-tree and always-on domain power that burns
whenever the clocks run, even at low utilization — the reason an idle-ish but
high-clocked GPU still draws well above ``P_idle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.hw.specs import GPUSpec
from repro.hw.voltage import VoltageCurve


@dataclass(frozen=True)
class PowerModel:
    """Analytic power model bound to one device spec."""

    spec: GPUSpec
    #: Utilization-independent fraction of core-domain dynamic power.
    core_floor: float = 0.10
    #: Utilization-independent fraction of memory-domain dynamic power.
    mem_floor: float = 0.12
    curve: VoltageCurve = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.core_floor < 1.0 or not 0.0 <= self.mem_floor < 1.0:
            raise ValidationError("power floors must be in [0, 1)")
        object.__setattr__(
            self,
            "curve",
            VoltageCurve(
                f_min_mhz=float(self.spec.min_core_mhz),
                f_max_mhz=float(self.spec.max_core_mhz),
                v_min=self.spec.v_min,
                v_max=self.spec.v_max,
                gamma=self.spec.v_gamma,
            ),
        )

    def power(
        self,
        core_mhz: float | np.ndarray,
        mem_mhz: float | np.ndarray,
        u_core: float | np.ndarray,
        u_mem: float | np.ndarray,
    ) -> float | np.ndarray:
        """Instantaneous board power (W) for the given clocks and utilizations.

        ``u_core`` is the *switching activity* of the core domain: phase
        occupancy × issue-slot activity (an FMA-dense kernel at full
        occupancy has ``u_core ≈ 1``; a divider-bound kernel keeps most of
        the datapath dark even when compute-bound). ``u_mem`` is the DRAM
        phase occupancy.
        """
        u_core = np.clip(u_core, 0.0, 1.0)
        u_mem = np.clip(u_mem, 0.0, 1.0)
        core_scale = self.curve.normalized_v2f(core_mhz)
        mem_scale = np.asarray(mem_mhz, dtype=float) / float(
            self.spec.mem_freqs_mhz[-1]
        )
        p = (
            self.spec.idle_power_w
            + self.spec.core_power_w
            * core_scale
            * (self.core_floor + (1.0 - self.core_floor) * u_core)
            + self.spec.mem_power_w
            * mem_scale
            * (self.mem_floor + (1.0 - self.mem_floor) * u_mem)
        )
        if np.isscalar(core_mhz) and np.isscalar(u_core):
            return float(p)
        return p

    def idle_power(self, core_mhz: float, mem_mhz: float) -> float:
        """Board power with zero utilization at the given clocks."""
        return float(self.power(core_mhz, mem_mhz, 0.0, 0.0))

    def peak_power(self) -> float:
        """Board power at maximum clocks and full utilization (≈ TDP)."""
        return float(
            self.power(
                self.spec.max_core_mhz, self.spec.mem_freqs_mhz[-1], 1.0, 1.0
            )
        )

    def power_bounds(self) -> tuple[float, float]:
        """The reachable ``[P_idle, P_peak]`` average-power envelope (W).

        Any measured or modeled average kernel power must land in this
        interval — the physical sanity bound the validation plane checks
        every sweep against.
        """
        return self.spec.idle_power_w, self.peak_power()
