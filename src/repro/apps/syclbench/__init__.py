"""The SYCL benchmark suite (23 applications, §8.1)."""

from repro.apps.syclbench.definitions import (
    BENCHMARK_NAMES,
    SyclBenchmark,
    get_benchmark,
    iter_benchmarks,
)

__all__ = ["SyclBenchmark", "BENCHMARK_NAMES", "get_benchmark", "iter_benchmarks"]
