"""Instruction-mix models of the 23 SYCL benchmarks (paper §8.1–8.2).

Each benchmark is a single device kernel described by effective per-work-item
dynamic instruction counts (loop trip counts resolved — what the paper's
compiler pass sees after its static analysis), a launch size and a locality
factor. The mixes are literature-informed and chosen so each benchmark lands
in the energy-characterization regime the paper measured:

- *compute-bound* kernels (``lin_reg_coeff``, ``nbody``, ``sobel7``, ...)
  are core-frequency sensitive: little energy headroom, low clocks are very
  inefficient (Fig. 2a),
- *memory-bound* kernels (``median``, ``vec_add``, ``gemm`` as measured on
  V100, ...) barely lose performance when the core clock drops until the
  bandwidth knee, so they save a lot of energy (Fig. 2b),
- ``black_scholes`` sits in between, giving the rich EDP/ES/PL structure of
  Figs. 4–5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.frontend.kernels import KERNELS, backed_kernel_ir
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR


@dataclass(frozen=True)
class SyclBenchmark:
    """One benchmark: its kernel model plus provenance notes."""

    name: str
    kernel: KernelIR
    description: str
    regime: str  # "compute", "memory" or "balanced" (expected on V100)


def _k(name: str, mix: InstructionMix, work_items: int, locality: float) -> KernelIR:
    # Kernels with a device-Python source form are built through the §6.1
    # front end; the declared mix stays as the cross-checked contract.
    if name in KERNELS:
        return backed_kernel_ir(name, mix, work_items, locality)
    return KernelIR(name=name, mix=mix, work_items=work_items, locality=locality)


_DEF = 1 << 24  # default launch size (16 Mi work-items)

_BENCHMARKS: tuple[SyclBenchmark, ...] = (
    SyclBenchmark(
        "vec_add",
        _k("vec_add", InstructionMix(float_add=1, gl_access=3), _DEF * 4, 0.0),
        "Streaming vector addition c = a + b.",
        "memory",
    ),
    SyclBenchmark(
        "dram",
        _k("dram", InstructionMix(int_add=1, gl_access=2), _DEF * 4, 0.0),
        "DRAM bandwidth microbenchmark (copy stream).",
        "memory",
    ),
    SyclBenchmark(
        "scalar_prod",
        _k(
            "scalar_prod",
            InstructionMix(float_add=2, float_mul=1, gl_access=2, loc_access=4),
            _DEF * 2,
            0.1,
        ),
        "Dot product with tree reduction in local memory.",
        "memory",
    ),
    SyclBenchmark(
        "median",
        _k(
            "median",
            InstructionMix(float_add=20, int_add=6, gl_access=10, loc_access=2),
            _DEF,
            0.35,
        ),
        "3x3 median filter (sorting network on the neighbourhood).",
        "memory",
    ),
    SyclBenchmark(
        "gemm",
        _k(
            "gemm",
            InstructionMix(float_add=256, float_mul=256, int_add=16, gl_access=130),
            _DEF // 8,
            0.45,
        ),
        "Dense matrix multiply, tiled; bandwidth-limited as measured on V100.",
        "memory",
    ),
    SyclBenchmark(
        "matmulchain",
        _k(
            "matmulchain",
            InstructionMix(float_add=192, float_mul=192, int_add=24, gl_access=100),
            _DEF // 8,
            0.45,
        ),
        "Chained matrix products A·B·C·D.",
        "memory",
    ),
    SyclBenchmark(
        "sobel3",
        _k(
            "sobel3",
            InstructionMix(
                float_add=33, float_mul=36, sf=2, int_add=8, gl_access=12
            ),
            _DEF,
            0.88,
        ),
        "3x3 Sobel edge detection on RGB (per-channel convolutions).",
        "compute",
    ),
    SyclBenchmark(
        "sobel5",
        _k(
            "sobel5",
            InstructionMix(
                float_add=78, float_mul=84, sf=2, int_add=12, gl_access=28
            ),
            _DEF,
            0.90,
        ),
        "5x5 Sobel edge detection on RGB.",
        "compute",
    ),
    SyclBenchmark(
        "sobel7",
        _k(
            "sobel7",
            InstructionMix(
                float_add=150, float_mul=160, sf=2, int_add=16, gl_access=52
            ),
            _DEF,
            0.92,
        ),
        "7x7 Sobel edge detection on RGB.",
        "compute",
    ),
    SyclBenchmark(
        "lin_reg_coeff",
        _k(
            "lin_reg_coeff",
            InstructionMix(
                float_add=8, float_mul=8, float_div=20, sf=20, gl_access=4,
                loc_access=4,
            ),
            _DEF,
            0.55,
        ),
        "Linear regression coefficient fit (the Fig. 2a kernel): "
        "divider/SFU-bound, little energy headroom.",
        "compute",
    ),
    SyclBenchmark(
        "lin_reg_error",
        _k(
            "lin_reg_error",
            InstructionMix(
                float_add=6, float_mul=6, float_div=10, sf=12, gl_access=4,
                loc_access=2,
            ),
            _DEF,
            0.45,
        ),
        "Linear regression error evaluation.",
        "compute",
    ),
    SyclBenchmark(
        "kmeans",
        _k(
            "kmeans",
            InstructionMix(
                float_add=40, float_mul=36, int_add=12, gl_access=10, loc_access=6
            ),
            _DEF,
            0.60,
        ),
        "K-means assignment step (distance to K centroids).",
        "balanced",
    ),
    SyclBenchmark(
        "mol_dyn",
        _k(
            "mol_dyn",
            InstructionMix(
                float_add=90, float_mul=100, float_div=8, sf=6, gl_access=16
            ),
            _DEF // 2,
            0.75,
        ),
        "Molecular dynamics neighbour-list force kernel.",
        "compute",
    ),
    SyclBenchmark(
        "nbody",
        _k(
            "nbody",
            InstructionMix(
                float_add=300, float_mul=320, float_div=16, sf=32, gl_access=16
            ),
            _DEF // 8,
            0.80,
        ),
        "All-pairs N-body force accumulation.",
        "compute",
    ),
    SyclBenchmark(
        "black_scholes",
        _k(
            "black_scholes",
            InstructionMix(
                float_add=18, float_mul=24, float_div=6, sf=14, gl_access=6
            ),
            _DEF,
            0.30,
        ),
        "Black-Scholes European option pricing (the Figs. 4-5 kernel).",
        "balanced",
    ),
    SyclBenchmark(
        "sf",
        _k(
            "sf",
            InstructionMix(float_mul=4, sf=48, gl_access=2),
            _DEF,
            0.0,
        ),
        "Special-function throughput microbenchmark.",
        "compute",
    ),
    SyclBenchmark(
        "arith",
        _k(
            "arith",
            InstructionMix(
                int_add=40, int_mul=24, int_bw=24, float_add=40, float_mul=40,
                gl_access=2,
            ),
            _DEF,
            0.0,
        ),
        "Mixed-arithmetic throughput microbenchmark.",
        "compute",
    ),
    SyclBenchmark(
        "conv2d",
        _k(
            "conv2d",
            InstructionMix(float_add=25, float_mul=25, int_add=10, gl_access=27),
            _DEF,
            0.72,
        ),
        "2-D convolution with a 5x5 kernel.",
        "balanced",
    ),
    SyclBenchmark(
        "atax",
        _k(
            "atax",
            InstructionMix(float_add=64, float_mul=64, gl_access=66),
            _DEF // 4,
            0.55,
        ),
        "PolyBench ATAX: y = Aᵀ(Ax).",
        "memory",
    ),
    SyclBenchmark(
        "bicg",
        _k(
            "bicg",
            InstructionMix(float_add=64, float_mul=64, gl_access=68),
            _DEF // 4,
            0.50,
        ),
        "PolyBench BiCG sub-kernels.",
        "memory",
    ),
    SyclBenchmark(
        "mvt",
        _k(
            "mvt",
            InstructionMix(float_add=48, float_mul=48, gl_access=52),
            _DEF // 4,
            0.50,
        ),
        "PolyBench MVT: matrix-vector product and transpose product.",
        "memory",
    ),
    SyclBenchmark(
        "syrk",
        _k(
            "syrk",
            InstructionMix(float_add=128, float_mul=132, gl_access=70),
            _DEF // 8,
            0.80,
        ),
        "PolyBench SYRK symmetric rank-k update.",
        "balanced",
    ),
    SyclBenchmark(
        "gesummv",
        _k(
            "gesummv",
            InstructionMix(float_add=66, float_mul=70, gl_access=70),
            _DEF // 4,
            0.45,
        ),
        "PolyBench GESUMMV: scalar-matrix-vector sum.",
        "memory",
    ),
)

#: Benchmark names in canonical order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(b.name for b in _BENCHMARKS)

_BY_NAME = {b.name: b for b in _BENCHMARKS}

assert len(_BY_NAME) == 23, "the paper evaluates exactly 23 benchmarks"


def get_benchmark(name: str) -> SyclBenchmark:
    """Look a benchmark up by name."""
    if name not in _BY_NAME:
        raise ConfigurationError(
            f"unknown SYCL benchmark {name!r}; known: {list(BENCHMARK_NAMES)}"
        )
    return _BY_NAME[name]


def iter_benchmarks() -> tuple[SyclBenchmark, ...]:
    """All 23 benchmarks in canonical order."""
    return _BENCHMARKS
