"""CloverLeaf: 2-D compressible Euler hydrodynamics (paper §8.4).

The timestep follows the real mini-app's phase structure (ideal gas EoS,
viscosity, timestep control, PdV, acceleration, fluxes, cell/momentum
advection). The kernels span regimes — EoS and viscosity are arithmetic-
heavy, the advection sweeps are bandwidth-heavy — which is what makes
per-kernel tuning pay: the paper reports ~20% energy saving at ES_50.
"""

from __future__ import annotations

from repro.apps.miniapp import MpiMiniApp
from repro.common.errors import ValidationError
from repro.frontend.kernels import backed_kernel_ir
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR

#: Per-cell work multiplier: each grid cell updates several coupled fields,
#: so the effective per-item instruction counts are a few times the single-
#: field stencil cost. Also keeps kernel times well above the clock-switch
#: latency, as on the real cluster runs.
_WORK_SCALE = 4.0

#: Conserved/primitive fields exchanged in halos (density, energy,
#: pressure, viscosity, velocities, fluxes, ...).
_HALO_FIELDS = 15


class CloverLeaf(MpiMiniApp):
    """Weak-scaled CloverLeaf: a fixed ``nx × ny`` tile per GPU."""

    name = "cloverleaf"

    def __init__(self, steps: int = 20, nx: int = 7680, ny: int = 7680) -> None:
        super().__init__(steps=steps)
        if nx < 8 or ny < 8:
            raise ValidationError(f"tile {nx}x{ny} too small")
        self.nx = nx
        self.ny = ny
        self._cells = nx * ny

    def timestep_kernels(self) -> tuple[KernelIR, ...]:
        n = self._cells
        return (
            # Source-backed through the §6.1 front end (the field loop in
            # the device-Python source realizes ``_WORK_SCALE``).
            backed_kernel_ir(
                "clover_ideal_gas",
                InstructionMix(float_add=10, float_mul=14, float_div=4, sf=2,
                               gl_access=6).scaled(_WORK_SCALE),
                n,
                0.30,
            ),
            KernelIR(
                "clover_viscosity",
                InstructionMix(float_add=30, float_mul=34, float_div=2, sf=2,
                               gl_access=12).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.55,
            ),
            KernelIR(
                "clover_calc_dt",
                InstructionMix(float_add=16, float_mul=14, float_div=6, sf=4,
                               gl_access=10, loc_access=4).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.40,
            ),
            KernelIR(
                "clover_pdv",
                InstructionMix(float_add=22, float_mul=24, float_div=2,
                               gl_access=14).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.45,
            ),
            KernelIR(
                "clover_accelerate",
                InstructionMix(float_add=18, float_mul=16, float_div=4,
                               gl_access=14).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.40,
            ),
            backed_kernel_ir(
                "clover_flux_calc",
                InstructionMix(float_add=10, float_mul=10, gl_access=10).scaled(_WORK_SCALE),
                n,
                0.25,
            ),
            KernelIR(
                "clover_advec_cell",
                InstructionMix(float_add=26, float_mul=20, float_div=4,
                               gl_access=20).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.35,
            ),
            KernelIR(
                "clover_advec_mom",
                InstructionMix(float_add=24, float_mul=18, float_div=4,
                               gl_access=22).scaled(_WORK_SCALE),
                work_items=n,
                locality=0.35,
            ),
        )

    def halo_bytes(self) -> float:
        """One tile edge, double precision, for every exchanged field."""
        return float(max(self.nx, self.ny)) * 8.0 * _HALO_FIELDS
