"""Shared machinery for the MPI+SYCL mini-apps (CloverLeaf, MiniWeather).

A mini-app is a fixed per-timestep kernel sequence executed by every rank on
its own GPU (weak scaling: the per-rank grid is constant), followed by a
halo exchange and a global timestep reduction. Execution time includes
computation *and* communication; the energy report covers only the GPU
devices — exactly the Fig. 10 accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.core.compiler import FrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.core.queue import SynergyQueue
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget
from repro.mpi.comm import SimulatedComm


@dataclass(frozen=True)
class AppReport:
    """Outcome of one mini-app run."""

    app_name: str
    n_ranks: int
    steps: int
    target_name: str
    elapsed_s: float
    gpu_energy_j: float
    comm_time_max_s: float
    kernel_launches: int
    #: Clock-set retries across all ranks (transient NVML failures absorbed).
    clock_retries: int = 0
    #: Kernels whose requested clocks degraded to driver defaults.
    degraded_kernels: int = 0
    #: Energy measurements served from the analytic fallback (sensor loss).
    energy_fallbacks: int = 0


class MpiMiniApp:
    """Base class: subclasses define the timestep kernels and halo size."""

    #: Application name for reports.
    name: str = "miniapp"

    def __init__(self, steps: int = 20) -> None:
        if steps < 1:
            raise ValidationError(f"steps must be >= 1 ({steps!r})")
        self.steps = steps

    def timestep_kernels(self) -> tuple[KernelIR, ...]:
        """The kernel sequence of one timestep (override)."""
        raise NotImplementedError

    def halo_bytes(self) -> float:
        """Bytes exchanged with each neighbour per timestep (override)."""
        raise NotImplementedError

    def run(
        self,
        comm: SimulatedComm,
        target: EnergyTarget | None = None,
        plan: FrequencyPlan | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
        trace=None,
    ) -> AppReport:
        """Execute the app over all ranks of ``comm``.

        ``target=None`` is the paper's baseline: default clocks for every
        kernel. With a target, each kernel submission carries it and the
        per-kernel clocks come from ``plan`` (a compiled application).
        """
        if target is not None and plan is None:
            raise ValidationError(
                "running with an energy target requires a compiled frequency plan"
            )
        if trace is None:
            # Inherit the communicator's session so a traced cluster run
            # traces per-rank queues without extra plumbing.
            trace = comm.trace
        kernels = self.timestep_kernels()
        start = comm.barrier()
        comm_before = float(comm.comm_time_s.max())
        queues = [
            SynergyQueue(
                gpu, plan=plan, switch_overhead_s=switch_overhead_s, trace=trace
            )
            for gpu in comm.gpus
        ]
        launches = 0
        for _step in range(self.steps):
            for queue in queues:
                for kernel in kernels:
                    if target is None:
                        queue.submit(
                            lambda h, k=kernel: h.parallel_for(k.work_items, k)
                        )
                    else:
                        queue.submit(
                            target,
                            lambda h, k=kernel: h.parallel_for(k.work_items, k),
                        )
                    launches += 1
            comm.halo_exchange(self.halo_bytes())
            comm.allreduce(8.0)  # global dt reduction (one double)
        end = comm.barrier()
        # Restore default clocks so the boards end in a consistent state
        # (the mini-app equivalent of the plugin epilogue).
        for queue in queues:
            queue.reset_frequency()
        return AppReport(
            app_name=self.name,
            n_ranks=comm.size,
            steps=self.steps,
            target_name=target.name if target is not None else "default",
            elapsed_s=end - start,
            gpu_energy_j=comm.total_gpu_energy(start, [end] * comm.size),
            comm_time_max_s=float(comm.comm_time_s.max()) - comm_before,
            kernel_launches=launches,
            clock_retries=sum(q.scaler.retry_count for q in queues),
            degraded_kernels=sum(
                int(q.summary()["degraded_kernels"]) for q in queues
            ),
            energy_fallbacks=sum(q.profiler.fallback_count for q in queues),
        )
