"""Host-side reference implementations for selected benchmarks.

The benchmark suite models kernels by instruction mix; for end-to-end
examples and numeric validation, this module pairs a few of them with real
NumPy computations. Each factory returns ``(KernelIR, buffers)``: submit
the kernel with accessors over the returned buffers and the host function
performs the actual math while the simulated GPU accounts time/energy.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.syclbench import get_benchmark
from repro.common.errors import ValidationError
from repro.common.rng import make_rng
from repro.kernelir.kernel import KernelIR
from repro.sycl.buffer import Buffer


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (vectorized)."""
    from scipy.special import erf

    return 0.5 * (1.0 + erf(x / np.sqrt(2.0)))


def black_scholes_app(
    n_options: int = 4096, seed: int = 0
) -> tuple[KernelIR, dict[str, Buffer]]:
    """European call/put pricing over ``n_options`` random option sets.

    Buffers: ``spot, strike, tte, call, put`` (rate/volatility fixed).
    """
    if n_options < 1:
        raise ValidationError("need at least one option")
    rng = make_rng(seed)
    buffers = {
        "spot": Buffer(rng.uniform(5.0, 30.0, n_options).astype(np.float64),
                       name="spot"),
        "strike": Buffer(rng.uniform(1.0, 100.0, n_options).astype(np.float64),
                         name="strike"),
        "tte": Buffer(rng.uniform(0.25, 10.0, n_options).astype(np.float64),
                      name="tte"),
        "call": Buffer(shape=n_options, dtype=np.float64, name="call"),
        "put": Buffer(shape=n_options, dtype=np.float64, name="put"),
    }
    riskfree, volatility = 0.02, 0.30

    def host(views) -> None:
        s, k, t = views["spot"], views["strike"], views["tte"]
        sqrt_t = np.sqrt(t)
        d1 = (np.log(s / k) + (riskfree + 0.5 * volatility**2) * t) / (
            volatility * sqrt_t
        )
        d2 = d1 - volatility * sqrt_t
        discount = k * np.exp(-riskfree * t)
        views["call"][:] = s * _norm_cdf(d1) - discount * _norm_cdf(d2)
        views["put"][:] = discount * _norm_cdf(-d2) - s * _norm_cdf(-d1)

    template = get_benchmark("black_scholes").kernel
    kernel = dataclasses.replace(
        template.with_work_items(n_options), host_fn=host
    )
    return kernel, buffers


def sobel3_app(
    height: int = 128, width: int = 128, seed: int = 0
) -> tuple[KernelIR, dict[str, Buffer]]:
    """3x3 Sobel gradient magnitude over a random grayscale image.

    Buffers: ``image`` (input), ``edges`` (output, zero border).
    """
    if height < 3 or width < 3:
        raise ValidationError("image must be at least 3x3")
    rng = make_rng(seed)
    buffers = {
        "image": Buffer(rng.uniform(0.0, 1.0, (height, width)), name="image"),
        "edges": Buffer(shape=(height, width), dtype=np.float64, name="edges"),
    }

    def host(views) -> None:
        img = views["image"]
        gx = (
            img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
        )
        gy = (
            img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
        )
        out = views["edges"]
        out[:] = 0.0
        out[1:-1, 1:-1] = np.sqrt(gx**2 + gy**2)

    template = get_benchmark("sobel3").kernel
    kernel = dataclasses.replace(
        template.with_work_items(height * width), host_fn=host
    )
    return kernel, buffers


def median_app(
    height: int = 64, width: int = 64, seed: int = 0
) -> tuple[KernelIR, dict[str, Buffer]]:
    """3x3 median filter over a salt-and-pepper-noised image.

    Buffers: ``noisy`` (input), ``filtered`` (output, border copied).
    """
    if height < 3 or width < 3:
        raise ValidationError("image must be at least 3x3")
    rng = make_rng(seed)
    image = rng.uniform(0.3, 0.7, (height, width))
    speckle = rng.random((height, width))
    image[speckle < 0.05] = 0.0
    image[speckle > 0.95] = 1.0
    buffers = {
        "noisy": Buffer(image, name="noisy"),
        "filtered": Buffer(shape=(height, width), dtype=np.float64,
                           name="filtered"),
    }

    def host(views) -> None:
        img = views["noisy"]
        stacked = np.stack(
            [
                img[i : i + height - 2, j : j + width - 2]
                for i in range(3)
                for j in range(3)
            ]
        )
        out = views["filtered"]
        out[:] = img
        out[1:-1, 1:-1] = np.median(stacked, axis=0)

    template = get_benchmark("median").kernel
    kernel = dataclasses.replace(
        template.with_work_items(height * width), host_fn=host
    )
    return kernel, buffers
