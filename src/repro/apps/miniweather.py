"""MiniWeather: weather-like stratified flows (paper §8.4).

Models the YAKL-kernel structure of the real mini-app: tendency computation
in x and z (finite differences with hyperviscosity) and the semi-discrete
update, repeated over the three Runge-Kutta stages. The kernels are
dominated by field streaming (many state/flux arrays per point), so the app
is more bandwidth-bound than CloverLeaf — the paper sees up to ~30% energy
saving at ES_50.
"""

from __future__ import annotations

from repro.apps.miniapp import MpiMiniApp
from repro.common.errors import ValidationError
from repro.frontend.kernels import backed_kernel_ir
from repro.kernelir.instructions import InstructionMix
from repro.kernelir.kernel import KernelIR

#: Per-cell work multiplier: each grid cell updates several coupled fields,
#: so the effective per-item instruction counts are a few times the single-
#: field stencil cost. Also keeps kernel times well above the clock-switch
#: latency, as on the real cluster runs.
_WORK_SCALE = 4.0

#: State variables (density, u-wind, w-wind, potential temperature) plus
#: flux arrays exchanged in halos.
_HALO_FIELDS = 8


class MiniWeather(MpiMiniApp):
    """Weak-scaled MiniWeather: a fixed ``nx × nz`` column slab per GPU."""

    name = "miniweather"

    def __init__(self, steps: int = 20, nx: int = 8192, nz: int = 4096) -> None:
        super().__init__(steps=steps)
        if nx < 8 or nz < 8:
            raise ValidationError(f"slab {nx}x{nz} too small")
        self.nx = nx
        self.nz = nz
        self._cells = nx * nz

    def timestep_kernels(self) -> tuple[KernelIR, ...]:
        n = self._cells
        # The tendency kernels are FMA-dense 4th-order stencils over many
        # coupled fields while still bandwidth-limited — the combination
        # with the largest DVFS headroom, which is why MiniWeather saves
        # more than CloverLeaf in the paper's Fig. 10.
        # Each kernel is built through the §6.1 front end from its device-
        # Python source (repro.frontend.kernels); the declared mix is the
        # cross-checked contract. The ``_WORK_SCALE``-fold work per cell is
        # realized in source as the loop over the four coupled fields.
        tend_x = backed_kernel_ir(
            "mw_tendencies_x",
            InstructionMix(float_add=100, float_mul=96, gl_access=26).scaled(_WORK_SCALE),
            n,
            0.25,
        )
        tend_z = backed_kernel_ir(
            "mw_tendencies_z",
            InstructionMix(float_add=102, float_mul=98, sf=1,
                           gl_access=28).scaled(_WORK_SCALE),
            n,
            0.25,
        )
        update = backed_kernel_ir(
            "mw_semi_discrete_step",
            InstructionMix(float_add=10, float_mul=8, gl_access=16).scaled(_WORK_SCALE),
            n,
            0.20,
        )
        # Three RK stages; each computes both tendency directions and the
        # state update, like the real dimensionally-split integrator.
        stage = (tend_x, tend_z, update)
        return stage + tuple(
            k.with_name(f"{k.name}_rk{s}") for s in (2, 3) for k in stage
        )

    def halo_bytes(self) -> float:
        """One slab edge, double precision, for every exchanged field."""
        return float(self.nz) * 8.0 * _HALO_FIELDS
