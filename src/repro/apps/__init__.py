"""Workloads: the 23-benchmark SYCL suite and the two real-world MPI apps.

- :mod:`~repro.apps.syclbench` — instruction-mix models of the 23 SYCL
  benchmark applications evaluated in §8.2/§8.3,
- :mod:`~repro.apps.cloverleaf` — CloverLeaf: 2-D compressible Euler
  hydrodynamics, multi-kernel timestep, MPI halo exchanges,
- :mod:`~repro.apps.miniweather` — MiniWeather: weather-like flows with
  YAKL-style kernels, MPI halo exchanges.
"""

from repro.apps.cloverleaf import CloverLeaf
from repro.apps.hostimpl import black_scholes_app, median_app, sobel3_app
from repro.apps.miniweather import MiniWeather
from repro.apps.syclbench import (
    BENCHMARK_NAMES,
    SyclBenchmark,
    get_benchmark,
    iter_benchmarks,
)

__all__ = [
    "SyclBenchmark",
    "BENCHMARK_NAMES",
    "get_benchmark",
    "iter_benchmarks",
    "CloverLeaf",
    "MiniWeather",
    "black_scholes_app",
    "sobel3_app",
    "median_app",
]
