"""The multi-tenant scheduling service plane.

:class:`SchedulingService` ties the pieces together: a
:class:`~repro.service.tenant.TenantRegistry` with admission control, a
set of :class:`~repro.service.shard.PartitionShard` schedulers (tenants
are placed on shards by a stable hash of their name), and a
:class:`~repro.service.store.JobStore` recording every decision.

The plane is *virtual-time-cooperative*: submissions arrive with
explicit arrival times (from the load generator's seeded arrival
process), queue per tenant under quota control, and are drained in
cycles — :meth:`drain` advances every shard's clock to the cycle
boundary and runs one exclusive batched job per (tenant, shard) through
``Scheduler.submit_many``. Priority orders tenants *within* a cycle
(lower band drains first, rotation breaks ties inside a band), but every
admitted submission drains in the next cycle, so priority shapes latency
and never starves anyone.

Per-submission scheduling latency is ``execution start − arrival``;
per-tenant energy attribution uses the *modeled kernel energy* (the sum
of each kernel's power×time at its operating point), which is invariant
under batch-order permutation — the property the Hypothesis suite pins
down. Joules saved compare that against a MAX_PERF baseline per kernel.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed
from repro.core.compiler import FrequencyPlan
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.obs.session import TraceSession, resolve_trace
from repro.service.shard import PartitionShard
from repro.service.store import JobStore
from repro.service.tenant import (
    AdmissionDecision,
    RejectReason,
    Tenant,
    TenantRegistry,
)


def shard_of(name: str, n_partitions: int) -> int:
    """Stable tenant → partition placement (process-stable hash)."""
    return derive_seed("service.shard", name) % n_partitions


class SchedulingService:
    """Admission control + sharded draining + replayable event log."""

    def __init__(
        self,
        spec: GPUSpec,
        *,
        n_partitions: int = 4,
        plan: FrequencyPlan | None = None,
        baseline_j: dict[str, float] | None = None,
        store: JobStore | None = None,
        trace: TraceSession | None = None,
    ) -> None:
        if n_partitions < 1:
            raise ConfigurationError(
                f"service needs >= 1 partition ({n_partitions!r})"
            )
        self.spec = spec
        self.trace = resolve_trace(trace)
        self.registry = TenantRegistry()
        self.store = store if store is not None else JobStore()
        #: Per-kernel MAX_PERF energy (J per execution), the savings baseline.
        self.baseline_j = dict(baseline_j or {})
        self.shards = [
            PartitionShard(p, spec, plan=plan, trace=trace)
            for p in range(n_partitions)
        ]
        self._shard_of: dict[str, int] = {}
        #: Pending queues: tenant -> list of (sub_id, arrival_s, kernel).
        self._pending: dict[str, list[tuple[int, float, KernelIR]]] = {}
        #: Accounted modeled kernel energy per tenant (budget basis).
        self._energy_j: dict[str, float] = {}
        #: Per-tenant kernel execution counts (baseline basis).
        self._kernel_counts: dict[str, dict[str, int]] = {}
        #: Accounted board energy per tenant (includes idle/overhead power).
        self._board_energy_j: dict[str, float] = {}
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, int] = {}
        self._drained: dict[str, int] = {}
        #: Scheduling latencies (start − arrival), per tenant.
        self._latencies_s: dict[str, list[float]] = {}
        self._sub_ids = itertools.count(0)
        self.cycle = 0

    # ------------------------------------------------------------- tenants

    @property
    def n_partitions(self) -> int:
        return len(self.shards)

    def register(self, tenant: Tenant) -> Tenant:
        """Register a tenant and log its placement."""
        self.registry.register(tenant)
        shard = shard_of(tenant.name, self.n_partitions)
        self._shard_of[tenant.name] = shard
        self._pending[tenant.name] = []
        self._energy_j[tenant.name] = 0.0
        self._board_energy_j[tenant.name] = 0.0
        self._kernel_counts[tenant.name] = {}
        self._admitted[tenant.name] = 0
        self._rejected[tenant.name] = 0
        self._drained[tenant.name] = 0
        self._latencies_s[tenant.name] = []
        self.store.append(
            "tenant",
            tenant=tenant.name,
            priority=tenant.priority,
            quota=tenant.quota,
            energy_budget_j=tenant.energy_budget_j,
            target=tenant.target.name,
            shard=shard,
        )
        return tenant

    def pending_count(self, name: str) -> int:
        """Admitted-but-undrained submissions for one tenant."""
        return len(self._pending[name])

    def energy_of(self, name: str) -> float:
        """Accounted modeled kernel energy (J) for one tenant."""
        return self._energy_j[name]

    # ----------------------------------------------------------- admission

    def submit(
        self, name: str, kernel: KernelIR, t_s: float = 0.0
    ) -> AdmissionDecision:
        """One submission attempt at arrival time ``t_s``.

        Admission checks run in a fixed order — identity, energy budget,
        quota — so rejection reasons are deterministic. Rejections are
        returned (and logged), never raised.
        """
        if name not in self.registry:
            self.store.append(
                "reject",
                t=t_s,
                tenant=name,
                kernel=kernel.name,
                reason=RejectReason.UNKNOWN_TENANT.value,
            )
            return AdmissionDecision(
                admitted=False,
                reason=RejectReason.UNKNOWN_TENANT,
                detail=f"tenant {name!r} is not registered",
            )
        tenant = self.registry.get(name)
        if (
            tenant.energy_budget_j is not None
            and self._energy_j[name] >= tenant.energy_budget_j
        ):
            self._rejected[name] += 1
            self.store.append(
                "reject",
                t=t_s,
                tenant=name,
                kernel=kernel.name,
                reason=RejectReason.ENERGY_BUDGET_EXHAUSTED.value,
            )
            return AdmissionDecision(
                admitted=False,
                reason=RejectReason.ENERGY_BUDGET_EXHAUSTED,
                detail=(
                    f"{self._energy_j[name]:.3f} J accounted of a "
                    f"{tenant.energy_budget_j:.3f} J budget"
                ),
            )
        if len(self._pending[name]) >= tenant.quota:
            self._rejected[name] += 1
            self.store.append(
                "reject",
                t=t_s,
                tenant=name,
                kernel=kernel.name,
                reason=RejectReason.QUOTA_EXCEEDED.value,
            )
            return AdmissionDecision(
                admitted=False,
                reason=RejectReason.QUOTA_EXCEEDED,
                detail=f"{len(self._pending[name])} pending of quota "
                f"{tenant.quota}",
            )
        sub_id = next(self._sub_ids)
        self._pending[name].append((sub_id, t_s, kernel))
        self._admitted[name] += 1
        self.store.append(
            "admit",
            t=t_s,
            sub=sub_id,
            tenant=name,
            kernel=kernel.name,
            target=tenant.target.name,
        )
        return AdmissionDecision(admitted=True, sub_id=sub_id)

    # -------------------------------------------------------------- drain

    def _drain_order(self, names: list[str]) -> list[str]:
        """Priority order with rotation inside each band.

        Lower priority band first; within a band, names sort
        deterministically and rotate by cycle index so no tenant
        permanently pays the end-of-band position.
        """
        bands: dict[int, list[str]] = {}
        for name in names:
            bands.setdefault(self.registry.get(name).priority, []).append(name)
        ordered: list[str] = []
        for band in sorted(bands):
            group = sorted(bands[band])
            pivot = self.cycle % len(group)
            ordered.extend(group[pivot:] + group[:pivot])
        return ordered

    def drain(self, now_s: float) -> int:
        """Drain every tenant queue; returns submissions completed.

        Advances each shard's clock to ``now_s`` (never backwards), runs
        one exclusive batched job per tenant with pending work, computes
        scheduling latencies against arrival times, accounts energy, and
        logs one ``batch`` event per job plus one ``cycle`` event.
        """
        total = 0
        for shard in self.shards:
            shard.advance_to(now_s)
            names = [
                name
                for name, sid in sorted(self._shard_of.items())
                if sid == shard.shard_id and self._pending[name]
            ]
            if not names:
                continue
            queues = []
            for name in self._drain_order(names):
                target = self.registry.get(name).target
                queues.append(
                    (
                        name,
                        [(target, k) for _, _, k in self._pending[name]],
                    )
                )
            results = shard.drain(queues)
            for res in results:
                pending = self._pending[res.tenant]
                for (sub_id, arrival_s, kernel), start in zip(
                    pending, res.start_s
                ):
                    self._latencies_s[res.tenant].append(start - arrival_s)
                    counts = self._kernel_counts[res.tenant]
                    counts[kernel.name] = counts.get(kernel.name, 0) + 1
                self._energy_j[res.tenant] += res.kernel_energy_j
                board_j = res.job.gpu_energy_j or 0.0
                self._board_energy_j[res.tenant] += board_j
                self._drained[res.tenant] += res.n
                self._pending[res.tenant] = []
                total += res.n
                self.store.append(
                    "batch",
                    t=now_s,
                    cycle=self.cycle,
                    shard=shard.shard_id,
                    tenant=res.tenant,
                    job_id=res.job.job_id,
                    n=res.n,
                    state=res.job.state.value,
                    energy_j=res.kernel_energy_j,
                    board_energy_j=board_j,
                )
        self.store.append("cycle", t=now_s, cycle=self.cycle, drained=total)
        self.trace.instant(
            now_s, "service", "service.cycle", f"cycle{self.cycle}",
            drained=total,
        )
        self.cycle += 1
        return total

    # ------------------------------------------------------------- reports

    def tenant_report(self, name: str) -> dict[str, object]:
        """Wattlytics-style per-tenant accounting row."""
        tenant = self.registry.get(name)
        counts = self._kernel_counts[name]
        baseline = sum(
            n * self.baseline_j.get(kernel, 0.0)
            for kernel, n in counts.items()
        )
        lat = self._latencies_s[name]
        return {
            "tenant": name,
            "priority": tenant.priority,
            "quota": tenant.quota,
            "target": tenant.target.name,
            "shard": self._shard_of[name],
            "admitted": self._admitted[name],
            "rejected": self._rejected[name],
            "drained": self._drained[name],
            "pending": len(self._pending[name]),
            "energy_j": self._energy_j[name],
            "board_energy_j": self._board_energy_j[name],
            "baseline_j": baseline,
            "saved_j": baseline - self._energy_j[name],
            "p50_latency_s": float(np.percentile(lat, 50)) if lat else None,
            "p99_latency_s": float(np.percentile(lat, 99)) if lat else None,
        }

    def report(self) -> dict[str, object]:
        """Whole-plane summary: per-tenant rows + cluster aggregates."""
        rows = [self.tenant_report(t.name) for t in self.registry]
        lat = [x for ls in self._latencies_s.values() for x in ls]
        baseline = sum(r["baseline_j"] for r in rows)
        modeled = sum(r["energy_j"] for r in rows)
        return {
            "tenants": rows,
            "cluster": {
                "n_tenants": len(self.registry),
                "n_partitions": self.n_partitions,
                "cycles": self.cycle,
                "submissions": sum(r["admitted"] for r in rows),
                "rejections": sum(r["rejected"] for r in rows),
                "drained": sum(r["drained"] for r in rows),
                "kernel_energy_j": modeled,
                "board_energy_j": sum(r["board_energy_j"] for r in rows),
                "baseline_kernel_energy_j": baseline,
                "saved_j": baseline - modeled,
                "p50_latency_s": float(np.percentile(lat, 50)) if lat else None,
                "p99_latency_s": float(np.percentile(lat, 99)) if lat else None,
            },
        }
