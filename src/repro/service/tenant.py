"""Tenants, quotas and typed admission control.

A :class:`Tenant` is the service-plane identity: a priority band (0 is
most urgent — drained first each cycle), a queue quota (the maximum
number of admitted-but-not-yet-drained submissions), an optional
lifetime energy budget in joules, and the energy target every one of its
submissions is tuned for. :class:`TenantRegistry` holds the fleet;
admission itself lives on
:meth:`repro.service.plane.SchedulingService.submit`, which answers with
an :class:`AdmissionDecision` — rejections are *data* with a typed
:class:`RejectReason`, not exceptions, because a service plane must keep
running while it says no.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, ValidationError
from repro.metrics.targets import MIN_EDP, EnergyTarget


class RejectReason(enum.Enum):
    """Why an admission was refused (the typed rejection vocabulary)."""

    #: The submitting tenant was never registered.
    UNKNOWN_TENANT = "unknown_tenant"
    #: The tenant already has ``quota`` submissions admitted and undrained.
    QUOTA_EXCEEDED = "quota_exceeded"
    #: The tenant's accounted energy reached its lifetime joule budget.
    ENERGY_BUDGET_EXHAUSTED = "energy_budget_exhausted"


@dataclass(frozen=True)
class AdmissionDecision:
    """The service's answer to one submission attempt."""

    admitted: bool
    #: ``None`` iff ``admitted``.
    reason: RejectReason | None = None
    detail: str = ""
    #: Submission id assigned on admission (``None`` on rejection).
    sub_id: int | None = None

    def __post_init__(self) -> None:
        if self.admitted and self.reason is not None:
            raise ValidationError("admitted decisions carry no reject reason")
        if not self.admitted and self.reason is None:
            raise ValidationError("rejections must carry a RejectReason")

    def __bool__(self) -> bool:
        return self.admitted


@dataclass(frozen=True)
class Tenant:
    """Service-plane identity: priority, quota, energy budget, target.

    Attributes
    ----------
    name:
        Unique tenant name (also the per-tenant metric label).
    priority:
        Priority band; 0 is most urgent. Within a drain cycle, lower
        bands are drained first (priority shapes *latency*, never
        *service*: every admitted submission drains in the next cycle).
    quota:
        Maximum admitted-but-undrained submissions. Admission rejects
        with :data:`RejectReason.QUOTA_EXCEEDED` once the pending queue
        is full; a drain frees the whole queue.
    energy_budget_j:
        Optional lifetime GPU-energy budget (J). Once the tenant's
        accounted energy reaches it, further submissions are rejected
        with :data:`RejectReason.ENERGY_BUDGET_EXHAUSTED`. ``None``
        means unmetered.
    target:
        The energy target every submission of this tenant is tuned for.
    """

    name: str
    priority: int = 1
    quota: int = 16
    energy_budget_j: float | None = None
    target: EnergyTarget = field(default_factory=lambda: MIN_EDP)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tenant name cannot be empty")
        if self.priority < 0:
            raise ValidationError(
                f"tenant priority must be >= 0 ({self.priority!r})"
            )
        if self.quota < 1:
            raise ValidationError(f"tenant quota must be >= 1 ({self.quota!r})")
        if self.energy_budget_j is not None and not self.energy_budget_j > 0:
            raise ValidationError(
                f"energy budget must be positive ({self.energy_budget_j!r})"
            )
        if not isinstance(self.target, EnergyTarget):
            raise ValidationError(
                f"tenant target must be an EnergyTarget ({self.target!r})"
            )


class TenantRegistry:
    """The fleet of registered tenants, keyed by name."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}

    def register(self, tenant: Tenant) -> Tenant:
        """Add a tenant; duplicate names are a configuration error."""
        if tenant.name in self._tenants:
            raise ConfigurationError(
                f"tenant {tenant.name!r} is already registered"
            )
        self._tenants[tenant.name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        """Look a tenant up; raises :class:`ConfigurationError` if absent."""
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        """Tenants in name order (the deterministic reporting order)."""
        return iter(sorted(self._tenants.values(), key=lambda t: t.name))
