"""Seeded load generator for the service plane.

:func:`run_service_session` is the deterministic harness: it provisions
a :class:`~repro.service.plane.SchedulingService`, registers a seeded
tenant fleet (:func:`seeded_tenants`), drives a seeded arrival stream
(exponential inter-arrivals, uniform tenant/kernel choice) through
admission, and drains in fixed cycles. Everything downstream of the
``seed`` argument is deterministic, so two same-seed sessions produce
byte-identical job stores — the replay contract ``validate --only
service`` asserts.

:func:`run_loadgen` wraps a session in wall-clock measurement and merges
a ``loadgen`` section (p50/p99 scheduling latency, per-tenant joules
saved, cluster energy vs the MAX_PERF baseline) into ``BENCH_perf.json``.
The full configuration drives 160k submissions across 64 tenants; quick
mode (CI) drives 2k across 8.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.syclbench.definitions import get_benchmark
from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed, make_rng
from repro.core.sweepcache import scoped_cache
from repro.engine.payload import plan_from_sweeps
from repro.experiments.sweep import sweep_kernel
from repro.hw.specs import NVIDIA_V100, GPUSpec
from repro.metrics.targets import ES_50, MAX_PERF, MIN_EDP, MIN_ENERGY, PL_50
from repro.obs.session import TraceSession
from repro.service.plane import SchedulingService
from repro.service.store import JobStore
from repro.service.tenant import Tenant

#: Kernel pool the generator draws from (§8 benchmark suite members
#: spanning compute-bound, memory-bound and balanced behaviour).
DEFAULT_KERNELS: tuple[str, ...] = (
    "vec_add",
    "dram",
    "scalar_prod",
    "median",
    "gemm",
    "matmulchain",
    "sobel3",
    "sobel5",
)

#: Tenant energy targets, cycled across the fleet.
_TENANT_TARGETS = (MIN_EDP, MIN_ENERGY, ES_50, PL_50)

#: Full-run defaults (the acceptance configuration).
FULL_TENANTS = 64
FULL_SUBMISSIONS = 160_000
FULL_PARTITIONS = 8
FULL_CYCLES = 16

#: Quick-mode defaults (the CI smoke configuration).
QUICK_TENANTS = 8
QUICK_SUBMISSIONS = 2_000
QUICK_PARTITIONS = 4
QUICK_CYCLES = 8


def seeded_tenants(n_tenants: int, seed: int = 7) -> list[Tenant]:
    """A deterministic, attribute-diverse tenant fleet.

    Priorities cycle over three bands; every eighth tenant gets a tight
    quota (exercising QUOTA_EXCEEDED) and a different eighth a finite
    energy budget (exercising ENERGY_BUDGET_EXHAUSTED); targets cycle
    over the four tuning objectives. ``seed`` feeds only the quota
    jitter so fleets differ across seeds without losing determinism.
    """
    if n_tenants < 1:
        raise ConfigurationError(f"need >= 1 tenant ({n_tenants!r})")
    rng = make_rng(derive_seed("service.tenants", seed))
    jitter = rng.integers(0, 64, size=n_tenants)
    tenants = []
    for i in range(n_tenants):
        if i % 8 == 3:
            quota = 32
        else:
            quota = 256 + int(jitter[i])
        # ~0.05 J per kernel on the default pool: a 5 J budget exhausts
        # after ~100 executions, early enough to fire in quick mode.
        budget = 5.0 if i % 8 == 5 else None
        tenants.append(
            Tenant(
                name=f"t{i:03d}",
                priority=i % 3,
                quota=quota,
                energy_budget_j=budget,
                target=_TENANT_TARGETS[i % len(_TENANT_TARGETS)],
            )
        )
    return tenants


def baseline_energies(
    spec: GPUSpec, kernels, *, cache: object | None = None
) -> dict[str, float]:
    """Per-kernel MAX_PERF energy (J per execution) from measured sweeps."""
    baseline: dict[str, float] = {}
    for kernel in kernels:
        sweep = sweep_kernel(spec, kernel, cache=cache)
        idx = MAX_PERF.resolve_index(
            sweep.freqs_mhz, sweep.time_s, sweep.energy_j, sweep.default_index
        )
        baseline[kernel.name] = float(sweep.energy_j[idx])
    return baseline


def run_service_session(
    *,
    seed: int = 7,
    n_tenants: int = FULL_TENANTS,
    n_submissions: int = FULL_SUBMISSIONS,
    n_partitions: int = FULL_PARTITIONS,
    n_cycles: int = FULL_CYCLES,
    mean_interarrival_s: float = 0.05,
    kernels: tuple[str, ...] = DEFAULT_KERNELS,
    spec: GPUSpec = NVIDIA_V100,
    trace: TraceSession | None = None,
    store: JobStore | None = None,
) -> SchedulingService:
    """Drive one complete seeded service session; returns the plane.

    The caller manages the sweep cache (wrap in ``scoped_cache()`` for
    speed); the session itself is a pure function of its arguments.
    """
    if n_submissions < 1 or n_cycles < 1:
        raise ConfigurationError(
            f"need >= 1 submission and cycle "
            f"({n_submissions!r}, {n_cycles!r})"
        )
    tenants = seeded_tenants(n_tenants, seed)
    kernel_objs = [get_benchmark(name).kernel for name in kernels]
    # Plan over every tenant target (plus MAX_PERF for the baseline), in
    # sorted name order for deterministic sweep-cache population.
    target_by_name = {t.target.name: t.target for t in tenants}
    target_by_name[MAX_PERF.name] = MAX_PERF
    plan = plan_from_sweeps(
        spec,
        kernel_objs,
        [target_by_name[n] for n in sorted(target_by_name)],
    )
    service = SchedulingService(
        spec,
        n_partitions=n_partitions,
        plan=plan,
        baseline_j=baseline_energies(spec, kernel_objs),
        store=store,
        trace=trace,
    )
    for tenant in tenants:
        service.register(tenant)

    rng = make_rng(derive_seed("service.loadgen", seed))
    arrival_s = np.cumsum(
        rng.exponential(mean_interarrival_s, size=n_submissions)
    )
    tenant_idx = rng.integers(0, n_tenants, size=n_submissions)
    kernel_idx = rng.integers(0, len(kernel_objs), size=n_submissions)

    chunk_edges = np.linspace(0, n_submissions, n_cycles + 1).astype(int)
    for c in range(n_cycles):
        lo, hi = int(chunk_edges[c]), int(chunk_edges[c + 1])
        for i in range(lo, hi):
            service.submit(
                tenants[int(tenant_idx[i])].name,
                kernel_objs[int(kernel_idx[i])],
                float(arrival_s[i]),
            )
        if hi > lo:
            service.drain(float(arrival_s[hi - 1]))
    return service


def run_loadgen(
    *,
    seed: int = 7,
    quick: bool = False,
    n_tenants: int | None = None,
    n_submissions: int | None = None,
    n_partitions: int | None = None,
    n_cycles: int | None = None,
    json_path: str | Path | None = None,
) -> dict:
    """Measured loadgen run; returns (and optionally merges) the section.

    With ``json_path`` the section lands under the ``loadgen`` key of the
    benchmark document (created if missing, other sections preserved).
    """
    # Explicit None checks: an override of 0 must reach the session's
    # validation (and fail there), not silently fall back to the default.
    defaults = {
        "n_tenants": QUICK_TENANTS if quick else FULL_TENANTS,
        "n_submissions": QUICK_SUBMISSIONS if quick else FULL_SUBMISSIONS,
        "n_partitions": QUICK_PARTITIONS if quick else FULL_PARTITIONS,
        "n_cycles": QUICK_CYCLES if quick else FULL_CYCLES,
    }
    overrides = {
        "n_tenants": n_tenants,
        "n_submissions": n_submissions,
        "n_partitions": n_partitions,
        "n_cycles": n_cycles,
    }
    cfg = {
        k: defaults[k] if overrides[k] is None else overrides[k]
        for k in defaults
    }
    t0 = time.perf_counter()
    with scoped_cache():
        service = run_service_session(seed=seed, **cfg)
    wall_s = time.perf_counter() - t0
    report = service.report()
    cluster = report["cluster"]
    section = {
        "seed": seed,
        "quick": quick,
        **cfg,
        "wall_s": wall_s,
        "submissions_per_s": cfg["n_submissions"] / wall_s if wall_s else None,
        "admitted": cluster["submissions"],
        "rejected": cluster["rejections"],
        "drained": cluster["drained"],
        "p50_latency_s": cluster["p50_latency_s"],
        "p99_latency_s": cluster["p99_latency_s"],
        "kernel_energy_j": cluster["kernel_energy_j"],
        "board_energy_j": cluster["board_energy_j"],
        "baseline_kernel_energy_j": cluster["baseline_kernel_energy_j"],
        "saved_j": cluster["saved_j"],
        "store_events": len(service.store),
        "tenants": [
            {
                "tenant": row["tenant"],
                "target": row["target"],
                "priority": row["priority"],
                "shard": row["shard"],
                "admitted": row["admitted"],
                "rejected": row["rejected"],
                "drained": row["drained"],
                "energy_j": row["energy_j"],
                "baseline_j": row["baseline_j"],
                "saved_j": row["saved_j"],
                "p50_latency_s": row["p50_latency_s"],
                "p99_latency_s": row["p99_latency_s"],
            }
            for row in report["tenants"]
        ],
    }
    if json_path is not None:
        path = Path(json_path)
        doc = json.loads(path.read_text()) if path.exists() else {}
        doc["loadgen"] = section
        path.write_text(json.dumps(doc, indent=2))
    return section
