"""Append-only, replayable job store.

Every service-plane decision — tenant registration, admission,
rejection, batch drain, cycle boundary — lands in the store as one
plain-dict event, appended in decision order. The store is the plane's
source of truth for replay: a seeded session writes the same event
stream every time, so :meth:`JobStore.canonical_bytes` (the
``dump_json`` serialization the golden scenarios already use) is
byte-identical across same-seed runs — the persistence analogue of the
golden-trace contract.

:func:`fold_events` independently re-derives per-tenant admission state
(pending counts, accounted energy, quota/budget headroom) from the raw
event stream; the ``service`` validation section compares that fold
against the plane's own bookkeeping, which is what makes the log an
*audit* log rather than a mirror.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ValidationError
from repro.obs.export import dump_json

#: Event kinds the store accepts, in the vocabulary the fold understands.
EVENT_KINDS = ("tenant", "admit", "reject", "batch", "cycle")


class JobStore:
    """An append-only event log with deterministic serialization."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._seq = 0

    def append(self, kind: str, **attrs) -> dict:
        """Append one event; returns the stored dict (with its ``seq``)."""
        if kind not in EVENT_KINDS:
            raise ValidationError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        event = {"seq": self._seq, "kind": kind, **attrs}
        self._seq += 1
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple[dict, ...]:
        """The event stream, in append order (read-only view)."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def select(self, kind: str) -> list[dict]:
        """Events of one kind, in append order."""
        if kind not in EVENT_KINDS:
            raise ValidationError(f"unknown event kind {kind!r}")
        return [e for e in self._events if e["kind"] == kind]

    # ---------------------------------------------------------- persistence

    def document(self) -> dict:
        """The store as one JSON document."""
        return {"kind": "jobstore", "n_events": len(self._events),
                "events": list(self._events)}

    def canonical_bytes(self) -> bytes:
        """Deterministic serialization (sorted keys, 2-space indent).

        Two same-seed sessions must produce identical bytes here — the
        replay contract asserted by ``validate --only service``.
        """
        return dump_json(self.document()).encode()

    def save(self, path: str | Path) -> Path:
        """Write the canonical document; returns the path."""
        path = Path(path)
        path.write_bytes(self.canonical_bytes())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "JobStore":
        """Rebuild a store from a saved document."""
        doc = json.loads(Path(path).read_text())
        if doc.get("kind") != "jobstore":
            raise ValidationError(f"{path} is not a job-store document")
        store = cls()
        for event in doc["events"]:
            attrs = {k: v for k, v in event.items() if k not in ("seq", "kind")}
            stored = store.append(event["kind"], **attrs)
            if stored["seq"] != event["seq"]:
                raise ValidationError(
                    f"non-contiguous event sequence in {path}: "
                    f"expected seq {stored['seq']}, found {event['seq']}"
                )
        return store


def fold_events(events) -> dict[str, dict]:
    """Re-derive per-tenant admission state from a raw event stream.

    Returns ``{tenant: state}`` where ``state`` has the registration
    attributes plus ``pending`` (admitted-but-undrained count),
    ``admitted``/``rejected`` totals, ``rejects_by_reason``, ``drained``
    (submissions completed through batches) and ``energy_j`` (accounted
    GPU energy). The fold is intentionally independent of
    :class:`~repro.service.plane.SchedulingService` — it trusts only the
    log, so comparing it against the live plane catches bookkeeping bugs
    on either side.
    """
    state: dict[str, dict] = {}
    for event in events:
        kind = event["kind"]
        if kind == "tenant":
            name = event["tenant"]
            if name in state:
                raise ValidationError(f"tenant {name!r} registered twice")
            state[name] = {
                "priority": event["priority"],
                "quota": event["quota"],
                "energy_budget_j": event["energy_budget_j"],
                "target": event["target"],
                "shard": event["shard"],
                "pending": 0,
                "admitted": 0,
                "rejected": 0,
                "rejects_by_reason": {},
                "drained": 0,
                "energy_j": 0.0,
            }
        elif kind == "admit":
            st = state[event["tenant"]]
            st["pending"] += 1
            st["admitted"] += 1
            if st["pending"] > st["quota"]:
                raise ValidationError(
                    f"log admits tenant {event['tenant']!r} beyond its "
                    f"quota ({st['pending']} > {st['quota']}) at seq "
                    f"{event['seq']}"
                )
        elif kind == "reject":
            tenant = event["tenant"]
            if tenant in state:
                st = state[tenant]
                st["rejected"] += 1
                reason = event["reason"]
                st["rejects_by_reason"][reason] = (
                    st["rejects_by_reason"].get(reason, 0) + 1
                )
        elif kind == "batch":
            st = state[event["tenant"]]
            n = event["n"]
            if n > st["pending"]:
                raise ValidationError(
                    f"log drains {n} submissions from tenant "
                    f"{event['tenant']!r} with only {st['pending']} pending "
                    f"at seq {event['seq']}"
                )
            st["pending"] -= n
            st["drained"] += n
            st["energy_j"] += event["energy_j"]
        # "cycle" events carry no per-tenant state.
    return state
