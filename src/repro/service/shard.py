"""Per-partition scheduler shards.

A :class:`PartitionShard` is one slice of the service plane: its own
virtual clock, its own small :class:`Cluster` (provisioned in production
posture with the ``nvgpufreq`` GRES so the plugin's privilege dance
runs), its own :class:`Scheduler` with the :class:`NvGpuFreqPlugin`
attached. Shards run cooperatively in virtual time — the plane advances
every shard's clock to each drain boundary, and each shard then drains
its tenants' queues through ``Scheduler.submit_many`` batched
accounting. GPU indices and node names are offset per shard
(``index_base``/``node_prefix``) so all shards can share one trace
session without track collisions — the lumos-style fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import VirtualClock
from repro.core.compiler import FrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.core.queue import SynergyQueue
from repro.hw.specs import GPUSpec
from repro.obs.session import TraceSession
from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
from repro.slurm.job import Job, JobContext, JobSpec
from repro.slurm.plugin import NvGpuFreqPlugin
from repro.slurm.scheduler import Scheduler


@dataclass(frozen=True)
class TenantBatchPayload:
    """Job payload draining one tenant's pending submissions.

    Like :class:`~repro.engine.payload.KernelBatchPayload`, but tagged
    with the owning tenant (the queue's ``owner``, so every
    ``queue.kernel`` span carries the tenant name) and returning the
    per-submission start times and modeled kernel energies the plane
    needs for scheduling-latency percentiles and per-tenant energy
    attribution.
    """

    tenant: str
    requests: tuple
    plan: FrequencyPlan | None = None
    switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S

    def __call__(self, context: JobContext) -> dict[str, object]:
        from repro.engine.batch import KernelBatch

        batch = KernelBatch.from_requests(self.requests)
        start_s: list[float] = []
        kernel_energy_j = 0.0
        summaries = []
        for gpu in context.gpus:
            queue = SynergyQueue(
                gpu,
                plan=self.plan,
                switch_overhead_s=self.switch_overhead_s,
                trace=context.trace,
                validate=context.validator,
                owner=self.tenant,
            )
            result = queue.submit_batch(batch)
            queue.wait()
            start_s.extend(result.start_s.tolist())
            kernel_energy_j += float(np.sum(result.energy_j))
            summaries.append(queue.summary())
        return {
            "tenant": self.tenant,
            "start_s": start_s,
            "kernel_energy_j": kernel_energy_j,
            "gpus": summaries,
        }


@dataclass(frozen=True)
class DrainResult:
    """One tenant's drain outcome within a shard cycle."""

    tenant: str
    job: Job
    n: int
    #: Per-submission execution start times (virtual seconds).
    start_s: tuple[float, ...]
    #: Modeled kernel energy (J) — the order-invariant attribution basis.
    kernel_energy_j: float


class PartitionShard:
    """One partition: a private cluster + scheduler draining tenant queues."""

    def __init__(
        self,
        shard_id: int,
        spec: GPUSpec,
        *,
        n_nodes: int = 1,
        gpus_per_node: int = 1,
        plan: FrequencyPlan | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
        trace: TraceSession | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.plan = plan
        self.switch_overhead_s = switch_overhead_s
        self.cluster = Cluster.build(
            spec,
            n_nodes,
            gpus_per_node=gpus_per_node,
            gres={NVGPUFREQ_GRES},
            clock=VirtualClock(),
            trace=trace,
            index_base=self.shard_id * n_nodes * gpus_per_node,
            node_prefix=f"s{self.shard_id}n",
        )
        self.scheduler = Scheduler(
            self.cluster, plugins=[NvGpuFreqPlugin(trace=trace)]
        )

    @property
    def now(self) -> float:
        """The shard's virtual wall clock."""
        return self.cluster.clock.now

    def advance_to(self, t_s: float) -> None:
        """Advance the shard clock to a drain boundary (never backwards)."""
        if t_s > self.cluster.clock.now:
            self.cluster.clock.advance_to(t_s)

    def drain(self, queues: "list[tuple[str, list]]") -> list[DrainResult]:
        """Drain tenant queues in the given order via ``submit_many``.

        ``queues`` holds ``(tenant_name, requests)`` pairs, already in the
        plane's priority order; each becomes one exclusive ``nvgpufreq``
        job so the plugin grants clock privileges for the batch and the
        epilogue restores production posture between tenants.
        """
        queues = [(tenant, reqs) for tenant, reqs in queues if reqs]
        if not queues:
            return []
        specs = [
            JobSpec(
                name=f"svc.{tenant}",
                n_nodes=1,
                exclusive=True,
                gres=frozenset({NVGPUFREQ_GRES}),
                payload=TenantBatchPayload(
                    tenant=tenant,
                    requests=tuple(reqs),
                    plan=self.plan,
                    switch_overhead_s=self.switch_overhead_s,
                ),
            )
            for tenant, reqs in queues
        ]
        jobs = self.scheduler.submit_many(specs, accounting="batched")
        results = []
        for (tenant, reqs), job in zip(queues, jobs):
            payload_result = job.result or {}
            results.append(
                DrainResult(
                    tenant=tenant,
                    job=job,
                    n=len(reqs),
                    start_s=tuple(payload_result.get("start_s", ())),
                    kernel_energy_j=float(
                        payload_result.get("kernel_energy_j", 0.0)
                    ),
                )
            )
        return results
