"""Multi-tenant scheduling service plane (``repro.service``).

A long-running, virtual-time-cooperative control plane on top of the
SLURM substrate: many tenants concurrently submit kernels with
per-tenant energy targets, quotas and priorities; admission control
rejects with typed reasons; sharded per-partition schedulers drain the
tenant queues through the batched engine (``Scheduler.submit_many`` +
``SynergyQueue.submit_batch``); and an append-only, replayable job store
records every decision so a same-seed session replays byte-identically.

See ``docs/SERVICE.md`` for the tenancy model and
``repro-synergy loadgen`` for the million-submission harness.
"""

from repro.service.loadgen import run_loadgen, run_service_session
from repro.service.plane import SchedulingService
from repro.service.shard import PartitionShard, TenantBatchPayload
from repro.service.store import JobStore, fold_events
from repro.service.tenant import (
    AdmissionDecision,
    RejectReason,
    Tenant,
    TenantRegistry,
)

__all__ = [
    "AdmissionDecision",
    "JobStore",
    "PartitionShard",
    "RejectReason",
    "SchedulingService",
    "Tenant",
    "TenantBatchPayload",
    "TenantRegistry",
    "fold_events",
    "run_loadgen",
    "run_service_session",
]
