"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro-synergy`` entry point)
exposes the deployment and analysis workflows:

- ``devices`` — the Figure 1 frequency inventory,
- ``characterize`` — per-kernel Pareto summary on a device (Figs. 2/7/8),
- ``sweep`` — per-target frequency selections for one benchmark,
- ``train`` — fit the §6.1 models on micro-benchmarks and save the bundle,
- ``compile`` — per-kernel frequency plan for a set of benchmarks,
- ``accuracy`` — the Table 2 error analysis,
- ``scaling`` — the Fig. 10 weak-scaling experiment,
- ``fine-vs-coarse`` — the §2.2 tuning-granularity comparison,
- ``faults`` — the chaos sweep: energy-target quality vs injected faults,
- ``adapt`` — the deadline-aware adaptive-DVFS chaos comparison: drift
  detection and the degradation ladder vs a stale static plan under
  injected thermal-throttle windows (see ``docs/RESILIENCE.md``),
- ``perf`` — benchmark the vectorized fast paths against their scalar
  baselines and write ``BENCH_perf.json``,
- ``trace`` — run a seeded observability scenario and export its Chrome
  trace and metrics documents (see ``docs/OBSERVABILITY.md``),
- ``validate`` — run the invariant catalog and differential harness over
  the golden scenarios, including the batched-engine/scalar parity
  section (``--only engine``; see ``docs/VALIDATION.md``); ``--strict``
  also fails on warnings and is the CI gate in ``scripts/check.sh``,
- ``analyze`` — run the §6.1 static-analysis front end over one kernel
  (``module:fn``, ``file.py:fn`` or a backed kernel name) and print its
  Table-1 features, locality and diagnostics (see ``docs/FRONTEND.md``),
- ``lint`` — the repo-wide determinism linter (banned wall-clock reads,
  global RNG state, exact float equality),
- ``distributed`` — run the distributed command-graph scheduler over a
  halo-exchange stencil (global energy-target plan, batched or scalar
  engine) or its weak-scaling benchmark (``--bench``; see
  ``docs/DISTRIBUTED.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.apps import BENCHMARK_NAMES, CloverLeaf, MiniWeather, get_benchmark
from repro.core.compiler import SynergyCompiler
from repro.core.models import EnergyModelBundle
from repro.core.persistence import load_bundle, save_bundle
from repro.experiments.accuracy import run_accuracy_analysis
from repro.experiments.characterization import characterize, fine_vs_coarse
from repro.experiments.export import (
    accuracy_to_dict,
    characterization_to_dict,
    chaos_to_dict,
    scaling_to_dict,
    write_json,
)
from repro.experiments.faults import DEFAULT_RATES, run_fault_sweep
from repro.experiments.perf import run_perf_pipeline
from repro.experiments.report import format_table
from repro.experiments.scaling import run_scaling_experiment
from repro.experiments.sweep import sweep_kernel
from repro.experiments.training import (
    ALGORITHM_NAMES,
    make_bundle,
    microbench_training_set,
    train_bundles,
)
from repro.hw.specs import get_spec, known_devices
from repro.metrics.targets import EnergyTarget


def _parse_targets(names: Sequence[str]) -> list[EnergyTarget]:
    return [EnergyTarget.parse(n) for n in names]


# ------------------------------------------------------------------ commands

def _cmd_devices(args: argparse.Namespace) -> int:
    rows = []
    for name in known_devices():
        spec = get_spec(name)
        rows.append(
            [
                name,
                spec.name,
                len(spec.core_freqs_mhz),
                f"{spec.min_core_mhz}-{spec.max_core_mhz}",
                spec.mem_freqs_mhz[0],
                spec.default_core_mhz,
            ]
        )
    print(
        format_table(
            ["id", "device", "#core configs", "core range (MHz)", "mem (MHz)",
             "default (MHz)"],
            rows,
            title="Known devices (Figure 1)",
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    names = args.benchmarks if args.benchmarks else list(BENCHMARK_NAMES)
    rows = []
    exported = {}
    for name in names:
        c = characterize(spec, get_benchmark(name).kernel)
        exported[name] = characterization_to_dict(c)
        rows.append(
            [
                name,
                f"[{c.pareto_speedup_min:.3f}, {c.pareto_speedup_max:.3f}]",
                f"{c.max_energy_saving:.1%}",
                f"{c.loss_at_max_saving:.1%}",
                c.default_is_pareto,
            ]
        )
    print(
        format_table(
            ["benchmark", "pareto speedup", "max saving", "loss @ max",
             "default on front"],
            rows,
            title=f"Characterization on {spec.name}",
        )
    )
    if args.json:
        write_json({"kind": "characterization_set", "device": spec.name,
                    "benchmarks": exported}, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    sweep = sweep_kernel(spec, get_benchmark(args.benchmark).kernel)
    rows = []
    for target in _parse_targets(args.targets):
        idx = sweep.resolve(target)
        rows.append(
            [
                target.name,
                f"{sweep.freqs_mhz[idx]:.0f}",
                f"{1 - sweep.normalized_energy[idx]:+.2%}",
                f"{sweep.speedup[idx]:.3f}x",
            ]
        )
    print(
        format_table(
            ["target", "core MHz", "energy saving", "speedup"],
            rows,
            title=f"{args.benchmark} on {spec.name} (measured sweep)",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    print(
        f"training on micro-benchmarks: device={spec.name} "
        f"stride={args.stride} random={args.random_count} "
        f"algorithm={args.algorithm}",
        file=sys.stderr,
    )
    training = microbench_training_set(
        spec, freq_stride=args.stride, random_count=args.random_count
    )
    if args.algorithm == "best":
        bundle = EnergyModelBundle().fit(training)
    else:
        bundle = make_bundle(args.algorithm).fit(training)
    path = save_bundle(bundle, args.out)
    print(f"saved bundle ({training.n_samples} training rows) to {path}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    bundle = load_bundle(args.bundle)
    kernels = [get_benchmark(n).kernel for n in args.benchmarks]
    targets = _parse_targets(args.targets)
    app = SynergyCompiler(bundle, spec).compile(kernels, targets)
    rows = [
        [kernel, target, f"{mem}", f"{core}"]
        for (kernel, target), (mem, core) in sorted(app.plan.entries.items())
    ]
    print(
        format_table(
            ["kernel", "target", "mem MHz", "core MHz"],
            rows,
            title=f"Frequency plan for {spec.name}",
        )
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    print(
        f"training {len(args.algorithms)} model families on {spec.name} "
        "micro-benchmarks ...",
        file=sys.stderr,
    )
    training = microbench_training_set(
        spec, freq_stride=args.stride, random_count=args.random_count
    )
    bundles = train_bundles(spec, training=training, algorithms=args.algorithms)
    analysis = run_accuracy_analysis(spec, bundles=bundles)
    if args.json:
        write_json(accuracy_to_dict(analysis), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    headers = ["objective"]
    for algorithm in args.algorithms:
        headers += [f"{algorithm} RMSE", f"{algorithm} MAPE"]
    headers.append("best")
    rows = []
    for row in analysis.table2():
        cells = [row["objective"]]
        for algorithm in args.algorithms:
            rmse = row[f"{algorithm}_rmse"]
            mape = row[f"{algorithm}_mape"]
            cells += [
                "-" if rmse != rmse else f"{rmse:.4g}",
                "-" if mape != mape else f"{mape:.4g}",
            ]
        cells.append(row["best"])
        rows.append(cells)
    print(format_table(headers, rows, title="Table 2 - error analysis"))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    factory = {
        "cloverleaf": lambda: CloverLeaf(steps=args.steps),
        "miniweather": lambda: MiniWeather(steps=args.steps),
    }[args.app]
    bundle = load_bundle(args.bundle) if args.bundle else None
    if bundle is None:
        print("no --bundle given; training default models ...", file=sys.stderr)
    result = run_scaling_experiment(
        factory,
        gpu_counts=tuple(args.gpus),
        targets=_parse_targets(args.targets),
        bundle=bundle,
    )
    if args.json:
        write_json(scaling_to_dict(result), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    rows = [
        [
            p.n_gpus,
            p.target_name,
            f"{p.elapsed_s:.4f}",
            f"{p.gpu_energy_j:.1f}",
            f"{p.energy_saving_vs(result.baseline(p.n_gpus)):+.2%}",
        ]
        for p in result.points
    ]
    print(
        format_table(
            ["GPUs", "target", "time (s)", "GPU energy (J)", "saving"],
            rows,
            title=f"{args.app} weak scaling (Figure 10)",
        )
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultSpec

    factory = {
        "cloverleaf": lambda: CloverLeaf(steps=args.steps),
        "miniweather": lambda: MiniWeather(steps=args.steps),
    }[args.app]
    extra: tuple[FaultSpec, ...] = ()
    spare = 0
    if args.node_fail_at is not None:
        extra = (FaultSpec(site="slurm.node_fail", at_s=args.node_fail_at),)
        spare = 1  # keep a healthy node for the requeue
    bundle = load_bundle(args.bundle) if args.bundle else None
    if bundle is None:
        print("no --bundle given; training default models ...", file=sys.stderr)
    target = None if args.target == "default" else EnergyTarget.parse(args.target)
    result = run_fault_sweep(
        factory,
        rates=tuple(args.rates),
        seed=args.seed,
        n_nodes=args.nodes,
        spare_nodes=spare,
        target=target,
        bundle=bundle,
        extra_specs=extra,
    )
    if args.json:
        write_json(chaos_to_dict(result), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    rows = [
        [
            f"{p.fault_rate:g}",
            p.state,
            p.requeues,
            f"{p.elapsed_s:.4f}",
            f"{p.gpu_energy_j:.1f}",
            p.clock_retries,
            f"{p.degraded_fraction:.1%}",
            p.faults_injected,
            p.recoveries,
        ]
        for p in result.points
    ]
    print(
        format_table(
            ["rate", "state", "requeues", "time (s)", "GPU energy (J)",
             "retries", "degraded", "faults", "recoveries"],
            rows,
            title=f"{args.app} chaos sweep (target {result.target_name}, "
            f"seed {result.seed})",
        )
    )
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.adapt.chaos import run_thermal_drift_comparison
    from repro.core.sweepcache import scoped_cache

    print(
        f"running thermal-drift chaos comparison (seed {args.seed}) ...",
        file=sys.stderr,
    )
    with scoped_cache():
        comparison = run_thermal_drift_comparison(seed=args.seed)
    if args.json:
        write_json(comparison.as_dict(), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    rows = [
        [
            run.label,
            f"{run.streams_met}/{run.streams_met + run.streams_missed}",
            f"{run.elapsed_s:.4f}",
            f"{run.energy_j:.1f}",
            f"{1.0 - run.energy_j / comparison.max_perf.energy_j:+.2%}",
        ]
        for run in (
            comparison.max_perf,
            comparison.static_clean,
            comparison.static_fault,
            comparison.adaptive_fault,
        )
    ]
    print(
        format_table(
            ["run", "deadlines met", "time (s)", "GPU energy (J)", "saving"],
            rows,
            title=f"Thermal-drift chaos (deadline "
            f"{comparison.deadlines_s[0]:.4f}s/stream, seed "
            f"{comparison.seed})",
        )
    )
    print(
        format_table(
            ["t (s)", "transition", "reason", "evidence"],
            [
                [f"{t['t']:.3f}", f"{t['from']} -> {t['to']}", t["reason"],
                 t["detail"]]
                for t in comparison.transitions
            ],
            title=f"Degradation ladder ({len(comparison.drift_events)} drift "
            f"events, {comparison.refreshes} model refreshes)",
        )
    )
    print(
        f"recovered {comparison.recovery_fraction:.1%} of the pre-drift "
        f"saving ({comparison.adaptive_saving:.1%} of "
        f"{comparison.static_saving:.1%})"
    )
    missed = comparison.adaptive_fault.streams_missed
    if missed:
        print(f"adaptive run missed {missed} stream deadlines", file=sys.stderr)
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    print(
        f"benchmarking fast paths (quick={args.quick}, jobs={args.jobs}) ...",
        file=sys.stderr,
    )
    report = run_perf_pipeline(
        quick=args.quick, n_jobs=args.jobs, json_path=args.json or None
    )
    rows = [
        [
            s["name"],
            f"{s['baseline_s']:.4f}",
            f"{s['fast_s']:.4f}",
            f"{s['speedup']:.1f}x",
            "-" if s["target"] is None else f">={s['target']:.0f}x",
            f"{s['max_rel_err']:.1e}",
        ]
        for s in report["sections"]
    ]
    print(
        format_table(
            ["fast path", "baseline (s)", "fast (s)", "speedup", "target",
             "max rel err"],
            rows,
            title="Vectorized fast paths vs scalar baselines",
        )
    )
    cache = report["sweep_cache"]
    print(
        format_table(
            ["cold (s)", "warm (s)", "warm speedup", "hits", "misses",
             "entries"],
            [[f"{cache['cold_s']:.4f}", f"{cache['warm_s']:.4f}",
              f"{cache['warm_speedup']:.0f}x", cache["hits"],
              cache["misses"], cache["entries"]]],
            title="Keyed sweep cache",
        )
    )
    print(f"parallel forest deterministic: {report['forest_deterministic']}")
    if args.json:
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import write_metrics_json, write_trace_json
    from repro.obs.scenarios import run_scenario

    print(
        f"running scenario {args.scenario!r} (seed {args.seed}) ...",
        file=sys.stderr,
    )
    session = run_scenario(args.scenario, seed=args.seed)
    meta = {"scenario": args.scenario, "seed": args.seed}
    trace_path = write_trace_json(session, args.out, metadata=meta)
    print(f"wrote {trace_path} (open in Perfetto / chrome://tracing)")
    if args.metrics:
        metrics_path = write_metrics_json(session, args.metrics, metadata=meta)
        print(f"wrote {metrics_path}")
    spans = session.tracer.span_counts()
    rows = [[cat, n] for cat, n in spans.items()]
    rows += [[f"{cat} (instant)", n]
             for cat, n in session.tracer.instant_counts().items()]
    print(
        format_table(
            ["category", "events"],
            rows,
            title=f"Recorded events ({sum(spans.values())} spans)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.runner import GOLDEN_SCENARIOS, run_validation

    scenarios = tuple(args.scenario) if args.scenario else GOLDEN_SCENARIOS
    only = tuple(args.only) if args.only else None
    print(
        f"running validation (scenarios={list(scenarios)}, "
        f"sections={list(only) if only else 'all'}, seed={args.seed}) ...",
        file=sys.stderr,
    )
    report = run_validation(scenarios, seed=args.seed, only=only)
    # One row per check name: the catalog view; individual failures follow.
    by_name: dict[str, list] = {}
    for r in report.results:
        by_name.setdefault(r.name, []).append(r)
    rows = []
    for name in sorted(by_name):
        group = by_name[name]
        bad = [r for r in group if not r.passed]
        rows.append([name, len(group), len(group) - len(bad),
                     "ok" if not bad else bad[0].status.upper()])
    print(
        format_table(
            ["check", "runs", "passed", "verdict"],
            rows,
            title=f"Validation plane ({len(report.results)} checks)",
        )
    )
    for r in report.results:
        if not r.passed:
            print(f"{r.status:>4}  {r.name}: {r.detail}")
    if args.json:
        write_json(report.as_dict(), args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    ok = report.ok(strict=args.strict)
    print(f"validation {'passed' if ok else 'FAILED'} "
          f"({len(report.failures)} failures, {len(report.warnings)} warnings"
          f"{', strict' if args.strict else ''})")
    return 0 if ok else 1


def _cmd_fine_vs_coarse(args: argparse.Namespace) -> int:
    spec = get_spec(args.device)
    kernels = [
        get_benchmark(n).kernel.with_name(f"{n}#{i}")
        for i, n in enumerate(args.benchmarks)
    ]
    target = EnergyTarget.parse(args.target)
    result = fine_vs_coarse(spec, kernels, target)
    print(
        format_table(
            ["granularity", "energy (J)", "time (s)"],
            [
                ["coarse (best single f)", result.coarse_energy_j,
                 result.coarse_time_s],
                ["fine (per-kernel)", result.fine_energy_j, result.fine_time_s],
            ],
            title=f"{target.name} on {spec.name}: "
            f"fine-grained advantage {result.fine_advantage:+.2%}",
        )
    )
    return 0


def _resolve_analysis_target(target: str):
    """Resolve the ``analyze`` argument to (AnalysisResult, DeviceKernel|None).

    Accepts ``pkg.module:fn``, ``path/to/file.py:fn`` or the name of a
    source-backed kernel from :mod:`repro.frontend.kernels`.
    """
    import importlib
    import inspect
    import textwrap
    from pathlib import Path

    from repro.common.errors import ConfigurationError
    from repro.frontend import DeviceKernel, analyze_source
    from repro.frontend.kernels import KERNELS

    if ":" in target:
        mod, _, fn = target.rpartition(":")
        if mod.endswith(".py"):
            path = Path(mod)
            if not path.is_file():
                raise ConfigurationError(f"no such kernel file: {mod}")
            return analyze_source(path.read_text(), fn_name=fn), None
        obj = getattr(importlib.import_module(mod), fn, None)
        if obj is None:
            raise ConfigurationError(f"module {mod!r} has no attribute {fn!r}")
        if isinstance(obj, DeviceKernel):
            return obj.analysis, obj
        if not callable(obj):
            raise ConfigurationError(f"{target!r} is not a function")
        lines, start_line = inspect.getsourcelines(obj)
        raw = "".join(lines)
        src = textwrap.dedent(raw)
        # Report locations in the defining file's coordinates: shift lines
        # by the function's position and columns by the stripped indent
        # (anchors inside multi-line statements shift identically).
        indent = 0
        for before, after in zip(raw.splitlines(), src.splitlines()):
            if after.strip():
                indent = len(before) - len(after)
                break
        return (
            analyze_source(
                src,
                fn_name=obj.__name__,
                line_offset=start_line - 1,
                col_offset=indent,
            ),
            None,
        )
    if target in KERNELS:
        dk = KERNELS[target]
        return dk.analysis, dk
    raise ConfigurationError(
        f"unknown analyze target {target!r}: use module:fn, file.py:fn or "
        f"one of the backed kernels {sorted(KERNELS)}"
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError, ValidationError
    from repro.kernelir.features import FEATURE_NAMES

    try:
        analysis, dk = _resolve_analysis_target(args.kernel)
    except (ConfigurationError, ValidationError, ImportError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    counts = analysis.mix.as_dict()
    rows = [[name, f"{counts[name]:g}"] for name in FEATURE_NAMES]
    print(
        format_table(
            ["feature", "static count / work-item"],
            rows,
            title=f"Table-1 features for kernel {analysis.name!r}",
        )
    )
    est = analysis.locality_estimate
    pin = dk.pinned_locality if dk is not None else None
    line = f"locality: estimated {est.value:.4f} ({est.hits:g}/{est.total:g} reused)"
    if pin is not None:
        line += f"; pinned to {pin:g} (calibrated)"
    print(line)
    if args.json:
        write_json(
            {
                "kind": "frontend_analysis",
                "kernel": analysis.name,
                "features": counts,
                "locality_estimate": est.value,
                "locality_pinned": pin,
                "diagnostics": [d.as_dict() for d in analysis.diagnostics],
                "races": [d.as_dict() for d in analysis.races],
            },
            args.json,
        )
        print(f"wrote {args.json}", file=sys.stderr)
    findings = analysis.diagnostics + analysis.races
    if findings:
        print(f"{len(findings)} diagnostics:", file=sys.stderr)
        for d in findings:
            print(f"  {d.format()}", file=sys.stderr)
        return 1
    print(
        "diagnostics: none (kernel is inside the device-Python subset and "
        "race/bounds-clean)"
    )
    return 0


def _tenant_rows(tenants: list[dict]) -> list[list[object]]:
    """Wattlytics-style per-tenant accounting rows."""
    return [
        [
            row["tenant"],
            row["priority"],
            row["target"],
            row["shard"],
            row["admitted"],
            row["rejected"],
            row["drained"],
            f"{row['energy_j']:.3f}",
            f"{row['saved_j']:.3f}",
            "-" if row["p99_latency_s"] is None
            else f"{row['p99_latency_s']:.3f}",
        ]
        for row in tenants
    ]


_TENANT_HEADERS = [
    "tenant", "prio", "target", "shard", "admitted", "rejected",
    "drained", "energy (J)", "saved (J)", "p99 lat (s)",
]


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError, ValidationError
    from repro.core.sweepcache import scoped_cache
    from repro.service.loadgen import run_service_session

    print(
        f"running service session (seed={args.seed}, tenants={args.tenants}, "
        f"submissions={args.submissions}, partitions={args.partitions}, "
        f"cycles={args.cycles}) ...",
        file=sys.stderr,
    )
    try:
        with scoped_cache():
            service = run_service_session(
                seed=args.seed,
                n_tenants=args.tenants,
                n_submissions=args.submissions,
                n_partitions=args.partitions,
                n_cycles=args.cycles,
            )
    except (ConfigurationError, ValidationError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    report = service.report()
    print(
        format_table(
            _TENANT_HEADERS,
            _tenant_rows(report["tenants"]),
            title="Per-tenant accounting",
        )
    )
    cluster = report["cluster"]
    p50, p99 = cluster["p50_latency_s"], cluster["p99_latency_s"]
    print(
        f"cluster: {cluster['drained']} drained / "
        f"{cluster['submissions']} admitted / "
        f"{cluster['rejections']} rejected over {cluster['cycles']} cycles; "
        f"{cluster['saved_j']:.3f} J saved vs MAX_PERF "
        f"(p50 {'-' if p50 is None else f'{p50:.3f}'} s, "
        f"p99 {'-' if p99 is None else f'{p99:.3f}'} s)"
    )
    if args.store:
        path = service.store.save(args.store)
        print(f"wrote {path} ({len(service.store)} events)", file=sys.stderr)
    if args.json:
        write_json(report, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError, ValidationError
    from repro.service.loadgen import run_loadgen

    print(
        f"load-generating (seed={args.seed}, quick={args.quick}) ...",
        file=sys.stderr,
    )
    try:
        section = run_loadgen(
            seed=args.seed,
            quick=args.quick,
            n_tenants=args.tenants,
            n_submissions=args.submissions,
            n_partitions=args.partitions,
            n_cycles=args.cycles,
            json_path=args.json or None,
        )
    except (ConfigurationError, ValidationError) as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    print(
        format_table(
            _TENANT_HEADERS,
            _tenant_rows(section["tenants"]),
            title="Per-tenant accounting",
        )
    )
    print(
        format_table(
            ["submissions", "drained", "rejected", "wall (s)", "sub/s",
             "p50 lat (s)", "p99 lat (s)", "saved (J)"],
            [[
                section["n_submissions"],
                section["drained"],
                section["rejected"],
                f"{section['wall_s']:.2f}",
                f"{section['submissions_per_s']:.0f}",
                f"{section['p50_latency_s']:.3f}",
                f"{section['p99_latency_s']:.3f}",
                f"{section['saved_j']:.3f}",
            ]],
            title=f"Loadgen ({section['n_tenants']} tenants, "
            f"{section['n_partitions']} partitions)",
        )
    )
    if args.json:
        print(f"merged loadgen section into {args.json}", file=sys.stderr)
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError, ValidationError
    from repro.core.compiler import plan_global_frequencies
    from repro.core.sweepcache import scoped_cache
    from repro.distributed import build_comm, build_stencil_graph, run_graph

    if args.bench:
        from repro.distributed.bench import run_distributed_bench

        print(
            f"distributed weak-scaling benchmark (quick={args.quick}) ...",
            file=sys.stderr,
        )
        section = run_distributed_bench(
            quick=args.quick, json_path=args.json or None
        )
        base = section["base"]
        print(
            format_table(
                ["ranks", "nodes", "speedup", "parity rel err", "switches",
                 "completion (s)", "energy (J)"],
                [[
                    base["ranks"], base["nodes"],
                    f"{base['speedup']:.1f}x",
                    f"{base['parity_rel_err']:.1e}",
                    "equal" if base["switches_equal"] else "DIFFER",
                    f"{base['completion_s']:.6f}",
                    f"{base['energy_j']:.2f}",
                ]],
                title=f"Batched vs scalar parity ({section['device']})",
            )
        )
        print(
            format_table(
                ["ranks", "nodes", "completion (s)", "MAX_PERF (s)",
                 "energy (J)", "MAX_PERF (J)", "saved"],
                [[
                    s["ranks"], s["nodes"],
                    f"{s['completion_s']:.6f}",
                    f"{s['maxperf_completion_s']:.6f}",
                    f"{s['energy_j']:.2f}",
                    f"{s['maxperf_energy_j']:.2f}",
                    f"{100 * s['saved_frac']:.1f}%",
                ] for s in section["scales"]],
                title="Weak scaling (batched engine)",
            )
        )
        if args.json:
            print(
                f"merged distributed section into {args.json}",
                file=sys.stderr,
            )
        return 0

    print(
        f"distributed stencil graph (device={args.device}, "
        f"ranks={args.ranks}, steps={args.steps}, sla={args.sla}, "
        f"engine={args.engine}) ...",
        file=sys.stderr,
    )
    try:
        spec = get_spec(args.device)
        with scoped_cache():
            comm = build_comm(spec, args.ranks)
            graph = build_stencil_graph(comm, steps=args.steps)
            plan = plan_global_frequencies(
                spec, graph.rank_kernels(), sla_factor=args.sla, cache=True
            )
            baseline = plan_global_frequencies(
                spec, graph.rank_kernels(), sla_factor=args.sla,
                objective="MAX_PERF", cache=True,
            )
            result = run_graph(graph, comm, plan, engine=args.engine)
            ref = run_graph(
                graph, build_comm(spec, args.ranks), baseline,
                engine=args.engine,
            )
    except (ConfigurationError, ValidationError) as exc:
        print(f"distributed: {exc}", file=sys.stderr)
        return 2
    counts = graph.counts()
    slack = sum(t != "MAX_PERF" for t in plan.rank_targets)
    if args.ranks <= 16:
        print(
            format_table(
                ["rank", "target", "core (MHz)", "time (s)", "energy (J)",
                 "switches"],
                [[
                    r, plan.rank_targets[r], plan.rank_clocks[r][1],
                    f"{result.rank_time_s[r]:.6f}",
                    f"{result.rank_energy_j[r]:.3f}",
                    int(result.rank_switches[r]),
                ] for r in range(args.ranks)],
                title="Per-rank plan & execution",
            )
        )
    print(
        format_table(
            ["nodes", "kernels", "halos", "gathers", "waves", "critical rank",
             "slack ranks"],
            [[
                len(graph.nodes), counts.get("kernel", 0),
                counts.get("halo", 0), counts.get("gather", 0),
                graph.n_waves, plan.critical_rank, slack,
            ]],
            title="Command graph",
        )
    )
    saved = ref.total_energy_j - result.total_energy_j
    frac = saved / ref.total_energy_j if ref.total_energy_j else 0.0
    mode = result.mode + (f" (fallback: {result.fallback})"
                          if result.fallback else "")
    print(
        f"executed via {mode}: completion {result.completion_s:.6f} s "
        f"(MAX_PERF {ref.completion_s:.6f} s, budget "
        f"{args.sla:.2f}x), energy {result.total_energy_j:.2f} J vs "
        f"{ref.total_energy_j:.2f} J at MAX_PERF — saved {saved:.2f} J "
        f"({100 * frac:.1f}%)"
    )
    if args.json:
        doc = {
            "device": spec.name,
            "ranks": args.ranks,
            "steps": args.steps,
            "sla_factor": args.sla,
            "engine": args.engine,
            "graph": {
                "nodes": len(graph.nodes), "waves": graph.n_waves, **counts,
            },
            "plan": {
                "critical_rank": plan.critical_rank,
                "slack_ranks": slack,
                "rank_targets": list(plan.rank_targets),
            },
            "result": result.summary(),
            "maxperf": ref.summary(),
            "saved_j": saved,
        }
        write_json(doc, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.frontend.lint import default_lint_root, lint_paths

    paths = args.paths if args.paths else [str(default_lint_root())]
    violations = lint_paths(paths)
    for v in violations:
        print(v.format())
    n_files = len({v.path for v in violations})
    if violations:
        print(
            f"lint: {len(violations)} determinism violations in "
            f"{n_files} files",
            file=sys.stderr,
        )
        return 1
    print(f"lint: clean ({', '.join(paths)})")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis.scenarios import certify_scenarios, deadline_demo

    scenarios = tuple(args.scenario) if args.scenario else None
    certificates = certify_scenarios(seed=args.seed, scenarios=scenarios)
    rows = []
    failures = 0
    for name, cert in certificates.items():
        for bracket in cert.checks:
            ok = bracket.ok
            failures += not ok
            rows.append([
                name,
                bracket.quantity,
                f"{bracket.interval}",
                f"{bracket.measured:.6e}",
                "ok" if ok else "OUTSIDE",
            ])
        for label, ok in cert.assertions:
            failures += not ok
            rows.append([name, "assert", label, "", "ok" if ok else "FAILED"])
    print(
        format_table(
            ["scenario", "quantity", "static interval", "measured", "verdict"],
            rows,
            title=f"Plan certificates (seed={args.seed})",
        )
    )
    for name, cert in certificates.items():
        for note in cert.notes:
            print(f"  {name}: {note}", file=sys.stderr)

    cert_ok, cert_bad = deadline_demo(seed=args.seed)
    demo_ok = (
        cert_ok.feasible
        and not cert_bad.feasible
        and cert_bad.witness is not None
    )
    failures += not demo_ok
    print(
        f"DEADLINE demo: feasible plan "
        f"{'proved' if cert_ok.feasible else 'REFUTED (bug)'}; "
        f"infeasible plan "
        + (
            f"refuted with witness {cert_bad.witness!r}"
            if not cert_bad.feasible
            else "NOT refuted (bug)"
        )
    )
    if cert_bad.violations:
        print(f"  {cert_bad.violations[0]}")

    if args.json:
        write_json(
            {
                "seed": args.seed,
                "ok": failures == 0,
                "scenarios": {
                    name: cert.as_dict()
                    for name, cert in certificates.items()
                },
                "deadline_demo": {
                    "feasible": cert_ok.as_dict(),
                    "infeasible": cert_bad.as_dict(),
                },
            },
            args.json,
        )
        print(f"wrote {args.json}", file=sys.stderr)

    verdict = "certified" if failures == 0 else f"{failures} FAILURES"
    print(f"certification {verdict} "
          f"({len(certificates)} scenarios + DEADLINE demo"
          f"{', strict' if args.strict else ''})")
    return 0 if failures == 0 else 1


# -------------------------------------------------------------------- parser

def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-synergy",
        description="SYnergy (SC'23) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list known GPU models").set_defaults(
        fn=_cmd_devices
    )

    p = sub.add_parser("characterize", help="per-kernel Pareto summary")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--benchmarks", nargs="*", default=None,
                   help="benchmark names (default: all 23)")
    p.add_argument("--json", default=None, help="export results to a JSON file")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("sweep", help="per-target selections for one benchmark")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--benchmark", required=True)
    p.add_argument("--targets", nargs="+",
                   default=["MIN_ENERGY", "MIN_EDP", "MIN_ED2P", "ES_50", "PL_50"])
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("train", help="train energy models, save the bundle")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--out", required=True, help="output bundle JSON path")
    p.add_argument("--stride", type=int, default=4,
                   help="frequency-table stride for the training sweep")
    p.add_argument("--random-count", type=int, default=24)
    p.add_argument("--algorithm", default="best",
                   choices=("best", *ALGORITHM_NAMES))
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("compile", help="emit a per-kernel frequency plan")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--bundle", required=True, help="trained bundle JSON path")
    p.add_argument("--benchmarks", nargs="+", required=True)
    p.add_argument("--targets", nargs="+", default=["MIN_EDP"])
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("accuracy", help="the Table 2 error analysis")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--algorithms", nargs="+", default=list(ALGORITHM_NAMES),
                   choices=ALGORITHM_NAMES)
    p.add_argument("--stride", type=int, default=8)
    p.add_argument("--random-count", type=int, default=24)
    p.add_argument("--json", default=None, help="export results to a JSON file")
    p.set_defaults(fn=_cmd_accuracy)

    p = sub.add_parser("scaling", help="the Fig. 10 weak-scaling experiment")
    p.add_argument("--app", default="cloverleaf",
                   choices=("cloverleaf", "miniweather"))
    p.add_argument("--gpus", nargs="+", type=int, default=[4, 8, 16])
    p.add_argument("--targets", nargs="+", default=["MIN_EDP", "ES_50", "PL_50"])
    p.add_argument("--steps", type=int, default=4)
    p.add_argument("--bundle", default=None, help="trained bundle JSON path")
    p.add_argument("--json", default=None, help="export results to a JSON file")
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("faults", help="chaos sweep: resilience vs fault rate")
    p.add_argument("--app", default="cloverleaf",
                   choices=("cloverleaf", "miniweather"))
    p.add_argument("--rates", nargs="+", type=float, default=list(DEFAULT_RATES),
                   help="transient NVML clock-set failure rates to sweep")
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument("--nodes", type=int, default=2, help="nodes per job")
    p.add_argument("--steps", type=int, default=4)
    p.add_argument("--target", default="MIN_EDP",
                   help="energy target ('default' disables per-kernel tuning)")
    p.add_argument("--node-fail-at", type=float, default=None,
                   help="also schedule a node failure at this virtual time "
                   "(a spare node is provisioned for the requeue)")
    p.add_argument("--bundle", default=None, help="trained bundle JSON path")
    p.add_argument("--json", default=None, help="export results to a JSON file")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser("adapt", help="deadline-aware adaptive DVFS vs a "
                       "stale static plan under thermal throttle")
    p.add_argument("--seed", type=int, default=7, help="scenario seed")
    p.add_argument("--json", default=None, help="export results to a JSON file")
    p.set_defaults(fn=_cmd_adapt)

    p = sub.add_parser("perf", help="benchmark the vectorized fast paths")
    p.add_argument("--quick", action="store_true",
                   help="shrink every scale for a smoke run")
    p.add_argument("--jobs", type=int, default=None,
                   help="extra worker count to verify forest determinism with")
    p.add_argument("--json", default="BENCH_perf.json",
                   help="report output path ('' disables)")
    p.set_defaults(fn=_cmd_perf)

    p = sub.add_parser("fine-vs-coarse", help="tuning-granularity comparison")
    p.add_argument("--device", default="v100", choices=known_devices())
    p.add_argument("--benchmarks", nargs="+", required=True)
    p.add_argument("--target", default="MIN_ENERGY")
    p.set_defaults(fn=_cmd_fine_vs_coarse)

    p = sub.add_parser("trace", help="run an observability scenario, export "
                       "Chrome trace + metrics JSON")
    from repro.obs.scenarios import SCENARIOS

    p.add_argument("scenario", choices=sorted(SCENARIOS),
                   help="seeded end-to-end scenario to run")
    p.add_argument("--seed", type=int, default=7, help="scenario seed")
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event output path")
    p.add_argument("--metrics", default=None,
                   help="also write the flat metrics document here")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("validate", help="run the invariant & differential "
                       "validation plane")
    from repro.validate.runner import SECTIONS

    p.add_argument("--scenario", nargs="+", choices=sorted(SCENARIOS),
                   default=None,
                   help="golden scenarios to replay (default: all)")
    p.add_argument("--only", nargs="+", choices=SECTIONS, default=None,
                   help="restrict to these report sections")
    p.add_argument("--strict", action="store_true",
                   help="fail on warnings too (the CI contract)")
    p.add_argument("--seed", type=int, default=7, help="seeded-case seed")
    p.add_argument("--json", default=None,
                   help="export the full report to a JSON file")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("analyze", help="run the §6.1 front end over a kernel, "
                       "print features + diagnostics")
    p.add_argument("kernel",
                   help="module:fn, path/to/file.py:fn, or a backed kernel "
                   "name (e.g. vec_add)")
    p.add_argument("--json", default=None,
                   help="export features and diagnostics to a JSON file")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("certify", help="statically certify frequency plans: "
                       "bracket the golden scenarios, audit the weak-scaling "
                       "graph, prove/refute DEADLINE feasibility")
    from repro.analysis.scenarios import CERTIFIERS

    p.add_argument("--scenario", nargs="+", choices=sorted(CERTIFIERS),
                   default=None,
                   help="scenarios to certify (default: all)")
    p.add_argument("--seed", type=int, default=7, help="scenario seed")
    p.add_argument("--strict", action="store_true",
                   help="accepted for symmetry with validate; certificates "
                   "always gate hard")
    p.add_argument("--json", default=None,
                   help="export all certificates to a JSON file")
    p.set_defaults(fn=_cmd_certify)

    p = sub.add_parser("lint", help="repo-wide determinism linter")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src/repro)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("serve", help="run a seeded multi-tenant service "
                       "session, print per-tenant accounting")
    p.add_argument("--seed", type=int, default=7, help="session seed")
    p.add_argument("--tenants", type=int, default=8, help="tenant count")
    p.add_argument("--submissions", type=int, default=2000,
                   help="seeded submission attempts")
    p.add_argument("--partitions", type=int, default=4,
                   help="scheduler shards")
    p.add_argument("--cycles", type=int, default=8, help="drain cycles")
    p.add_argument("--store", default=None,
                   help="save the replayable job store to this JSON path")
    p.add_argument("--json", default=None,
                   help="export the full report to a JSON file")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("loadgen", help="drive the million-submission load "
                       "generator, merge a BENCH loadgen section")
    p.add_argument("--seed", type=int, default=7, help="generator seed")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke configuration (8 tenants x 2k submissions)")
    p.add_argument("--tenants", type=int, default=None,
                   help="override tenant count")
    p.add_argument("--submissions", type=int, default=None,
                   help="override submission count")
    p.add_argument("--partitions", type=int, default=None,
                   help="override shard count")
    p.add_argument("--cycles", type=int, default=None,
                   help="override drain-cycle count")
    p.add_argument("--json", default="BENCH_perf.json",
                   help="benchmark document to merge the section into "
                   "('' to skip)")
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser(
        "distributed",
        help="run the distributed command-graph scheduler over a "
        "halo-exchange stencil, or its weak-scaling benchmark (--bench)",
    )
    p.add_argument("--device", default="A100", choices=known_devices())
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--steps", type=int, default=4)
    p.add_argument("--sla", type=float, default=1.25,
                   help="global completion budget vs MAX_PERF (default 1.25)")
    p.add_argument("--engine", choices=("batched", "scalar"),
                   default="batched")
    p.add_argument("--bench", action="store_true",
                   help="run the Fig. 10 weak-scaling benchmark instead")
    p.add_argument("--quick", action="store_true",
                   help="with --bench: shrink rank counts for smoke use")
    p.add_argument("--json", default="",
                   help="write the run summary (or merge the bench section) "
                   "to this path")
    p.set_defaults(fn=_cmd_distributed)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
