"""Cross-stack invariant & differential validation plane.

The reproduction's headline claims (Fig. 4 EDP/ED2P minima, §5.2–5.3
ES_x/PL_x semantics, §2.3 power capping, the §6 model pipeline) all rest
on physical and algebraic invariants — energy = ∫P dt, a single interior
energy minimum per kernel, Pareto dominance, power-budget conservation —
and on the equivalence of paired implementations (vectorized vs scalar,
cached vs uncached, parallel vs serial, traced vs untraced). This package
encodes both as executable checks:

- :mod:`repro.validate.invariants` — pure invariant checkers over sweep,
  trace and power-cap results,
- :mod:`repro.validate.differential` — the differential harness replaying
  seeded workloads through paired implementations,
- :mod:`repro.validate.inline` — the cheap opt-in ``validate=`` hook wired
  into :class:`~repro.core.queue.SynergyQueue` and
  :meth:`~repro.slurm.cluster.Cluster.build` (no-op by default, like
  ``NULL_TRACE``),
- :mod:`repro.validate.runner` — the ``repro-synergy validate`` driver
  covering both golden scenarios.

Only the result types and the inline hook are imported eagerly; the
runner pulls in the experiment stack, which itself imports modules that
carry the inline hook — importing it here would be circular.
"""

from __future__ import annotations

from repro.validate.inline import (
    NULL_VALIDATOR,
    InlineValidator,
    resolve_validator,
)
from repro.validate.result import CheckResult, Severity, ValidationReport

__all__ = [
    "CheckResult",
    "InlineValidator",
    "NULL_VALIDATOR",
    "Severity",
    "ValidationReport",
    "resolve_validator",
    "run_validation",
]


def run_validation(*args, **kwargs):
    """Run the full validation plane (lazy import of the runner)."""
    from repro.validate.runner import run_validation as _run

    return _run(*args, **kwargs)
