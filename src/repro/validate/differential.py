"""Differential validation: paired implementations must agree.

The perf plane (PR 2) kept every scalar baseline callable next to its
vectorized replacement, and the observability plane (PR 3) promised that
tracing never perturbs the physics. This module replays seeded workloads
through both sides of each pair and asserts equivalence:

- vectorized vs ``*_scalar`` sweep and 2-D sweep paths (to the perf
  plane's documented rel-1e-12 contract: NumPy ``pow`` and scalar libm
  ``pow`` differ by ~1 ulp),
- cached vs uncached :class:`~repro.core.sweepcache.SweepCache` runs
  (bitwise, plus the hit/miss accounting),
- parallel vs serial random-forest training (bitwise predictions),
- traced (``trace=``) vs untraced execution of a tuned queue workload
  (identical per-kernel records and profiled energies).
"""

from __future__ import annotations

import numpy as np

from repro.hw.specs import NVIDIA_V100, GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.validate.result import CheckResult, check

#: Default kernel set for the sweep differentials: a compute-bound, a
#: memory-bound and a balanced member of the §8 suite.
DIFF_KERNEL_NAMES: tuple[str, ...] = ("gemm", "sobel3", "median")

#: The vectorized/scalar agreement contract of the perf plane (NumPy pow
#: vs scalar libm pow differ by ~1 ulp, so bitwise is too strict there).
SCALAR_PATH_RTOL = 1e-12


def _kernels(names: tuple[str, ...]) -> list[KernelIR]:
    from repro.apps import get_benchmark

    return [get_benchmark(name).kernel for name in names]


def _arrays_equal(name: str, context: str, *pairs, rtol: float = 0.0) -> CheckResult:
    """Equality of paired arrays; bitwise unless a relative tolerance is set."""
    for a, b in pairs:
        av, bv = np.asarray(a), np.asarray(b)
        if rtol > 0.0:
            equal = bool(np.allclose(av, bv, rtol=rtol, atol=0.0))
        else:
            equal = bool(np.array_equal(av, bv))
        if not equal:
            diff = float(
                np.max(np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))
            )
            return check(
                name, False, f"{context}: paired results differ (max |Δ| = {diff:g})"
            )
    return check(name, True, context)


def check_sweep_vectorized_vs_scalar(
    spec: GPUSpec = NVIDIA_V100, names: tuple[str, ...] = DIFF_KERNEL_NAMES
) -> list[CheckResult]:
    """``measure_sweep`` against ``measure_sweep_scalar`` (rel 1e-12)."""
    from repro.core.models import measure_sweep, measure_sweep_scalar

    results = []
    for kernel in _kernels(names):
        fast = measure_sweep(spec, kernel, cache=False)
        slow = measure_sweep_scalar(spec, kernel)
        results.append(
            _arrays_equal(
                "diff.sweep_vectorized_vs_scalar",
                f"{kernel.name}@{spec.name}",
                *zip(fast, slow),
                rtol=SCALAR_PATH_RTOL,
            )
        )
    return results


def check_sweep2d_vectorized_vs_scalar(
    spec: GPUSpec = NVIDIA_V100, names: tuple[str, ...] = DIFF_KERNEL_NAMES
) -> list[CheckResult]:
    """``sweep_kernel_2d`` against ``sweep_kernel_2d_scalar`` (rel 1e-12)."""
    from repro.experiments.sweep import sweep_kernel_2d, sweep_kernel_2d_scalar

    results = []
    for kernel in _kernels(names):
        fast = sweep_kernel_2d(spec, kernel, cache=False)
        slow = sweep_kernel_2d_scalar(spec, kernel)
        results.append(
            _arrays_equal(
                "diff.sweep2d_vectorized_vs_scalar",
                f"{kernel.name}@{spec.name}",
                (fast.time_s, slow.time_s),
                (fast.energy_j, slow.energy_j),
                rtol=SCALAR_PATH_RTOL,
            )
        )
    return results


def check_cached_vs_uncached(
    spec: GPUSpec = NVIDIA_V100, names: tuple[str, ...] = DIFF_KERNEL_NAMES
) -> list[CheckResult]:
    """A warm :class:`SweepCache` serves bitwise-identical sweeps.

    Runs every kernel uncached, then twice through one fresh cache; the
    second pass must be all hits and every pass must agree bitwise.
    """
    from repro.core.models import measure_sweep
    from repro.core.sweepcache import SweepCache

    cache = SweepCache()
    results = []
    for kernel in _kernels(names):
        bare = measure_sweep(spec, kernel, cache=False)
        cold = measure_sweep(spec, kernel, cache=cache)
        warm = measure_sweep(spec, kernel, cache=cache)
        results.append(
            _arrays_equal(
                "diff.cached_vs_uncached",
                f"{kernel.name}@{spec.name}",
                *zip(bare, cold),
                *zip(bare, warm),
            )
        )
    results.append(
        check(
            "diff.cache_accounting",
            cache.stats.hits == len(names) and cache.stats.misses == len(names),
            f"expected {len(names)} hits / {len(names)} misses, saw "
            f"{cache.stats.hits} / {cache.stats.misses}",
        )
    )
    return results


def check_forest_parallel_vs_serial(
    spec: GPUSpec = NVIDIA_V100, n_estimators: int = 8, seed: int = 11
) -> list[CheckResult]:
    """Parallel forest training is bitwise-identical to serial training."""
    from repro.experiments.training import microbench_training_set
    from repro.ml.forest import RandomForestRegressor

    training = microbench_training_set(spec, freq_stride=24, random_count=2)
    X = training.X
    y = np.log(np.maximum(training.energy_j, 1e-300))
    serial = RandomForestRegressor(
        n_estimators=n_estimators, seed=seed, n_jobs=1
    ).fit(X, y)
    parallel = RandomForestRegressor(
        n_estimators=n_estimators, seed=seed, n_jobs=2
    ).fit(X, y)
    return [
        _arrays_equal(
            "diff.forest_parallel_vs_serial",
            f"{n_estimators} trees on {spec.name} microbenchmarks",
            (serial.predict(X), parallel.predict(X)),
        )
    ]


def _tuned_workload(trace) -> tuple[list[dict], float, float]:
    """A seeded single-GPU MIN_EDP workload returning its physics.

    Mirrors the ``single-gpu`` golden scenario in miniature: a Linear
    bundle drives a live predictor, three kernels run twice under MIN_EDP,
    and both profiling granularities are queried. Returns the per-kernel
    stats rows plus the sampled and true device energies.
    """
    from repro.core.predictor import FrequencyPredictor
    from repro.core.queue import SynergyQueue
    from repro.core.sweepcache import scoped_cache
    from repro.experiments.training import make_bundle, microbench_training_set
    from repro.hw.device import SimulatedGPU
    from repro.metrics.targets import MIN_EDP

    with scoped_cache():
        training = microbench_training_set(
            NVIDIA_V100, freq_stride=24, random_count=2
        )
        bundle = make_bundle("Linear", seed=7).fit(training)
        predictor = FrequencyPredictor(bundle, NVIDIA_V100, trace=trace)
        gpu = SimulatedGPU(NVIDIA_V100, index=0)
        queue = SynergyQueue(gpu, predictor=predictor, trace=trace)
        for _round in range(2):
            for kernel in _kernels(DIFF_KERNEL_NAMES):
                queue.submit(
                    MIN_EDP,
                    lambda h, k=kernel: h.parallel_for(k.work_items, k),
                )
        sampled = queue.device_energy_consumption()
        true = queue.device_energy_consumption(true_value=True)
        return queue.kernel_stats(), sampled, true


def check_traced_vs_untraced() -> list[CheckResult]:
    """Tracing must observe the physics, never perturb it.

    The same seeded workload runs once under a live
    :class:`~repro.obs.session.TraceSession` and once under the default
    ``NULL_TRACE``; kernel records and profiled energies must be
    identical.
    """
    from repro.obs.session import TraceSession

    traced_stats, traced_sampled, traced_true = _tuned_workload(TraceSession())
    bare_stats, bare_sampled, bare_true = _tuned_workload(None)
    return [
        check(
            "diff.traced_vs_untraced_kernels",
            traced_stats == bare_stats,
            f"per-kernel records diverge under tracing "
            f"({len(traced_stats)} vs {len(bare_stats)} rows)",
        ),
        check(
            "diff.traced_vs_untraced_energy",
            traced_sampled == bare_sampled and traced_true == bare_true,
            f"profiled energies diverge under tracing: sampled "
            f"{traced_sampled!r} vs {bare_sampled!r} J, true "
            f"{traced_true!r} vs {bare_true!r} J",
        ),
    ]


def run_differential_checks(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """The full differential harness on one device."""
    return (
        check_sweep_vectorized_vs_scalar(spec)
        + check_sweep2d_vectorized_vs_scalar(spec)
        + check_cached_vs_uncached(spec)
        + check_forest_parallel_vs_serial(spec)
        + check_traced_vs_untraced()
    )
