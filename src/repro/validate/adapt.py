"""Validation of the adaptive plane (deadline targets, ladder, chaos).

Three families of checks back ``repro-synergy validate --only adapt``:

- **Deadline semantics** on measured sweeps: a DEADLINE selection is
  never slower than the MAX_PERF plan, picks the minimum-energy feasible
  clock, degrades to the fastest clock when no clock is feasible, its
  energy is monotone in deadline slack, and ``SLA_SLACK(x)`` resolves
  exactly like ``DEADLINE(x × min time)``.
- **Ladder shape** on a transition log: severity strictly increases, the
  walk is contiguous from MODEL, and timestamps never run backwards.
- **Thermal-drift chaos acceptance**: under the seeded throttle windows
  the adaptive run misses zero deadlines while the stale static plan
  misses at least one, the ladder traverses every rung with at least one
  successful model refresh, at least half of the pre-drift energy saving
  is recovered, and a same-seed replay reproduces the drift-event and
  transition logs byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

import numpy as np

from repro.metrics.targets import (
    DEADLINE,
    DEADLINE_RTOL,
    SLA_SLACK,
    deadline_index,
)
from repro.validate.result import CheckResult, check

#: Deadline grid, in multiples of the sweep's fastest time. 0.8 is
#: infeasible by construction; the rest walk the feasible slack ladder.
DEADLINE_FACTORS: tuple[float, ...] = (0.8, 1.0, 1.05, 1.2, 1.5, 2.0, 5.0)

#: Slack factors for the SLA_SLACK/DEADLINE equivalence and ladder checks.
SLA_FACTORS: tuple[float, ...] = (1.0, 1.1, 1.35, 1.7, 2.5)

#: Ladder rung order for transition-log checks (kept as names so the
#: checks work on replayed JSON logs, not only live enum objects).
_RUNG_ORDER: dict[str, int] = {
    "MODEL": 0, "REFRESHED": 1, "STATIC": 2, "MAX_PERF": 3,
}


def check_deadline_semantics(sweep) -> list[CheckResult]:
    """DEADLINE/SLA_SLACK selection rules on one measured sweep."""
    results: list[CheckResult] = []
    ctx = f"{sweep.kernel_name}@{sweep.device_name}"
    times = np.asarray(sweep.time_s, dtype=float)
    energies = np.asarray(sweep.energy_j, dtype=float)
    t_min = float(np.min(times))
    picked_energies: list[float] = []
    for factor in DEADLINE_FACTORS:
        deadline = factor * t_min
        idx = deadline_index(times, energies, deadline)
        tolerant = deadline * (1.0 + DEADLINE_RTOL)
        feasible = np.flatnonzero(times <= tolerant)
        if feasible.size:
            results.append(
                check(
                    "adapt.deadline_met",
                    bool(times[idx] <= tolerant),
                    f"{ctx}: slack {factor:g}: picked {times[idx]:.6f}s "
                    f"vs deadline {deadline:.6f}s",
                )
            )
            results.append(
                check(
                    "adapt.deadline_min_energy",
                    bool(energies[idx] <= float(np.min(energies[feasible]))),
                    f"{ctx}: slack {factor:g}: picked {energies[idx]:.6f}J; "
                    f"feasible minimum {float(np.min(energies[feasible])):.6f}J",
                )
            )
        else:
            results.append(
                check(
                    "adapt.deadline_infeasible_max_perf",
                    idx == int(np.argmin(times)),
                    f"{ctx}: slack {factor:g} is infeasible; selection must "
                    "degrade to the fastest clock",
                )
            )
        # Never slower than the MAX_PERF plan, feasible or not.
        results.append(
            check(
                "adapt.deadline_never_slower_than_max_perf",
                bool(times[idx] <= max(tolerant, t_min * (1.0 + DEADLINE_RTOL))),
                f"{ctx}: slack {factor:g}: picked {times[idx]:.6f}s vs "
                f"fastest {t_min:.6f}s",
            )
        )
        picked_energies.append(float(energies[idx]))
    results.append(
        check(
            "adapt.deadline_energy_monotone",
            all(
                later <= earlier * (1.0 + DEADLINE_RTOL)
                for earlier, later in zip(picked_energies, picked_energies[1:])
            ),
            f"{ctx}: picked energies over loosening deadlines "
            f"{[round(e, 4) for e in picked_energies]}",
        )
    )
    sla_times: list[float] = []
    for factor in SLA_FACTORS:
        sla_idx = sweep.resolve(SLA_SLACK(factor))
        dl_idx = sweep.resolve(DEADLINE(factor * t_min))
        results.append(
            check(
                "adapt.sla_slack_equals_deadline",
                sla_idx == dl_idx,
                f"{ctx}: SLA_SLACK({factor:g}) -> {sla_idx}, "
                f"DEADLINE({factor:g}×tmin) -> {dl_idx}",
            )
        )
        sla_times.append(float(times[sla_idx]))
    results.append(
        check(
            "adapt.sla_ladder_within_slack",
            all(
                t <= factor * t_min * (1.0 + DEADLINE_RTOL)
                for factor, t in zip(SLA_FACTORS, sla_times)
            ),
            f"{ctx}: SLA times {[round(t, 6) for t in sla_times]} vs "
            f"slacks {list(SLA_FACTORS)} × {t_min:.6f}s",
        )
    )
    return results


def check_ladder_transitions(
    transitions: Sequence[Mapping[str, object]],
) -> list[CheckResult]:
    """Structural invariants of one JSON-form ladder transition log."""
    monotone = all(
        _RUNG_ORDER[str(t["to"])] > _RUNG_ORDER[str(t["from"])]
        for t in transitions
    )
    contiguous = all(
        str(b["from"]) == str(a["to"])
        for a, b in zip(transitions, transitions[1:])
    ) and (not transitions or str(transitions[0]["from"]) == "MODEL")
    ordered = all(
        float(b["t"]) >= float(a["t"])
        for a, b in zip(transitions, transitions[1:])
    )
    path = " -> ".join(
        [str(transitions[0]["from"])] + [str(t["to"]) for t in transitions]
    ) if transitions else "(empty)"
    return [
        check(
            "adapt.ladder_monotone_severity", monotone,
            f"every transition must escalate: {path}",
        ),
        check(
            "adapt.ladder_contiguous_from_model", contiguous,
            f"walk must start at MODEL and chain rung to rung: {path}",
        ),
        check(
            "adapt.ladder_times_ordered", ordered,
            "transition timestamps must be non-decreasing",
        ),
    ]


def check_thermal_drift(comparison) -> list[CheckResult]:
    """Acceptance invariants of one thermal-drift chaos comparison."""
    reached = {str(t["to"]) for t in comparison.transitions}
    return [
        check(
            "adapt.chaos_baselines_clean",
            comparison.max_perf.streams_missed == 0
            and comparison.static_clean.streams_missed == 0,
            f"max-perf missed {comparison.max_perf.streams_missed}, "
            f"static-clean missed {comparison.static_clean.streams_missed} "
            "(clean boards must meet every deadline)",
        ),
        check(
            "adapt.chaos_static_plan_goes_stale",
            comparison.static_fault.streams_missed >= 1,
            f"stale static plan missed "
            f"{comparison.static_fault.streams_missed} stream deadlines "
            "under throttle (needs >= 1)",
        ),
        check(
            "adapt.chaos_adaptive_misses_nothing",
            comparison.adaptive_fault.streams_missed == 0,
            f"adaptive run missed "
            f"{comparison.adaptive_fault.streams_missed} stream deadlines "
            "(must be 0)",
        ),
        check(
            "adapt.chaos_drift_detected",
            len(comparison.drift_events) >= 1,
            f"{len(comparison.drift_events)} drift events",
        ),
        check(
            "adapt.chaos_refresh_succeeded",
            comparison.refreshes >= 1,
            f"{comparison.refreshes} successful model refreshes",
        ),
        check(
            "adapt.chaos_full_ladder_traversal",
            {"REFRESHED", "STATIC", "MAX_PERF"} <= reached,
            f"rungs reached: {sorted(reached)}",
        ),
        check(
            "adapt.chaos_recovers_half_the_saving",
            comparison.recovery_fraction >= 0.5,
            f"recovered {comparison.recovery_fraction:.3f} of the "
            f"pre-drift saving ({comparison.adaptive_saving:.3f} of "
            f"{comparison.static_saving:.3f}; needs >= 0.5)",
        ),
    ]


def check_drift_replay(first, second) -> list[CheckResult]:
    """Same-seed chaos replays must reproduce the logs byte-for-byte."""

    def _render(comparison) -> tuple[str, str]:
        return (
            json.dumps(list(comparison.drift_events), sort_keys=True),
            json.dumps(list(comparison.transitions), sort_keys=True),
        )

    events1, trans1 = _render(first)
    events2, trans2 = _render(second)
    return [
        check(
            "adapt.drift_log_replay_identical",
            events1 == events2,
            f"{len(first.drift_events)} drift events replay byte-identically",
        ),
        check(
            "adapt.transition_log_replay_identical",
            trans1 == trans2,
            f"{len(first.transitions)} transitions replay byte-identically",
        ),
    ]


def run_adapt_checks(seed: int = 7) -> list[CheckResult]:
    """The full adaptive-plane check suite (runner ``adapt`` section)."""
    from repro.adapt.chaos import run_thermal_drift_comparison
    from repro.apps import get_benchmark
    from repro.experiments.sweep import sweep_kernel
    from repro.hw.specs import NVIDIA_V100

    results: list[CheckResult] = []
    for name in ("gemm", "sobel3"):
        sweep = sweep_kernel(NVIDIA_V100, get_benchmark(name).kernel)
        results.extend(check_deadline_semantics(sweep))
    first = run_thermal_drift_comparison(seed=seed)
    second = run_thermal_drift_comparison(seed=seed)
    results.extend(check_thermal_drift(first))
    results.extend(check_ladder_transitions(first.transitions))
    results.extend(check_drift_replay(first, second))
    return results
