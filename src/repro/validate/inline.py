"""Opt-in inline invariant checks (the ``validate=`` debug hook).

:class:`InlineValidator` is threaded through
:class:`~repro.core.queue.SynergyQueue` and
:meth:`~repro.slurm.cluster.Cluster.build` the same way a
:class:`~repro.obs.session.TraceSession` is: components store
``resolve_validator(validate)`` — either a live validator or the shared
no-op :data:`NULL_VALIDATOR` — and guard the (cheap) checks with
``if validator.enabled:`` so the uninstrumented fast paths pay one
attribute read and nothing else.

The inline checks are the subset of the invariant catalog that can be
evaluated per event without re-running anything: energy–power–time
consistency of each kernel record, clock membership in the device tables,
power staying under the active limit, and virtual-time monotonicity.
"""

from __future__ import annotations

import math

from repro.common.errors import ValidationError
from repro.validate.result import CheckResult, Severity


class InlineValidator:
    """Accumulates inline check failures; optionally raises on the spot.

    ``strict=True`` (the default) raises :class:`ValidationError` at the
    first violated invariant — the debugging posture, failing at the
    exact submission that broke physics. ``strict=False`` only records
    failures for later inspection via :attr:`failures`.
    """

    enabled: bool = True

    def __init__(self, *, strict: bool = True, rtol: float = 1e-6) -> None:
        self.strict = strict
        self.rtol = float(rtol)
        self.checks_run: int = 0
        self.failures: list[CheckResult] = []
        # Per-device high-water mark of event end times (virtual-time
        # monotonicity per hardware queue).
        self._last_end: dict[int, float] = {}

    def _record(self, name: str, condition: bool, detail: str = "") -> bool:
        self.checks_run += 1
        if condition:
            return True
        self.failures.append(
            CheckResult(name, False, detail, Severity.ERROR)
        )
        if self.strict:
            raise ValidationError(
                f"inline invariant violated: {name}: {detail}"
            )
        return False

    # ------------------------------------------------------------ queue side

    def check_kernel_event(self, gpu, event) -> None:
        """Validate one executed kernel's record against the device physics.

        Called from ``SynergyQueue._post_kernel`` when enabled. ``gpu`` is
        the :class:`~repro.hw.device.SimulatedGPU` the event ran on.
        """
        record = event.record
        if record is None:
            return
        tol = self.rtol
        self._record(
            "inline.event_window",
            0.0 <= event.start_s <= event.end_s,
            f"event window [{event.start_s!r}, {event.end_s!r}] out of order",
        )
        self._record(
            "inline.kernel_time_positive",
            record.time_s > 0.0 and math.isfinite(record.time_s),
            f"kernel {record.kernel_name!r} has non-positive time "
            f"{record.time_s!r}",
        )
        self._record(
            "inline.kernel_energy_positive",
            record.energy_j > 0.0 and math.isfinite(record.energy_j),
            f"kernel {record.kernel_name!r} has non-positive energy "
            f"{record.energy_j!r}",
        )
        # Energy–power–time consistency: e = P̄·t within tolerance.
        expected = record.avg_power_w * record.time_s
        scale = max(abs(expected), abs(record.energy_j), 1e-12)
        self._record(
            "inline.energy_power_time",
            abs(record.energy_j - expected) <= tol * scale,
            f"kernel {record.kernel_name!r}: energy {record.energy_j!r} J != "
            f"avg_power*time {expected!r} J",
        )
        spec = gpu.spec
        self._record(
            "inline.core_clock_in_table",
            record.core_mhz in spec.core_freqs_mhz,
            f"kernel {record.kernel_name!r} ran at core clock "
            f"{record.core_mhz} MHz, not in the {spec.name} table",
        )
        self._record(
            "inline.mem_clock_in_table",
            record.mem_mhz in spec.mem_freqs_mhz,
            f"kernel {record.kernel_name!r} ran at memory clock "
            f"{record.mem_mhz} MHz, not in the {spec.name} table",
        )
        self._record(
            "inline.power_under_limit",
            record.avg_power_w <= gpu.power_limit_w * (1.0 + tol),
            f"kernel {record.kernel_name!r} averaged {record.avg_power_w!r} W "
            f"above the active limit {gpu.power_limit_w!r} W",
        )
        last = self._last_end.get(gpu.index, 0.0)
        if self._record(
            "inline.monotone_event_clock",
            event.end_s >= last,
            f"event on gpu{gpu.index} ends at {event.end_s!r} s, before the "
            f"previous event's end {last!r} s",
        ):
            self._last_end[gpu.index] = event.end_s

    # ---------------------------------------------------------- cluster side

    def check_cluster(self, cluster) -> None:
        """Validate a freshly provisioned cluster's production posture.

        Called from ``Cluster.build`` when enabled: unique board indices,
        API restriction armed on every board, clocks at driver defaults,
        and every board clock aligned with the cluster wall clock.
        """
        indices = [g.index for node in cluster.nodes for g in node.gpus]
        self._record(
            "inline.unique_board_indices",
            len(set(indices)) == len(indices),
            f"duplicate board indices in cluster: {sorted(indices)}",
        )
        for node in cluster.nodes:
            for gpu in node.gpus:
                board = f"{node.name}/gpu{gpu.index}"
                self._record(
                    "inline.api_restricted",
                    gpu.api_restricted,
                    f"{board} provisioned without API restriction",
                )
                self._record(
                    "inline.default_clocks",
                    gpu.core_mhz == gpu.spec.default_core_mhz
                    and gpu.mem_mhz == gpu.spec.default_mem_mhz,
                    f"{board} provisioned at ({gpu.mem_mhz}, {gpu.core_mhz}) "
                    "MHz, not driver defaults",
                )
                self._record(
                    "inline.board_clock_aligned",
                    gpu.clock.now == cluster.clock.now,
                    f"{board} clock at {gpu.clock.now!r} s, cluster at "
                    f"{cluster.clock.now!r} s",
                )


    # -------------------------------------------------------------- mpi side

    def check_rank_binding(self, comm, context) -> None:
        """Validate an MPI communicator's rank→board binding at launch.

        Called from :func:`repro.mpi.launcher.launch_ranks` when the job
        context carries an enabled validator: one rank per bound board,
        node-major ordering, no board bound twice, and every rank's board
        actually living on the node it is bound to.
        """
        self._record(
            "inline.rank_per_board",
            len(comm.gpus) == len(comm.node_of_rank) == comm.size,
            f"{comm.size} ranks but {len(comm.gpus)} boards / "
            f"{len(comm.node_of_rank)} node bindings",
        )
        self._record(
            "inline.node_major_binding",
            all(
                a <= b
                for a, b in zip(comm.node_of_rank, comm.node_of_rank[1:])
            ),
            f"rank→node map {comm.node_of_rank} is not node-major",
        )
        self._record(
            "inline.boards_bound_once",
            len({id(g) for g in comm.gpus}) == len(comm.gpus),
            "a board is bound to more than one rank",
        )
        self._record(
            "inline.rank_on_allocated_node",
            all(
                0 <= n < len(context.nodes)
                and any(g is gpu for g in context.nodes[n].gpus)
                for gpu, n in zip(comm.gpus, comm.node_of_rank)
            ),
            "a rank is bound to a board outside its node's allocation",
        )


class _NullValidator(InlineValidator):
    """The default: every check is a no-op behind ``enabled = False``."""

    enabled = False

    def check_kernel_event(self, gpu, event) -> None:  # pragma: no cover
        pass

    def check_cluster(self, cluster) -> None:  # pragma: no cover
        pass

    def check_rank_binding(self, comm, context) -> None:  # pragma: no cover
        pass


#: Shared "validation off" instance installed everywhere by default.
NULL_VALIDATOR = _NullValidator()


def resolve_validator(
    validate: "InlineValidator | bool | None",
) -> InlineValidator:
    """Map a component's ``validate`` argument to a validator.

    ``None``/``False`` → the shared no-op; ``True`` → a fresh strict
    validator; an :class:`InlineValidator` → that instance.
    """
    if isinstance(validate, InlineValidator):
        return validate
    if validate:
        return InlineValidator()
    return NULL_VALIDATOR
