"""Differential validation of the §6.1 front end (extracted vs declared).

The front end's contract is that static analysis of a kernel's device-
Python source reproduces the hand-declared Table-1 model *exactly* —
counts, feature vectors and, downstream, every compiled frequency. These
checks enforce the full chain:

- every source-backed kernel extracts with zero diagnostics,
- its extracted mix equals the mix the app layer carries, class by class,
- ``extract_features`` vectors (with the locality discount) are identical,
- a :class:`FrequencyPlan` compiled from front-end-built kernels is entry-
  for-entry identical to one compiled from hand-declared kernels,
- unpinned streaming kernels' stride/reuse *estimate* matches the declared
  locality (the pinned ones are covered by the plan identity),
- the diagnostics engine still rejects an out-of-subset kernel with a
  located finding (the ``analyze`` exit-code contract).
"""

from __future__ import annotations

from repro.hw.specs import NVIDIA_V100, GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.validate.result import CheckResult, check

#: Backed kernels whose declared locality is the *estimator's own* output
#: (no ``@device_kernel(locality=...)`` pin).
UNPINNED_STREAMING: tuple[str, ...] = ("vec_add", "dram", "sf", "arith")


def _backed_app_kernels() -> list[KernelIR]:
    """Every app-layer kernel that has a source-backed implementation."""
    from repro.apps import CloverLeaf, MiniWeather, get_benchmark
    from repro.frontend.kernels import KERNELS

    kernels: list[KernelIR] = []
    seen: set[str] = set()
    for name in KERNELS:
        try:
            kernels.append(get_benchmark(name).kernel)
            seen.add(name)
        except Exception:
            pass
    for app in (MiniWeather(), CloverLeaf()):
        for kernel in app.timestep_kernels():
            if kernel.name in KERNELS and kernel.name not in seen:
                kernels.append(kernel)
                seen.add(kernel.name)
    return kernels


def check_extraction_matches_declared() -> list[CheckResult]:
    """Source-extracted mixes equal the app-declared mixes exactly."""
    from repro.frontend.kernels import KERNELS

    results = []
    for declared in _backed_app_kernels():
        dk = KERNELS[declared.name]
        results.append(
            check(
                "frontend.diagnostics_clean",
                not dk.diagnostics,
                f"{declared.name}: {len(dk.diagnostics)} diagnostics",
            )
        )
        got, want = dk.mix.as_dict(), declared.mix.as_dict()
        diff = {k: (got[k], want[k]) for k in want if got[k] != want[k]}
        results.append(
            check(
                "frontend.extracted_vs_declared_mix",
                not diff,
                f"{declared.name}: exact Table-1 equality"
                + (f" violated: {diff}" if diff else ""),
            )
        )
    return results


def check_feature_vectors_identical() -> list[CheckResult]:
    """``extract_features`` (locality discount included) is identical."""
    from repro.frontend.kernels import KERNELS
    from repro.kernelir.features import extract_features

    results = []
    for declared in _backed_app_kernels():
        rebuilt = KERNELS[declared.name].kernel_ir(
            work_items=declared.work_items
        )
        same = tuple(extract_features(rebuilt)) == tuple(
            extract_features(declared)
        )
        results.append(
            check(
                "frontend.feature_vector_identity",
                same,
                f"{declared.name}: feature vectors "
                + ("identical" if same else "diverge"),
            )
        )
    return results


def check_plan_identity(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Frequency plans from extracted and declared kernels are identical."""
    from repro.core.compiler import SynergyCompiler
    from repro.frontend.kernels import KERNELS
    from repro.experiments.training import make_bundle, microbench_training_set
    from repro.metrics.targets import ES_50, MIN_EDP

    declared = _backed_app_kernels()
    rebuilt = [
        KERNELS[k.name].kernel_ir(work_items=k.work_items) for k in declared
    ]
    # Hand-build the declared side so the comparison is end-to-end even if
    # the app layer ever stops routing through the front end.
    baseline = [
        KernelIR(name=k.name, mix=k.mix, work_items=k.work_items,
                 word_bytes=k.word_bytes, locality=k.locality)
        for k in declared
    ]
    training = microbench_training_set(spec, freq_stride=24, random_count=2)
    compiler = SynergyCompiler(make_bundle("Linear", seed=7).fit(training), spec)
    targets = (MIN_EDP, ES_50)
    plan_a = compiler.compile(baseline, targets).plan
    plan_b = compiler.compile(rebuilt, targets).plan
    same = dict(plan_a.entries) == dict(plan_b.entries)
    detail = (
        f"{len(dict(plan_a.entries))} entries identical on {spec.name}"
        if same
        else "plans diverge: "
        + str({
            k: (dict(plan_a.entries).get(k), dict(plan_b.entries).get(k))
            for k in set(plan_a.entries) | set(plan_b.entries)
            if dict(plan_a.entries).get(k) != dict(plan_b.entries).get(k)
        })
    )
    return [check("frontend.plan_identity", same, detail)]


def check_locality_estimator() -> list[CheckResult]:
    """Unpinned kernels: the reuse estimate *is* the declared locality."""
    from repro.apps import get_benchmark
    from repro.frontend.kernels import KERNELS

    results = []
    for name in UNPINNED_STREAMING:
        dk = KERNELS[name]
        declared = get_benchmark(name).kernel.locality
        ok = (
            dk.pinned_locality is None
            and dk.locality_estimate.value == declared
        )
        results.append(
            check(
                "frontend.locality_estimator",
                ok,
                f"{name}: estimate {dk.locality_estimate.value!r} vs "
                f"declared {declared!r} (pin={dk.pinned_locality!r})",
            )
        )
    return results


def check_diagnostics_engine() -> list[CheckResult]:
    """An out-of-subset kernel must produce a located diagnostic."""
    from repro.frontend import analyze_source
    from repro.frontend.diagnostics import UNSUPPORTED_STATEMENT

    src = (
        "def runaway(gid, a):\n"
        "    while a[gid] > 0.0:\n"
        "        a[gid] = a[gid] - 1.0\n"
    )
    analysis = analyze_source(src)
    located = [
        d for d in analysis.diagnostics
        if d.code == UNSUPPORTED_STATEMENT and d.line == 2
    ]
    return [
        check(
            "frontend.diagnostics_engine",
            bool(located),
            f"dynamic-bound loop reported {len(analysis.diagnostics)} "
            f"diagnostics (expected {UNSUPPORTED_STATEMENT} at line 2)",
        )
    ]


def run_frontend_checks(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """The full extracted-vs-declared differential section."""
    return (
        check_extraction_matches_declared()
        + check_feature_vectors_identical()
        + check_plan_identity(spec)
        + check_locality_estimator()
        + check_diagnostics_engine()
    )
