"""Validation of the static-analysis plane (``repro.analysis``).

Three families of checks:

- **kernel cleanliness** — every ``@device_kernel`` in the front-end bank
  lowers without diagnostics *and* passes the FE011–FE013 race/bounds
  pass; the footprint solver must also still flag a seeded racy kernel
  (the pass is not vacuously quiet).
- **scenario certificates** — each golden scenario's static
  makespan/energy intervals bracket the replayed run
  (:mod:`repro.analysis.scenarios`), the weak-scaling graph certificate
  brackets the vectorized engine, the command-graph audit is clean and
  the global SLA bound is proved.
- **DEADLINE demo** — the plan certifier proves a generous deadline and
  refutes an impossible one, naming a witness kernel.
"""

from __future__ import annotations

from repro.validate.result import CheckResult, check

#: A deliberately racy kernel: every work item writes element 0.
_RACY_SRC = """
def racy(gid, out):
    out[0] = gid
"""


def check_kernel_bank_clean() -> list[CheckResult]:
    """The §6.1 kernel bank must be race/bounds-clean; the pass must not be."""
    from repro.frontend import kernels as bank
    from repro.frontend.decorator import DeviceKernel, analyze_source

    device_kernels = [
        obj for obj in vars(bank).values() if isinstance(obj, DeviceKernel)
    ]
    dirty = sorted(
        k.name for k in device_kernels if not k.analysis.clean
    )
    results = [
        check(
            "analysis.kernel_bank_clean",
            len(device_kernels) > 0 and not dirty,
            f"{len(device_kernels)} device kernels; findings in {dirty}"
            if dirty
            else f"{len(device_kernels)} device kernels, all clean",
        )
    ]
    racy = analyze_source(_RACY_SRC)
    results.append(
        check(
            "analysis.race_pass_not_vacuous",
            any(d.code == "FE011" for d in racy.races),
            "the seeded write/write race must produce FE011; got "
            f"{[d.code for d in racy.races]}",
        )
    )
    return results


def check_scenario_certificates(seed: int) -> list[CheckResult]:
    """Every golden-scenario certificate must bracket its measured run."""
    from repro.analysis.scenarios import certify_scenarios

    results: list[CheckResult] = []
    for name, cert in certify_scenarios(seed=seed).items():
        for bracket in cert.checks:
            results.append(
                check(
                    f"analysis.{name}.{bracket.quantity}",
                    bracket.ok,
                    bracket.format(),
                )
            )
        for label, ok in cert.assertions:
            results.append(check(f"analysis.{name}.assert", ok, label))
    return results


def check_deadline_demo(seed: int) -> list[CheckResult]:
    """Prove the feasible DEADLINE plan, refute the impossible one."""
    from repro.analysis.scenarios import deadline_demo

    cert_ok, cert_bad = deadline_demo(seed=seed)
    return [
        check(
            "analysis.deadline_feasible",
            cert_ok.feasible and cert_ok.witness is None,
            f"violations={list(cert_ok.violations)}",
        ),
        check(
            "analysis.deadline_refuted",
            not cert_bad.feasible and cert_bad.witness is not None,
            f"witness={cert_bad.witness!r}: "
            + (cert_bad.violations[0] if cert_bad.violations else "none"),
        ),
        check(
            "analysis.deadline_witness_named",
            bool(cert_bad.witness)
            and any(
                f"witness kernel {cert_bad.witness!r}" in v
                for v in cert_bad.violations
            ),
            "the refutation message must name the witness kernel",
        ),
    ]


def run_analysis_checks(seed: int = 7) -> list[CheckResult]:
    """The full static-analysis harness."""
    return (
        check_kernel_bank_clean()
        + check_scenario_certificates(seed)
        + check_deadline_demo(seed)
    )
