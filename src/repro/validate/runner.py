"""The validation driver behind ``repro-synergy validate``.

Runs the invariant catalog and the differential harness over the golden
scenarios and a fixed seeded case mix, producing one
:class:`~repro.validate.result.ValidationReport`. Sections can be selected
individually (``only=``) so CI smoke runs stay cheap; the default runs
everything, which is what the ``--strict`` gate in ``scripts/check.sh``
executes.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.hw.specs import AMD_MI100, NVIDIA_V100, GPUSpec
from repro.validate.invariants import (
    check_metrics_sanity,
    check_powercap_audit_roundtrip,
    check_powercap_conservation,
    check_sweep,
    check_trace_monotonicity,
)
from repro.validate.result import ValidationReport

#: The seeded golden scenarios of the observability plane.
GOLDEN_SCENARIOS: tuple[str, ...] = (
    "single-gpu", "slurm-faults", "thermal-drift", "multi-tenant",
)

#: Kernel/device grid the sweep invariants run over: the golden-scenario
#: kernels plus the Fig. 4 and Fig. 2 protagonists.
SWEEP_KERNEL_NAMES: tuple[str, ...] = (
    "gemm", "sobel3", "median", "black_scholes", "lin_reg_coeff",
)
SWEEP_SPECS: tuple[GPUSpec, ...] = (NVIDIA_V100, AMD_MI100)

#: Selectable report sections.
SECTIONS: tuple[str, ...] = (
    "sweeps", "powercap", "scenarios", "differential", "frontend", "adapt",
    "engine", "service", "distributed", "analysis",
)


def _sweep_section(report: ValidationReport) -> None:
    from repro.apps import get_benchmark
    from repro.core.sweepcache import scoped_cache
    from repro.experiments.sweep import sweep_kernel

    with scoped_cache():
        for spec in SWEEP_SPECS:
            for name in SWEEP_KERNEL_NAMES:
                sweep = sweep_kernel(spec, get_benchmark(name).kernel)
                report.extend(check_sweep(sweep, spec))


def _powercap_section(report: ValidationReport, seed: int) -> None:
    # Hand-picked regimes first: the all-under case (the silently dropped
    # donation) and the hard-clipping case (the discarded remainder) are
    # exactly the two §2.3 bugs this plane was built to catch.
    report.extend(
        check_powercap_conservation(
            [250.0, 250.0, 250.0], [60.0, 70.0, 80.0], 80.0, 300.0,
            context="powercap[all-under]",
        )
    )
    report.extend(
        check_powercap_conservation(
            [200.0, 200.0, 200.0], [10.0, 20.0, 199.0], 50.0, 210.0,
            context="powercap[ceiling-clip]",
        )
    )
    rng = make_rng(seed)
    for case in range(6):
        n = int(rng.integers(2, 9))
        floor = float(rng.uniform(40.0, 120.0))
        ceiling = floor + float(rng.uniform(50.0, 400.0))
        caps = [float(rng.uniform(floor, ceiling)) for _ in range(n)]
        usage = [float(rng.uniform(0.0, c * 1.1)) for c in caps]
        report.extend(
            check_powercap_conservation(
                caps, usage, floor, ceiling, context=f"powercap[seeded#{case}]"
            )
        )
    # Budget high enough that the per-GPU split exceeds the board's factory
    # limit: the clamp engages, which is what the audit check is about.
    report.extend(
        check_powercap_audit_roundtrip(NVIDIA_V100, node_budget_w=10_000.0)
    )
    report.extend(
        check_powercap_audit_roundtrip(NVIDIA_V100, node_budget_w=320.0)
    )


def _scenario_section(
    report: ValidationReport, scenarios: tuple[str, ...], seed: int
) -> None:
    from repro.obs.scenarios import run_scenario

    for name in scenarios:
        session = run_scenario(name, seed=seed)
        report.extend(check_trace_monotonicity(session, context=name))
        report.extend(check_metrics_sanity(session, context=name))


def _differential_section(report: ValidationReport) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.differential import run_differential_checks

    with scoped_cache():
        report.extend(run_differential_checks(NVIDIA_V100))


def _frontend_section(report: ValidationReport) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.frontend import run_frontend_checks

    with scoped_cache():
        report.extend(run_frontend_checks(NVIDIA_V100))


def _engine_section(report: ValidationReport) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.engine import run_engine_checks

    with scoped_cache():
        report.extend(run_engine_checks(NVIDIA_V100))


def _service_section(report: ValidationReport, seed: int) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.service import run_service_checks

    with scoped_cache():
        report.extend(run_service_checks(seed))


def _distributed_section(report: ValidationReport) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.distributed import run_distributed_checks

    with scoped_cache():
        report.extend(run_distributed_checks())


def _analysis_section(report: ValidationReport, seed: int) -> None:
    from repro.validate.analysis import run_analysis_checks

    # No scoped_cache here: each certifier scopes its own cache so the
    # static and measured sides of one scenario share a warm scope.
    report.extend(run_analysis_checks(seed))


def _adapt_section(report: ValidationReport, seed: int) -> None:
    from repro.core.sweepcache import scoped_cache
    from repro.validate.adapt import run_adapt_checks

    with scoped_cache():
        report.extend(run_adapt_checks(seed))


def run_validation(
    scenarios: tuple[str, ...] | list[str] = GOLDEN_SCENARIOS,
    *,
    seed: int = 7,
    only: tuple[str, ...] | list[str] | None = None,
) -> ValidationReport:
    """Run the validation plane and return its report.

    ``scenarios`` selects which golden scenarios the trace checks replay;
    ``only`` restricts the run to a subset of :data:`SECTIONS`. The
    strict/non-strict verdict is the caller's call via
    :meth:`ValidationReport.ok`.
    """
    sections = tuple(only) if only else SECTIONS
    unknown = set(sections) - set(SECTIONS)
    if unknown:
        raise ConfigurationError(
            f"unknown validation sections {sorted(unknown)}; known: "
            f"{list(SECTIONS)}"
        )
    report = ValidationReport()
    if "sweeps" in sections:
        _sweep_section(report)
    if "powercap" in sections:
        _powercap_section(report, seed)
    if "scenarios" in sections:
        _scenario_section(report, tuple(scenarios), seed)
    if "differential" in sections:
        _differential_section(report)
    if "frontend" in sections:
        _frontend_section(report)
    if "adapt" in sections:
        _adapt_section(report, seed)
    if "engine" in sections:
        _engine_section(report)
    if "service" in sections:
        _service_section(report, seed)
    if "distributed" in sections:
        _distributed_section(report)
    if "analysis" in sections:
        _analysis_section(report, seed)
    return report
