"""Service-plane tenancy invariants (``validate --only service``).

One quick-mode seeded session (8 tenants × 2k submissions over 4
partitions) is run twice and audited from three independent angles:

- **replay byte-identity** — two same-seed sessions must serialize
  byte-identical job stores, and a save/load roundtrip must preserve the
  canonical bytes (the persistence analogue of the golden-trace
  contract),
- **log audit** — :func:`~repro.service.store.fold_events` re-derives
  per-tenant admission state from the raw event stream alone; it must
  agree with the live plane's bookkeeping (quota conservation, admission
  soundness, drain accounting, energy attribution),
- **scheduling semantics** — priority non-starvation (every admitted
  submission drains; nothing stays pending after the final cycle),
  priority ordering of batches within each (shard, cycle), and
  non-negative scheduling latencies.
"""

from __future__ import annotations

import math

from repro.validate.result import CheckResult, check

#: Quick-mode session the checks run over (matches the CI smoke config).
QUICK = dict(n_tenants=8, n_submissions=2_000, n_partitions=4, n_cycles=8)


def run_service_checks(seed: int = 7) -> list[CheckResult]:
    """Audit the service plane; caller manages the sweep cache."""
    import tempfile
    from pathlib import Path

    from repro.service.loadgen import run_service_session
    from repro.service.store import JobStore, fold_events

    results: list[CheckResult] = []

    first = run_service_session(seed=seed, **QUICK)
    second = run_service_session(seed=seed, **QUICK)

    # ------------------------------------------------------ replay identity
    a, b = first.store.canonical_bytes(), second.store.canonical_bytes()
    results.append(
        check(
            "service.replay_byte_identity",
            a == b,
            f"{len(first.store)} events, {len(a)} bytes vs {len(b)}",
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store.json"
        first.store.save(path)
        results.append(
            check(
                "service.store_roundtrip",
                JobStore.load(path).canonical_bytes() == a,
                f"saved+reloaded {len(first.store)} events",
            )
        )

    # ----------------------------------------------------------- log audit
    try:
        folded = fold_events(first.store.events)
        results.append(
            check(
                "service.log_admission_sound",
                True,
                "fold accepted every admit/drain against quota",
            )
        )
    except Exception as exc:
        results.append(
            check("service.log_admission_sound", False, f"{exc}")
        )
        folded = {}

    rows = {r["tenant"]: r for r in first.report()["tenants"]}
    results.append(
        check(
            "service.log_covers_tenants",
            set(folded) == set(rows),
            f"{len(folded)} logged vs {len(rows)} registered",
        )
    )
    quota_ok, energy_ok, drain_ok = True, True, True
    detail = ""
    for name, st in folded.items():
        row = rows[name]
        if st["pending"] != row["pending"] or st["admitted"] != row["admitted"]:
            quota_ok = False
            detail = f"{name}: fold {st['pending']}/{st['admitted']} vs plane "
            detail += f"{row['pending']}/{row['admitted']}"
        if st["drained"] != row["drained"] or st["rejected"] != row["rejected"]:
            drain_ok = False
        if not math.isclose(
            st["energy_j"], row["energy_j"], rel_tol=1e-12, abs_tol=1e-12
        ):
            energy_ok = False
    results.append(
        check(
            "service.quota_conservation",
            quota_ok,
            detail or "fold pending/admitted match the plane for every tenant",
        )
    )
    results.append(
        check(
            "service.drain_accounting",
            drain_ok,
            "fold drained/rejected match the plane for every tenant",
        )
    )
    results.append(
        check(
            "service.energy_attribution",
            energy_ok,
            "fold per-tenant energy matches the plane (rel 1e-12)",
        )
    )

    # -------------------------------------------------- scheduling semantics
    results.append(
        check(
            "service.non_starvation",
            all(r["pending"] == 0 for r in rows.values())
            and all(
                r["drained"] == r["admitted"] for r in rows.values()
            ),
            "every admitted submission drained; no pending work remains",
        )
    )
    priorities = {
        e["tenant"]: e["priority"] for e in first.store.select("tenant")
    }
    order_ok = True
    seen: dict[tuple[int, int], int] = {}
    for e in first.store.select("batch"):
        key = (e["shard"], e["cycle"])
        band = priorities[e["tenant"]]
        if key in seen and band < seen[key]:
            order_ok = False
        seen[key] = max(band, seen.get(key, band))
    results.append(
        check(
            "service.priority_order",
            order_ok,
            "within each (shard, cycle), batches drain in priority-band order",
        )
    )
    latencies = [
        x for r in rows.values()
        for x in (r["p50_latency_s"], r["p99_latency_s"])
        if x is not None
    ]
    results.append(
        check(
            "service.latency_sane",
            all(x >= 0.0 and math.isfinite(x) for x in latencies),
            f"{len(latencies)} per-tenant percentile values, all finite >= 0",
        )
    )
    reasons = {e["reason"] for e in first.store.select("reject")}
    results.append(
        check(
            "service.rejections_exercised",
            {"quota_exceeded", "energy_budget_exhausted"} <= reasons,
            f"reject reasons seen: {sorted(reasons)}",
        )
    )
    return results
