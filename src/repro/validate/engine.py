"""Differential validation of the batched virtual-time engine.

The scalar per-event path (``SynergyQueue.submit`` / ``Scheduler.submit``)
is the reference semantics; the batched engine
(:mod:`repro.engine`) must reproduce it exactly. Every check here runs
the same seeded workload through both paths on twin devices/clusters and
asserts the engine differential contract:

- **identical plans**: resolved clock pairs, effective-switch decisions
  and throttled operating points are equal as integers, and the boards'
  clock-change histories carry the same values,
- **equal physics**: start/end times, energies and powers agree bitwise
  or within rel 1e-12 (:data:`SCALAR_PATH_RTOL` — the vectorized sweep
  and scalar ``execute`` differ by ~1 ulp in ``pow``),
- **identical aggregates**: scaler counters, queue summaries, job states
  and traced metric counters match.

Zero-kernel and zero-job batches are checked to be well-formed no-ops.
"""

from __future__ import annotations

from repro.hw.specs import NVIDIA_V100, GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.validate.differential import SCALAR_PATH_RTOL, _arrays_equal
from repro.validate.result import CheckResult, check

#: Kernel mix for the engine differentials: compute-bound, memory-bound
#: and balanced members of the §8 suite (same trio the perf-plane
#: differentials use).
ENGINE_KERNEL_NAMES: tuple[str, ...] = ("gemm", "sobel3", "median")


def _kernels(names: tuple[str, ...] = ENGINE_KERNEL_NAMES) -> list[KernelIR]:
    from repro.apps import get_benchmark

    return [get_benchmark(name).kernel for name in names]


def _targets():
    from repro.metrics.targets import (
        DEADLINE,
        MAX_PERF,
        MIN_EDP,
        MIN_ENERGY,
        SLA_SLACK,
    )

    return [MIN_EDP, MAX_PERF, MIN_ENERGY, DEADLINE(0.05), SLA_SLACK(1.3)]


def _workload(spec: GPUSpec, kernels: list[KernelIR], rounds: int = 3) -> list:
    """A deterministic mixed request stream covering every submit form."""
    targets = _targets()
    requests: list = []
    for r in range(rounds):
        for i, kernel in enumerate(kernels):
            requests.append((targets[(r + i) % len(targets)], kernel))
            if (r + i) % 3 == 0:
                requests.append(kernel)  # request-free: inherit clocks
            if (r + i) % 3 == 1:
                requests.append(
                    (
                        spec.default_mem_mhz,
                        spec.core_freqs_mhz[(7 * (r + i + 1)) % len(spec.core_freqs_mhz)],
                        kernel,
                    )
                )
    return requests


def _run_scalar(queue, requests) -> None:
    from repro.metrics.targets import EnergyTarget

    for item in requests:
        if isinstance(item, KernelIR):
            queue.submit(lambda h, k=item: h.parallel_for(k.work_items, k))
        elif isinstance(item[0], EnergyTarget):
            target, kernel = item
            queue.submit(
                target, lambda h, k=kernel: h.parallel_for(k.work_items, k)
            )
        else:
            mem, core, kernel = item
            queue.submit(
                mem, core, lambda h, k=kernel: h.parallel_for(k.work_items, k)
            )
    queue.wait()


def _twin_queues(spec: GPUSpec, plan, trace_pair=(None, None), power_limit_w=None):
    from repro.core.queue import SynergyQueue
    from repro.hw.device import SimulatedGPU

    queues = []
    for trace in trace_pair:
        gpu = SimulatedGPU(spec, index=0)
        if power_limit_w is not None:
            gpu.set_power_limit(power_limit_w, privileged=True)
        queues.append(SynergyQueue(gpu, plan=plan, trace=trace))
    return queues


def _record_checks(name: str, context: str, scalar_gpu, batched_gpu) -> list[CheckResult]:
    """Record-level parity: plans exact, physics within the rel contract."""
    r1, r2 = scalar_gpu.records, batched_gpu.records
    results = [
        check(
            f"{name}_record_count",
            len(r1) == len(r2),
            f"{context}: {len(r1)} vs {len(r2)} records",
        )
    ]
    if len(r1) != len(r2):
        return results
    results.append(
        _arrays_equal(
            f"{name}_clock_plans",
            context,
            ([r.core_mhz for r in r1], [r.core_mhz for r in r2]),
            ([r.mem_mhz for r in r1], [r.mem_mhz for r in r2]),
            ([h for h in scalar_gpu._clock_values],
             [h for h in batched_gpu._clock_values]),
        )
    )
    results.append(
        _arrays_equal(
            f"{name}_physics",
            context,
            ([r.start_s for r in r1], [r.start_s for r in r2]),
            ([r.end_s for r in r1], [r.end_s for r in r2]),
            ([r.energy_j for r in r1], [r.energy_j for r in r2]),
            ([r.avg_power_w for r in r1], [r.avg_power_w for r in r2]),
            (scalar_gpu._clock_times, batched_gpu._clock_times),
            rtol=SCALAR_PATH_RTOL,
        )
    )
    s1, s2 = scalar_gpu, batched_gpu
    results.append(
        check(
            f"{name}_board_state",
            (s1.core_mhz, s1.mem_mhz) == (s2.core_mhz, s2.mem_mhz)
            and s1.clock_set_calls == s2.clock_set_calls,
            f"{context}: clocks {s1.core_mhz}/{s1.mem_mhz} vs "
            f"{s2.core_mhz}/{s2.mem_mhz}, set calls "
            f"{s1.clock_set_calls} vs {s2.clock_set_calls}",
        )
    )
    return results


def check_queue_batched_vs_scalar(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Mixed-form batch vs the per-event loop on twin boards."""
    from repro.engine.payload import plan_from_sweeps

    kernels = _kernels()
    plan = plan_from_sweeps(spec, kernels, _targets())
    requests = _workload(spec, kernels)
    scalar_q, batched_q = _twin_queues(spec, plan)
    _run_scalar(scalar_q, requests)
    result = batched_q.submit_batch(requests)
    batched_q.wait()

    context = f"{len(requests)} mixed submissions@{spec.name}"
    results = _record_checks("engine.queue", context, scalar_q.gpu, batched_q.gpu)
    results.append(
        check(
            "engine.fast_path_used",
            result.fallback is None,
            f"{context}: batch unexpectedly fell back ({result.fallback!r})",
        )
    )
    sc1, sc2 = scalar_q.scaler, batched_q.scaler
    results.append(
        check(
            "engine.scaler_counters",
            sc1.switch_count == sc2.switch_count
            and sc1.total_overhead_s == sc2.total_overhead_s,
            f"{context}: switches {sc1.switch_count} vs {sc2.switch_count}, "
            f"overhead {sc1.total_overhead_s!r} vs {sc2.total_overhead_s!r} s",
        )
    )
    s1, s2 = scalar_q.summary(), batched_q.summary()
    results.append(
        _arrays_equal(
            "engine.queue_summary",
            context,
            ([s1[k] for k in sorted(s1)], [s2[k] for k in sorted(s2)]),
            rtol=SCALAR_PATH_RTOL,
        )
    )
    e1 = scalar_q.gpu.energy_between(0.0, scalar_q.gpu.clock.now)
    e2 = batched_q.gpu.energy_between(0.0, batched_q.gpu.clock.now)
    results.append(
        _arrays_equal(
            "engine.device_energy", context, ([e1], [e2]), rtol=SCALAR_PATH_RTOL
        )
    )
    return results


def check_throttled_batch(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Power-capped boards must throttle identically on both paths."""
    from repro.hw.device import SimulatedGPU

    kernels = _kernels()
    peak = SimulatedGPU(spec, index=0).default_power_limit_w
    # A limit comfortably between idle and peak (and far from any modeled
    # operating point) so the throttle scan engages without 1-ulp
    # boundary ambiguity between the scalar and vectorized power columns.
    limit = spec.idle_power_w + 0.55 * (peak - spec.idle_power_w)
    requests: list = []
    for i, kernel in enumerate(kernels * 3):
        requests.append(
            (
                spec.default_mem_mhz,
                spec.core_freqs_mhz[-(1 + (i % 5))],
                kernel,
            )
        )
    scalar_q, batched_q = _twin_queues(spec, None, power_limit_w=limit)
    _run_scalar(scalar_q, requests)
    result = batched_q.submit_batch(requests)
    batched_q.wait()
    context = f"power limit {limit:.0f} W@{spec.name}"
    results = _record_checks("engine.throttle", context, scalar_q.gpu, batched_q.gpu)
    throttled = sum(
        r.core_mhz != spec.core_freqs_mhz[-(1 + (i % 5))]
        for i, r in enumerate(scalar_q.gpu.records)
    )
    results.append(
        check(
            "engine.throttle_engaged",
            throttled > 0 and result.fallback is None,
            f"{context}: {throttled} throttled kernels (want > 0), "
            f"fallback={result.fallback!r}",
        )
    )
    return results


def check_empty_batches(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Zero-kernel and zero-job batches are well-formed no-ops."""
    from repro.core.queue import SynergyQueue
    from repro.hw.device import SimulatedGPU
    from repro.obs.session import TraceSession
    from repro.slurm.cluster import Cluster
    from repro.slurm.scheduler import Scheduler

    trace = TraceSession()
    gpu = SimulatedGPU(spec, index=0)
    queue = SynergyQueue(gpu, trace=trace)
    before = (gpu.clock.now, gpu.clock_set_calls, len(queue.events))
    result = queue.submit_batch([])
    after = (gpu.clock.now, gpu.clock_set_calls, len(queue.events))
    summary = result.summary()
    spans = trace.tracer.span_counts()
    results = [
        check(
            "engine.empty_batch_noop",
            len(result) == 0
            and before == after
            and all(v == 0.0 for v in summary.values()),
            f"empty submit_batch changed state: {before} -> {after}, "
            f"summary {summary}",
        ),
        check(
            "engine.empty_batch_span",
            spans.get("engine.batch", 0) == 1
            and trace.metrics.counter("engine.batches").value == 1,
            f"expected one empty engine.batch span, saw {spans}",
        ),
    ]

    sched_trace = TraceSession()
    cluster = Cluster.build(spec, n_nodes=1, gpus_per_node=1, trace=sched_trace)
    scheduler = Scheduler(cluster)
    jobs = scheduler.submit_many([])
    sched_spans = sched_trace.tracer.span_counts()
    results.append(
        check(
            "engine.empty_submit_many",
            jobs == [] and sched_spans.get("slurm.submit_many", 0) == 1,
            f"submit_many([]) -> {jobs!r}, spans {sched_spans}",
        )
    )
    return results


def check_profiler_window_energies(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Batched window integration equals per-event profiling."""
    from repro.engine.payload import plan_from_sweeps

    kernels = _kernels()
    plan = plan_from_sweeps(spec, kernels, _targets())
    requests = _workload(spec, kernels, rounds=2)
    _, queue = _twin_queues(spec, plan)
    queue.submit_batch(requests)
    queue.wait()
    events = list(queue.events)
    per_event_true = [
        queue.kernel_energy_consumption(e, true_value=True) for e in events
    ]
    batched_true = queue.profiler.window_energies(events, true_value=True)
    per_event_sampled = [queue.kernel_energy_consumption(e) for e in events]
    batched_sampled = queue.profiler.window_energies(events)
    return [
        _arrays_equal(
            "engine.window_energies_true",
            f"{len(events)} windows@{spec.name}",
            (per_event_true, batched_true),
            rtol=SCALAR_PATH_RTOL,
        ),
        _arrays_equal(
            "engine.window_energies_sampled",
            f"{len(events)} windows@{spec.name}",
            (per_event_sampled, batched_sampled),
        ),
    ]


def check_traced_counter_parity(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Batched runs count the same work the scalar path counts."""
    from repro.engine.payload import plan_from_sweeps
    from repro.obs.session import TraceSession

    kernels = _kernels()
    plan = plan_from_sweeps(spec, kernels, _targets())
    requests = _workload(spec, kernels, rounds=2)
    tr1, tr2 = TraceSession(), TraceSession()
    scalar_q, batched_q = _twin_queues(spec, plan, trace_pair=(tr1, tr2))
    _run_scalar(scalar_q, requests)
    batched_q.submit_batch(requests)
    batched_q.wait()
    names = ("queue.kernels_executed", "freq.switches", "predict.plan_lookups")
    values = {
        name: (
            tr1.metrics.counter(name).value,
            tr2.metrics.counter(name).value,
        )
        for name in names
    }
    return [
        check(
            "engine.traced_counters",
            all(a == b for a, b in values.values()),
            f"counter mismatch: {values}",
        )
    ]


def check_scheduler_batched_vs_scalar(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """Twin clusters: ``submit_many``+batched payloads vs scalar jobs."""
    from repro.engine.batch import JobBatch
    from repro.engine.payload import KernelBatchPayload, plan_from_sweeps
    from repro.slurm.cluster import NVGPUFREQ_GRES, Cluster
    from repro.slurm.job import JobSpec
    from repro.slurm.plugin import NvGpuFreqPlugin
    from repro.slurm.scheduler import Scheduler

    kernels = _kernels()
    plan = plan_from_sweeps(spec, kernels, _targets())
    requests = tuple(_workload(spec, kernels, rounds=2))

    def run(batched: bool):
        cluster = Cluster.build(
            spec, n_nodes=3, gpus_per_node=2, gres={NVGPUFREQ_GRES}
        )
        scheduler = Scheduler(cluster, plugins=[NvGpuFreqPlugin()])
        specs = [
            JobSpec(
                name=f"engine-par-{i}",
                n_nodes=1,
                exclusive=True,
                gres=frozenset({NVGPUFREQ_GRES}),
                payload=KernelBatchPayload(
                    requests=requests, plan=plan, batched=batched
                ),
            )
            for i in range(4)
        ]
        if batched:
            jobs = scheduler.submit_many(specs)
        else:
            jobs = [scheduler.submit(s) for s in specs]
        return JobBatch.collect(jobs), jobs

    scalar_agg, scalar_jobs = run(batched=False)
    batched_agg, batched_jobs = run(batched=True)
    results = [
        check(
            "engine.scheduler_job_states",
            list(scalar_agg["state"]) == list(batched_agg["state"])
            and list(scalar_agg["state"]) == ["COMPLETED"] * len(scalar_jobs),
            f"states {list(scalar_agg['state'])} vs {list(batched_agg['state'])}",
        ),
        _arrays_equal(
            "engine.scheduler_aggregates",
            f"4 jobs on 3x2 {spec.name} cluster",
            (scalar_agg["start_s"], batched_agg["start_s"]),
            (scalar_agg["end_s"], batched_agg["end_s"]),
            (scalar_agg["gpu_energy_j"], batched_agg["gpu_energy_j"]),
            rtol=SCALAR_PATH_RTOL,
        ),
    ]
    per_gpu_scalar = [s for j in scalar_jobs for s in j.result["gpus"]]
    per_gpu_batched = [s for j in batched_jobs for s in j.result["gpus"]]
    results.append(
        _arrays_equal(
            "engine.scheduler_queue_summaries",
            f"{len(per_gpu_scalar)} per-board summaries",
            *[
                ([a[k] for k in sorted(a)], [b[k] for k in sorted(b)])
                for a, b in zip(per_gpu_scalar, per_gpu_batched)
            ],
            rtol=SCALAR_PATH_RTOL,
        )
    )
    return results


def run_engine_checks(spec: GPUSpec = NVIDIA_V100) -> list[CheckResult]:
    """The full engine differential harness on one device family."""
    return (
        check_queue_batched_vs_scalar(spec)
        + check_throttled_batch(spec)
        + check_empty_batches(spec)
        + check_profiler_window_energies(spec)
        + check_traced_counter_parity(spec)
        + check_scheduler_batched_vs_scalar(spec)
    )
