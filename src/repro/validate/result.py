"""Check results and the validation report.

Every checker in :mod:`repro.validate` returns one or more
:class:`CheckResult` rows; a :class:`ValidationReport` aggregates them,
decides the pass/fail verdict under the ``--strict`` contract and exports
the totals through the :mod:`repro.obs` metrics plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a failed check affects the verdict.

    ``ERROR`` failures always fail validation. ``WARNING`` failures are
    physically plausible deviations (e.g. an energy minimum sitting on the
    edge of the frequency table for an exotic kernel); they only fail
    under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant or differential check."""

    name: str
    passed: bool
    detail: str = ""
    severity: Severity = Severity.ERROR

    @property
    def status(self) -> str:
        """Human-readable verdict cell: ``ok`` / ``FAIL`` / ``warn``."""
        if self.passed:
            return "ok"
        return "FAIL" if self.severity is Severity.ERROR else "warn"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON export."""
        return {
            "name": self.name,
            "passed": self.passed,
            "severity": self.severity.value,
            "detail": self.detail,
        }


def passed(name: str, detail: str = "") -> CheckResult:
    """A passing check row."""
    return CheckResult(name, True, detail)


def failed(
    name: str, detail: str, severity: Severity = Severity.ERROR
) -> CheckResult:
    """A failing check row."""
    return CheckResult(name, False, detail, severity)


def check(
    name: str,
    condition: bool,
    detail: str = "",
    severity: Severity = Severity.ERROR,
) -> CheckResult:
    """One check row from a boolean condition (detail kept either way)."""
    return CheckResult(name, bool(condition), detail, severity)


@dataclass
class ValidationReport:
    """All check rows of one validation run, plus the verdict logic."""

    results: list[CheckResult] = field(default_factory=list)

    def add(self, *results: CheckResult) -> None:
        self.results.extend(results)

    def extend(self, results: list[CheckResult]) -> None:
        self.results.extend(results)

    @property
    def failures(self) -> list[CheckResult]:
        """Failed error-severity checks (always fatal)."""
        return [
            r for r in self.results
            if not r.passed and r.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[CheckResult]:
        """Failed warning-severity checks (fatal only under ``--strict``)."""
        return [
            r for r in self.results
            if not r.passed and r.severity is Severity.WARNING
        ]

    def ok(self, strict: bool = False) -> bool:
        """The verdict: no errors; under ``--strict``, no warnings either."""
        if self.failures:
            return False
        return not (strict and self.warnings)

    @property
    def passed(self) -> bool:
        """Non-strict verdict (error-severity failures only)."""
        return self.ok(strict=False)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for JSON export."""
        return {
            "kind": "validation_report",
            "checks": len(self.results),
            "failures": len(self.failures),
            "warnings": len(self.warnings),
            "passed": self.passed,
            "results": [r.as_dict() for r in self.results],
        }
