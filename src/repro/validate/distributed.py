"""Validation of the distributed command-graph scheduler.

Three families of checks, all on the weak-scaling stencil workload
(:func:`repro.distributed.stencil.build_stencil_graph`):

- **graph soundness** — derived dependency edges are acyclic (every dep
  id precedes the node id), deduplicated, and carry the hazards the
  access modes imply: halo-reading kernels wait on their halo pull (RAW)
  and a rank never overwrites its boundary while a same-wave neighbour
  halo still reads it (WAR). Graph construction is deterministic.
- **executor parity** — the wave-vectorized engine
  (:mod:`repro.engine.multirank`) against the per-event scalar reference
  (:func:`repro.distributed.runner.run_graph_scalar`): node
  start/finish times, per-rank clocks/energies within rel 1e-12
  (:data:`SCALAR_PATH_RTOL`), switch counts exactly equal. Fallback
  preconditions (power caps) must drop to scalar.
- **global-plan invariants** — the executed global plan's energy never
  exceeds the sum of per-rank MAX_PERF energies, completion stays within
  the SLA factor of the MAX_PERF completion (plus one switch overhead of
  headroom for boot-clock asymmetry), savings are strictly positive, and
  halo traffic demonstrably overlaps compute.
"""

from __future__ import annotations

from repro.hw.specs import GPUSpec, get_spec
from repro.validate.differential import SCALAR_PATH_RTOL, _arrays_equal
from repro.validate.result import CheckResult, check

#: Rank count for the validation-sized stencil (small enough for the
#: scalar reference, large enough for interior/edge structure).
VALIDATE_RANKS = 12

#: SLA factor the validation plan is built with.
VALIDATE_SLA = 1.25


def _stencil(spec: GPUSpec, n_ranks: int = VALIDATE_RANKS, **kw):
    from repro.distributed import build_comm, build_stencil_graph

    comm = build_comm(spec, n_ranks)
    graph = build_stencil_graph(
        comm, steps=kw.pop("steps", 3),
        elems_per_rank=kw.pop("elems_per_rank", 1 << 18), **kw
    )
    return comm, graph


def _graph_signature(graph) -> list[tuple]:
    return [
        (n.nid, n.kind, n.rank, n.wave, n.label, n.deps, n.nbytes, n.cost_s)
        for n in graph.nodes
    ]


def check_graph_soundness(spec: GPUSpec) -> list[CheckResult]:
    """Edge structure, hazard edges and deterministic construction."""
    from repro.distributed.graph import HALO, KERNEL

    _, graph = _stencil(spec)
    _, again = _stencil(spec)
    results = [
        check(
            "distributed.graph_edges",
            graph.check_edges(),
            f"{len(graph.nodes)} nodes: some dependency does not precede "
            "its node (cycle or ordering bug)",
        ),
        check(
            "distributed.graph_deterministic",
            _graph_signature(graph) == _graph_signature(again),
            "two identical builder runs derived different graphs",
        ),
    ]
    dedup_ok = all(
        list(n.deps) == sorted(set(n.deps)) for n in graph.nodes
    )
    results.append(
        check(
            "distributed.graph_deps_deduped",
            dedup_ok,
            "dependency lists must be sorted and duplicate-free",
        )
    )

    # RAW through halos: every kernel in a halo-reading wave depends on
    # its own rank's halo node of the same wave.
    halos = {(n.wave, n.rank): n for n in graph.nodes if n.kind == HALO}
    raw_ok, raw_total = True, 0
    for n in graph.nodes:
        if n.kind == KERNEL and (n.wave, n.rank) in halos:
            raw_total += 1
            raw_ok &= halos[(n.wave, n.rank)].nid in n.deps
    results.append(
        check(
            "distributed.halo_raw_edges",
            raw_ok and raw_total > 0,
            f"{raw_total} halo-reading kernels; each must depend on its "
            "own halo transfer",
        )
    )

    # WAR through same-step neighbour halos: the field-writing update
    # kernel of an interior rank must wait for both neighbours' halo
    # pulls of the same step (they read this rank's previous block).
    war_ok, war_total = True, 0
    by_nid = graph.nodes
    for n in graph.nodes:
        if n.kind != KERNEL or not n.deps:
            continue
        neighbour_halo_deps = [
            d for d in n.deps
            if by_nid[d].kind == HALO and by_nid[d].rank != n.rank
        ]
        if neighbour_halo_deps:
            war_total += 1
            war_ok &= all(
                abs(by_nid[d].rank - n.rank) == 1 for d in neighbour_halo_deps
            )
    results.append(
        check(
            "distributed.halo_war_edges",
            war_ok and war_total > 0,
            f"{war_total} kernels carry anti-dependencies on neighbour "
            "halo pulls; all must point at rank±1",
        )
    )
    return results


def _plans(spec: GPUSpec, graph):
    from repro.core.compiler import plan_global_frequencies

    kernels = graph.rank_kernels()
    plan = plan_global_frequencies(
        spec, kernels, sla_factor=VALIDATE_SLA, cache=True
    )
    baseline = plan_global_frequencies(
        spec, kernels, sla_factor=VALIDATE_SLA, objective="MAX_PERF",
        cache=True,
    )
    return plan, baseline


def check_executor_parity(spec: GPUSpec) -> list[CheckResult]:
    """Batched vs scalar on one communicator (batched is pure, runs first)."""
    from repro.distributed import run_graph, run_graph_scalar

    comm, graph = _stencil(spec)
    plan, _ = _plans(spec, graph)
    batched = run_graph(graph, comm, plan)
    scalar = run_graph_scalar(graph, comm, plan)
    context = f"{len(graph.nodes)} nodes / {comm.size} ranks@{spec.name}"
    results = [
        check(
            "distributed.fast_path_used",
            batched.mode == "batched" and batched.fallback is None,
            f"{context}: expected the wave-vectorized path, got "
            f"{batched.mode} (fallback={batched.fallback!r})",
        ),
        _arrays_equal(
            "distributed.node_timeline",
            context,
            (batched.start_s, scalar.start_s),
            (batched.finish_s, scalar.finish_s),
            rtol=SCALAR_PATH_RTOL,
        ),
        _arrays_equal(
            "distributed.rank_physics",
            context,
            (batched.rank_time_s, scalar.rank_time_s),
            (batched.rank_energy_j, scalar.rank_energy_j),
            ([batched.completion_s], [scalar.completion_s]),
            rtol=SCALAR_PATH_RTOL,
        ),
        check(
            "distributed.switch_counts",
            batched.rank_switches.tolist() == scalar.rank_switches.tolist(),
            f"{context}: switches {batched.rank_switches.tolist()} vs "
            f"{scalar.rank_switches.tolist()}",
        ),
        check(
            "distributed.one_switch_per_rank",
            all(s <= 1 for s in scalar.rank_switches.tolist()),
            f"{context}: rank-uniform plans must cost at most one clock "
            f"switch per rank, saw {scalar.rank_switches.tolist()}",
        ),
    ]
    return results


def check_fallback_preconditions(spec: GPUSpec) -> list[CheckResult]:
    """A power-capped board must force the scalar reference."""
    from repro.distributed import run_graph

    comm, graph = _stencil(spec, n_ranks=4, steps=2)
    plan, _ = _plans(spec, graph)
    gpu = comm.gpus[1]
    limit = spec.idle_power_w + 0.5 * (
        gpu.default_power_limit_w - spec.idle_power_w
    )
    gpu.set_power_limit(limit, privileged=True)
    result = run_graph(graph, comm, plan)
    return [
        check(
            "distributed.powercap_fallback",
            result.mode == "scalar" and result.fallback == "powercap",
            f"capped board: mode={result.mode} fallback={result.fallback!r} "
            "(want scalar/powercap)",
        )
    ]


def check_global_plan_invariants(spec: GPUSpec) -> list[CheckResult]:
    """Executed energy/SLA invariants of the global frequency plan."""
    from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
    from repro.distributed import build_comm, run_graph
    from repro.distributed.graph import HALO, KERNEL

    comm, graph = _stencil(spec)
    plan, baseline = _plans(spec, graph)
    result = run_graph(graph, comm, plan)
    ref = run_graph(graph, build_comm(spec, comm.size), baseline)
    context = f"{comm.size} ranks@{spec.name}, sla={plan.sla_factor}"
    slop = 1.0 + 1e-9
    results = [
        check(
            "distributed.global_energy_bound",
            result.total_energy_j <= ref.total_energy_j * slop,
            f"{context}: global plan spent {result.total_energy_j:.4f} J vs "
            f"{ref.total_energy_j:.4f} J at all-MAX_PERF",
        ),
        check(
            "distributed.energy_saved",
            result.total_energy_j < ref.total_energy_j
            and plan.saved_j > 0.0,
            f"{context}: expected strict savings, executed "
            f"{result.total_energy_j:.4f} vs {ref.total_energy_j:.4f} J "
            f"(planned {plan.saved_j:.4f} J)",
        ),
        check(
            "distributed.completion_sla",
            result.completion_s
            <= plan.sla_factor * ref.completion_s * slop
            + DEFAULT_SWITCH_OVERHEAD_S,
            f"{context}: completion {result.completion_s:.6f} s vs budget "
            f"{plan.sla_factor * ref.completion_s:.6f} s",
        ),
        check(
            "distributed.critical_rank_maxperf",
            plan.rank_targets[plan.critical_rank] == "MAX_PERF",
            f"{context}: critical rank {plan.critical_rank} planned "
            f"{plan.rank_targets[plan.critical_rank]!r}",
        ),
        check(
            "distributed.slack_ranks_downclocked",
            any(t != "MAX_PERF" for t in plan.rank_targets),
            f"{context}: no slack rank left MAX_PERF — the workload has "
            "no exploitable slack",
        ),
    ]

    # Communication/compute overlap: some halo transfer must be in
    # flight while some kernel executes.
    halo_iv = [
        (result.start_s[n.nid], result.finish_s[n.nid])
        for n in graph.nodes
        if n.kind == HALO and n.cost_s > 0.0
    ]
    kern_iv = [
        (result.start_s[n.nid], result.finish_s[n.nid])
        for n in graph.nodes
        if n.kind == KERNEL
    ]
    overlap = any(
        hs < ke and ks < he
        for hs, he in halo_iv
        for ks, ke in kern_iv
    )
    results.append(
        check(
            "distributed.comm_compute_overlap",
            overlap,
            f"{context}: no halo transfer overlapped any kernel — the "
            "scheduler serialized communication",
        )
    )
    return results


def check_single_rank_degenerate(spec: GPUSpec) -> list[CheckResult]:
    """One rank: no halos, free gathers, plan trivially MAX_PERF-critical."""
    from repro.distributed import run_graph
    from repro.distributed.graph import HALO

    comm, graph = _stencil(spec, n_ranks=1, steps=2)
    plan, _ = _plans(spec, graph)
    result = run_graph(graph, comm, plan)
    n_halos = sum(1 for n in graph.nodes if n.kind == HALO)
    return [
        check(
            "distributed.single_rank",
            n_halos == 0
            and plan.critical_rank == 0
            and plan.rank_targets == ("MAX_PERF",)
            and result.mode == "batched"
            and result.completion_s > 0.0,
            f"1-rank degenerate: {n_halos} halos, critical="
            f"{plan.critical_rank}, targets={plan.rank_targets}, "
            f"mode={result.mode}",
        )
    ]


def run_distributed_checks(spec: GPUSpec | None = None) -> list[CheckResult]:
    """The full distributed-scheduler harness on one device family."""
    spec = spec or get_spec("A100")
    return (
        check_graph_soundness(spec)
        + check_executor_parity(spec)
        + check_fallback_preconditions(spec)
        + check_global_plan_invariants(spec)
        + check_single_rank_degenerate(spec)
    )
