"""Pure invariant checkers over sweep, trace and power-cap results.

Each checker is a pure function of its inputs returning
:class:`~repro.validate.result.CheckResult` rows; nothing here mutates the
objects under test. The catalog maps one-to-one onto the paper's claims:

- energy–power–time consistency (``E = P̄·t`` within tolerance) and
  physical power bounds — the ground every figure stands on,
- a single interior minimum of ``energy(f)`` per kernel with the
  ``f(MIN_ENERGY) ≤ f(MIN_EDP) ≤ f(MIN_ED2P) ≤ f(MAX_PERF)`` frequency
  ordering — Fig. 4,
- ES_x / PL_x threshold semantics (``ES_100`` = argmin energy, ``PL_0``
  no slower than the default) and ladder monotonicity — Fig. 5, §5.2–5.3,
- Pareto-front mask consistency — Figs. 2/7/8,
- power-cap budget conservation across ``redistribute_caps`` steps and
  the :class:`~repro.slurm.powercap.PowerCapPlugin` audit round-trip —
  §2.3,
- monotone virtual clocks and metric sanity over a recorded
  :class:`~repro.obs.session.TraceSession`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hw.cache import models_for
from repro.hw.specs import GPUSpec
from repro.metrics.pareto import front_violations
from repro.metrics.targets import (
    MAX_PERF,
    MIN_ED2P,
    MIN_EDP,
    MIN_ENERGY,
    EnergyTarget,
    TargetKind,
)
from repro.validate.result import CheckResult, Severity, check

#: Relative tolerance for float comparisons between algebraically equal
#: quantities computed along different paths.
RTOL = 1e-9


def _ctx(sweep) -> str:
    return f"{sweep.kernel_name}@{sweep.device_name}"


# ------------------------------------------------------- physics invariants

def check_energy_power_time(sweep, spec: GPUSpec) -> list[CheckResult]:
    """Energy, time and implied average power are finite, positive and
    physically bounded: ``P_idle ≤ E/t ≤ P_peak`` at every frequency."""
    ctx = _ctx(sweep)
    t = np.asarray(sweep.time_s, dtype=float)
    e = np.asarray(sweep.energy_j, dtype=float)
    results = [
        check(
            "sweep.finite_positive",
            bool(
                np.all(np.isfinite(t)) and np.all(np.isfinite(e))
                and np.all(t > 0) and np.all(e > 0)
            ),
            f"{ctx}: non-finite or non-positive time/energy in sweep",
        )
    ]
    if not results[0].passed:
        return results
    _, power_model = models_for(spec)
    avg_power = e / t
    idle, peak = power_model.power_bounds()
    results.append(
        check(
            "sweep.power_bounds",
            bool(
                np.all(avg_power >= idle * (1.0 - RTOL))
                and np.all(avg_power <= peak * (1.0 + RTOL))
            ),
            f"{ctx}: average power [{avg_power.min():.3f}, "
            f"{avg_power.max():.3f}] W outside [{idle:.3f}, {peak:.3f}] W",
        )
    )
    return results


def check_interior_energy_minimum(sweep) -> list[CheckResult]:
    """``energy(f)`` is unimodal with its minimum strictly inside the table.

    Non-unimodality (more than one descent/ascent transition) is an error;
    a minimum sitting on a table edge is a warning — physically plausible
    for exotic kernels, but it voids the paper's "sweet spot" narrative
    for that kernel.
    """
    ctx = _ctx(sweep)
    e = np.asarray(sweep.energy_j, dtype=float)
    d = np.diff(e)
    scale = float(np.max(np.abs(e))) or 1.0
    signs = np.sign(np.where(np.abs(d) <= RTOL * scale, 0.0, d))
    nonzero = signs[signs != 0]
    transitions = int(np.sum(np.diff(nonzero) != 0)) if nonzero.size else 0
    descends_then_ascends = nonzero.size == 0 or (
        transitions <= 1 and (transitions == 0 or nonzero[0] < 0)
    )
    i_min = int(np.argmin(e))
    return [
        check(
            "sweep.energy_unimodal",
            descends_then_ascends,
            f"{ctx}: energy(f) has {transitions} slope transitions "
            "(expected a single descend-then-ascend valley)",
        ),
        check(
            "sweep.energy_minimum_interior",
            0 < i_min < e.size - 1,
            f"{ctx}: energy minimum at table index {i_min} of {e.size} "
            "(edge, not interior)",
            severity=Severity.WARNING,
        ),
    ]


def check_target_frequency_ordering(sweep) -> list[CheckResult]:
    """Resolved frequencies are ordered
    ``f(MIN_ENERGY) ≤ f(MIN_EDP) ≤ f(MIN_ED2P) ≤ f(MAX_PERF)`` (Fig. 4)."""
    ctx = _ctx(sweep)
    freqs = [
        float(sweep.freqs_mhz[sweep.resolve(t)])
        for t in (MIN_ENERGY, MIN_EDP, MIN_ED2P, MAX_PERF)
    ]
    ordered = all(a <= b + RTOL for a, b in zip(freqs, freqs[1:]))
    return [
        check(
            "sweep.target_frequency_ordering",
            ordered,
            f"{ctx}: target clocks E/EDP/ED2P/perf = {freqs} MHz not "
            "non-decreasing",
        )
    ]


def check_es_pl_semantics(sweep) -> list[CheckResult]:
    """ES_x / PL_x threshold semantics of §5.2–5.3.

    ``ES_100`` lands on the global energy minimum; ``PL_0`` is no slower
    than the default; every ES/PL selection saves energy vs the default;
    the ES energy ladder is non-increasing in x and the PL energy ladder
    is non-increasing in x (more allowed loss → at least as frugal).
    """
    ctx = _ctx(sweep)
    e = np.asarray(sweep.energy_j, dtype=float)
    t = np.asarray(sweep.time_s, dtype=float)
    e_default = float(e[sweep.default_index])
    t_default = float(t[sweep.default_index])

    es_100 = sweep.resolve(EnergyTarget(TargetKind.ES, 100.0))
    pl_0 = sweep.resolve(EnergyTarget(TargetKind.PL, 0.0))
    results = [
        check(
            "tradeoff.es100_is_min_energy",
            math.isclose(float(e[es_100]), float(np.min(e)), rel_tol=RTOL),
            f"{ctx}: ES_100 resolves to {e[es_100]!r} J, global minimum is "
            f"{float(np.min(e))!r} J",
        ),
        check(
            "tradeoff.pl0_no_slower_than_default",
            float(t[pl_0]) <= t_default * (1.0 + RTOL),
            f"{ctx}: PL_0 takes {t[pl_0]!r} s, default takes {t_default!r} s",
        ),
    ]
    grid = [0.0, 25.0, 50.0, 75.0, 100.0]
    es_energy = [float(e[sweep.resolve(EnergyTarget(TargetKind.ES, x))]) for x in grid]
    pl_energy = [float(e[sweep.resolve(EnergyTarget(TargetKind.PL, x))]) for x in grid]
    results += [
        check(
            "tradeoff.selections_save_energy",
            all(v <= e_default * (1.0 + RTOL) for v in es_energy + pl_energy),
            f"{ctx}: an ES/PL selection costs more energy than the default "
            f"({e_default!r} J)",
        ),
        check(
            "tradeoff.es_ladder_monotone",
            all(a >= b - RTOL * abs(a) for a, b in zip(es_energy, es_energy[1:])),
            f"{ctx}: ES energy ladder {es_energy} not non-increasing in x",
        ),
        check(
            "tradeoff.pl_ladder_monotone",
            all(a >= b - RTOL * abs(a) for a, b in zip(pl_energy, pl_energy[1:])),
            f"{ctx}: PL energy ladder {pl_energy} not non-increasing in x",
        ),
    ]
    return results


def check_pareto_consistency(sweep) -> list[CheckResult]:
    """The Pareto mask is internally consistent (Figs. 2/7/8): front points
    are mutually non-dominated, every off-front point is dominated by a
    front point, and the MAX_PERF / MIN_ENERGY selections sit on it."""
    ctx = _ctx(sweep)
    mask = np.asarray(sweep.pareto_mask, dtype=bool)
    dominated_front, uncovered_off = front_violations(
        sweep.speedup, sweep.normalized_energy, mask
    )
    i_perf = int(np.argmin(np.asarray(sweep.time_s)))
    i_energy = int(np.argmin(np.asarray(sweep.energy_j)))
    return [
        check(
            "pareto.front_mutually_nondominated",
            dominated_front == 0,
            f"{ctx}: {dominated_front} masked-in points are dominated by "
            "another front point",
        ),
        check(
            "pareto.off_front_dominated",
            uncovered_off == 0,
            f"{ctx}: {uncovered_off} off-front points are not dominated by "
            "any front point",
        ),
        check(
            "pareto.extremes_on_front",
            bool(mask[i_perf] and mask[i_energy]),
            f"{ctx}: MAX_PERF (idx {i_perf}) or MIN_ENERGY (idx {i_energy}) "
            "not on the Pareto front",
        ),
    ]


def check_sweep(sweep, spec: GPUSpec) -> list[CheckResult]:
    """All sweep-level invariants for one kernel on one device."""
    return (
        check_energy_power_time(sweep, spec)
        + check_interior_energy_minimum(sweep)
        + check_target_frequency_ordering(sweep)
        + check_es_pl_semantics(sweep)
        + check_pareto_consistency(sweep)
    )


# --------------------------------------------------------- trace invariants

def check_trace_monotonicity(session, context: str = "trace") -> list[CheckResult]:
    """Every recorded span closes no earlier than it opens, timestamps are
    finite and non-negative — the virtual clocks never ran backwards."""
    bad_spans = 0
    total = 0
    for span in session.tracer.spans:
        total += 1
        t1 = span.t0 if span.t1 is None else span.t1  # open spans: zero width
        if not (
            math.isfinite(span.t0)
            and math.isfinite(t1)
            and 0.0 <= span.t0 <= t1
        ):
            bad_spans += 1
    bad_instants = sum(
        1
        for inst in session.tracer.instants
        if not (math.isfinite(inst.t) and inst.t >= 0.0)
    )
    return [
        check(
            "trace.monotone_spans",
            bad_spans == 0,
            f"{context}: {bad_spans} of {total} spans have inverted or "
            "non-finite windows",
        ),
        check(
            "trace.nonnegative_instants",
            bad_instants == 0,
            f"{context}: {bad_instants} instants before t=0 or non-finite",
        ),
    ]


def check_metrics_sanity(session, context: str = "trace") -> list[CheckResult]:
    """Counters are non-negative and every histogram's bucket counts sum to
    its observation count."""
    doc = session.metrics.as_dict()
    bad_counters = [k for k, v in doc["counters"].items() if v < 0]
    bad_hists = [
        k for k, h in doc["histograms"].items() if sum(h["counts"]) != h["count"]
    ]
    return [
        check(
            "metrics.nonnegative_counters",
            not bad_counters,
            f"{context}: negative counters {bad_counters}",
        ),
        check(
            "metrics.histogram_totals",
            not bad_hists,
            f"{context}: histograms with inconsistent totals {bad_hists}",
        ),
    ]


# ----------------------------------------------------- power-cap invariants

def check_powercap_conservation(
    caps_w,
    usage_w,
    floor_w: float,
    ceiling_w: float,
    threshold: float = 0.05,
    context: str = "powercap",
    iterations: int = 8,
) -> list[CheckResult]:
    """§2.3 budget conservation across ``redistribute_caps`` steps.

    One step conserves the total budget within float tolerance, keeps every
    cap in ``[floor, ceiling]``, and is the identity when no node is hungry
    (nobody can receive, so nobody may shed — the bug the first run of this
    plane flushed out). Iterating to a fixpoint and stepping once more must
    leave the caps unchanged (idempotence at the fixpoint).
    """
    from repro.slurm.powercap import redistribute_caps

    caps = [float(c) for c in caps_w]
    usage = [float(u) for u in usage_w]
    new = redistribute_caps(caps, usage, floor_w, ceiling_w, threshold)
    total = sum(caps)
    tol = max(1e-9, 1e-9 * abs(total))
    results = [
        check(
            "powercap.budget_conserved",
            abs(sum(new) - total) <= tol,
            f"{context}: total budget moved from {total!r} W to "
            f"{sum(new)!r} W in one redistribution step",
        ),
        check(
            "powercap.caps_in_bounds",
            all(floor_w - tol <= c <= ceiling_w + tol for c in new),
            f"{context}: a redistributed cap left [{floor_w}, {ceiling_w}] W: "
            f"{new}",
        ),
    ]
    hungry = [u >= (1.0 - threshold) * c for c, u in zip(caps, usage)]
    if not any(hungry):
        results.append(
            check(
                "powercap.no_receiver_identity",
                new == caps,
                f"{context}: no node was hungry yet caps changed "
                f"({caps} -> {new})",
            )
        )
    # Iterate the rule: every state along the orbit must conserve the
    # budget. The orbit either reaches a fixpoint (then one more step must
    # be the identity — idempotence at the fixpoint) or revisits a state
    # (the rule can legitimately ping-pong between equal-budget splits).
    seen = {tuple(new)}
    state = new
    orbit_conserved = True
    outcome = "open"
    for _ in range(iterations):
        nxt = redistribute_caps(state, usage, floor_w, ceiling_w, threshold)
        if abs(sum(nxt) - total) > tol:
            orbit_conserved = False
        if nxt == state:
            outcome = "fixpoint"
            break
        if tuple(nxt) in seen:
            outcome = "cycle"
            break
        seen.add(tuple(nxt))
        state = nxt
    results.append(
        check(
            "powercap.orbit_conserves_budget",
            orbit_conserved,
            f"{context}: a later redistribution step changed the total "
            f"budget from {total!r} W",
        )
    )
    if outcome == "fixpoint":
        again = redistribute_caps(state, usage, floor_w, ceiling_w, threshold)
        results.append(
            check(
                "powercap.fixpoint_idempotent",
                again == state,
                f"{context}: fixpoint not idempotent ({state} -> {again})",
            )
        )
    elif outcome == "open":
        results.append(
            CheckResult(
                "powercap.orbit_settles",
                False,
                f"{context}: neither a fixpoint nor a cycle within "
                f"{iterations} iterations",
                Severity.WARNING,
            )
        )
    return results


def check_powercap_audit_roundtrip(
    spec: GPUSpec, node_budget_w: float, gpus_per_node: int = 2
) -> list[CheckResult]:
    """The §2.3 plugin's audit trail matches the NVML-visible limits.

    Runs one capped job on a fresh single-node cluster and asserts that
    the per-GPU limit the plugin *recorded* equals the limit the boards
    actually carried while the job ran (read back through NVML, in mW),
    and that the epilogue restored factory limits.
    """
    from repro.slurm.cluster import Cluster
    from repro.slurm.job import JobSpec, JobState
    from repro.slurm.powercap import PowerCapPlugin
    from repro.slurm.scheduler import Scheduler

    cluster = Cluster.build(spec, n_nodes=1, gpus_per_node=gpus_per_node)
    node = cluster.nodes[0]
    plugin = PowerCapPlugin(node_budget_w=node_budget_w)
    scheduler = Scheduler(cluster, plugins=[plugin])
    seen: dict[str, list[int]] = {}

    def payload(context) -> None:
        assert node.nvml is not None
        node.nvml.nvmlInit()
        seen["limits_mw"] = [
            node.nvml.nvmlDeviceGetPowerManagementLimit(
                node.nvml.nvmlDeviceGetHandleByIndex(i)
            )
            for i in range(len(node.gpus))
        ]

    job = scheduler.submit(
        JobSpec(name="powercap-audit", n_nodes=1, payload=payload)
    )
    recorded = plugin.applied.get((job.job_id, node.name))
    visible_w = [mw / 1000.0 for mw in seen.get("limits_mw", [])]
    restored = all(
        g.power_limit_w == g.default_power_limit_w for g in node.gpus
    )
    return [
        check(
            "powercap.job_completed",
            job.state is JobState.COMPLETED,
            f"audit job finished in state {job.state}",
        ),
        check(
            "powercap.audit_matches_nvml",
            recorded is not None
            and bool(visible_w)
            # NVML reports integer milliwatts: allow the 0.5 mW quantization.
            and all(
                math.isclose(recorded, w, rel_tol=1e-9, abs_tol=5e-4)
                for w in visible_w
            ),
            f"plugin recorded {recorded!r} W but NVML saw {visible_w} W "
            f"(budget {node_budget_w} W over {gpus_per_node} boards)",
        ),
        check(
            "powercap.epilogue_restores_limits",
            restored,
            "factory power limits not restored after the job",
        ),
    ]
