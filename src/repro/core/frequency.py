"""Frequency-scaling path with overhead accounting (paper §4.3–4.4).

Changing application clocks through NVML is not free: the paper observes the
switch overhead "becomes significant as the number of submitted kernels
grows". :class:`FrequencyScaler` charges a configurable virtual-time cost per
*effective* clock change and skips redundant changes (the clocks already
match), which is also what the real SYnergy runtime does before each kernel.

Resilience: on production clusters clock-set calls fail transiently (driver
hiccups surface as ``NVML_ERROR_UNKNOWN`` / ``NVML_ERROR_TIMEOUT``). The
scaler retries those with capped exponential backoff in *virtual* time and,
once the retry budget is exhausted, degrades gracefully: it restores
driver-default clocks (best-effort) and reports the failure so per-kernel
energy targets can be flagged as best-effort rather than silently wrong.
"""

from __future__ import annotations

from repro.common.errors import TransientError, ValidationError
from repro.hw.device import SimulatedGPU
from repro.obs.session import TraceSession, resolve_trace
from repro.obs.tracer import NULL_SPAN, Span
from repro.vendor.portable import PowerManagementBackend, create_backend

#: Virtual-time cost of one NVML/SMI application-clock change (seconds).
#: Chosen at the low end of measured nvmlDeviceSetApplicationsClocks
#: latencies on data-center boards; the ablation bench sweeps it to show
#: the §4.4 regime where switching dominates small kernels.
DEFAULT_SWITCH_OVERHEAD_S: float = 1.0e-3

#: Retry policy for transient clock-set failures: attempts beyond the first,
#: initial backoff, and the backoff ceiling (all virtual-time seconds).
DEFAULT_MAX_RETRIES: int = 4
DEFAULT_BACKOFF_BASE_S: float = 1.0e-3
DEFAULT_BACKOFF_CAP_S: float = 16.0e-3


class FrequencyScaler:
    """Per-device clock control used by the SYnergy queue."""

    def __init__(
        self,
        device: SimulatedGPU,
        backend: PowerManagementBackend | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        trace: TraceSession | None = None,
    ) -> None:
        if switch_overhead_s < 0:
            raise ValidationError(
                f"switch overhead cannot be negative ({switch_overhead_s!r})"
            )
        if max_retries < 0:
            raise ValidationError(f"max_retries cannot be negative ({max_retries!r})")
        if backoff_base_s < 0 or backoff_cap_s < backoff_base_s:
            raise ValidationError(
                f"backoff range invalid: base={backoff_base_s!r}, "
                f"cap={backoff_cap_s!r}"
            )
        self.device = device
        self.trace = resolve_trace(trace)
        self._track = f"gpu{device.index}"
        self.backend = backend if backend is not None else create_backend(device)
        self.switch_overhead_s = float(switch_overhead_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Number of clock changes actually applied (not skipped).
        self.switch_count: int = 0
        #: Total virtual time spent switching clocks.
        self.total_overhead_s: float = 0.0
        #: Transient clock-set failures that were retried.
        self.retry_count: int = 0
        #: Virtual time spent backing off between retries.
        self.retry_backoff_s: float = 0.0
        #: Clock-set requests abandoned after retry exhaustion.
        self.failed_switches: int = 0
        #: Whether any request ever degraded to driver defaults.
        self.degraded: bool = False
        #: Whether the *most recent* set_frequency call degraded.
        self.last_degraded: bool = False

    def set_frequency(self, mem_mhz: int, core_mhz: int) -> bool:
        """Apply a clock pair; returns True if a change was actually made.

        Redundant requests (clocks already in effect) are skipped without
        overhead. Effective changes advance the device clock by the switch
        overhead before the change lands, so subsequent kernels start late —
        exactly the §4.4 cost model.

        Transient vendor failures are retried up to ``max_retries`` times
        with capped exponential backoff in virtual time. On exhaustion the
        request is abandoned: the scaler attempts a best-effort reset to
        driver-default clocks, flags itself degraded, and returns False.
        Non-transient errors (permission, invalid clocks, lost GPU)
        propagate unchanged.
        """
        tr = self.trace
        if not tr.enabled:
            return self._set_frequency(mem_mhz, core_mhz, NULL_SPAN)
        with tr.span(
            self.device.clock,
            self._track,
            "freq.set",
            f"set {mem_mhz}/{core_mhz}",
            mem_mhz=mem_mhz,
            core_mhz=core_mhz,
        ) as sp:
            return self._set_frequency(mem_mhz, core_mhz, sp)

    def _set_frequency(self, mem_mhz: int, core_mhz: int, sp: Span) -> bool:
        tr = self.trace
        self.last_degraded = False
        current_core, current_mem = self.backend.current_clocks()
        if (current_core, current_mem) == (core_mhz, mem_mhz):
            sp.set(applied=False, skipped=True)
            return False
        backoff = self.backoff_base_s
        for attempt in range(self.max_retries + 1):
            if self.switch_overhead_s > 0.0:
                # The NVML call costs its latency whether or not it succeeds.
                self.device.clock.advance(self.switch_overhead_s)
                self.total_overhead_s += self.switch_overhead_s
            try:
                self.backend.set_clocks(mem_mhz, core_mhz)
            except TransientError as exc:
                self.retry_count += 1
                if tr.enabled:
                    tr.instant(
                        self.device.clock.now,
                        self._track,
                        "freq.retry",
                        f"set {mem_mhz}/{core_mhz}",
                        attempt=attempt + 1,
                        error=str(exc),
                    )
                    tr.count("freq.retries")
                if attempt == self.max_retries:
                    self._degrade(mem_mhz, core_mhz, exc)
                    sp.set(applied=False, degraded=True, attempts=attempt + 1)
                    if tr.enabled:
                        tr.count("freq.degraded")
                    return False
                if backoff > 0.0:
                    self.device.clock.advance(backoff)
                    self.retry_backoff_s += backoff
                backoff = min(2.0 * backoff, self.backoff_cap_s)
                continue
            self.switch_count += 1
            sp.set(applied=True, attempts=attempt + 1)
            if tr.enabled:
                tr.count("freq.switches")
            if attempt:
                self._log_recovery(
                    f"clock-set {mem_mhz}/{core_mhz} MHz succeeded after "
                    f"{attempt} retr{'y' if attempt == 1 else 'ies'}"
                )
            return True
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, mem_mhz: int, core_mhz: int, exc: TransientError) -> None:
        """Retry budget exhausted: fall back to driver-default clocks."""
        self.failed_switches += 1
        self.degraded = True
        self.last_degraded = True
        try:
            self.backend.reset_clocks()
        except TransientError:
            # Even the reset failed; the board keeps its current clocks.
            # The epilogue remains the backstop for restoring defaults.
            pass
        self._log_recovery(
            f"clock-set {mem_mhz}/{core_mhz} MHz abandoned after "
            f"{self.max_retries} retries ({exc}); degraded to driver defaults"
        )

    def _log_recovery(self, detail: str) -> None:
        injector = self.device.fault_injector
        if injector is not None:
            injector.log.record_recovery(
                self.device.clock.now, "nvml.set_clocks", self.device.index, detail
            )

    def charge_batched(self, n_switches: int) -> None:
        """Account effective clock changes applied by the batched engine.

        The engine advances the device clock and commits the clock plan
        itself (one vectorized pass); this charges the scaler's counters
        for ``n_switches`` effective changes. Overhead accumulates one
        add per switch so the totals stay bitwise-identical to the
        per-event path's repeated ``+=``.
        """
        if n_switches < 0:
            raise ValidationError(
                f"switch count cannot be negative ({n_switches!r})"
            )
        for _ in range(int(n_switches)):
            self.total_overhead_s += self.switch_overhead_s
        self.switch_count += int(n_switches)

    def reset(self) -> None:
        """Restore driver-default clocks (counts as one switch if effective)."""
        spec = self.device.spec
        if self.trace.enabled:
            self.trace.instant(
                self.device.clock.now, self._track, "freq.reset", "reset"
            )
        self.set_frequency(spec.default_mem_mhz, spec.default_core_mhz)

    def supported_core_freqs(self) -> tuple[int, ...]:
        """Core clock table from the vendor backend (MHz, ascending)."""
        return self.backend.supported_core_freqs()

    def supported_mem_freqs(self) -> tuple[int, ...]:
        """Memory clock table from the vendor backend (MHz, ascending)."""
        return self.backend.supported_mem_freqs()
