"""Frequency-scaling path with overhead accounting (paper §4.3–4.4).

Changing application clocks through NVML is not free: the paper observes the
switch overhead "becomes significant as the number of submitted kernels
grows". :class:`FrequencyScaler` charges a configurable virtual-time cost per
*effective* clock change and skips redundant changes (the clocks already
match), which is also what the real SYnergy runtime does before each kernel.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.hw.device import SimulatedGPU
from repro.vendor.portable import PowerManagementBackend, create_backend

#: Virtual-time cost of one NVML/SMI application-clock change (seconds).
#: Chosen at the low end of measured nvmlDeviceSetApplicationsClocks
#: latencies on data-center boards; the ablation bench sweeps it to show
#: the §4.4 regime where switching dominates small kernels.
DEFAULT_SWITCH_OVERHEAD_S: float = 1.0e-3


class FrequencyScaler:
    """Per-device clock control used by the SYnergy queue."""

    def __init__(
        self,
        device: SimulatedGPU,
        backend: PowerManagementBackend | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
    ) -> None:
        if switch_overhead_s < 0:
            raise ValidationError(
                f"switch overhead cannot be negative ({switch_overhead_s!r})"
            )
        self.device = device
        self.backend = backend if backend is not None else create_backend(device)
        self.switch_overhead_s = float(switch_overhead_s)
        #: Number of clock changes actually applied (not skipped).
        self.switch_count: int = 0
        #: Total virtual time spent switching clocks.
        self.total_overhead_s: float = 0.0

    def set_frequency(self, mem_mhz: int, core_mhz: int) -> bool:
        """Apply a clock pair; returns True if a change was actually made.

        Redundant requests (clocks already in effect) are skipped without
        overhead. Effective changes advance the device clock by the switch
        overhead before the change lands, so subsequent kernels start late —
        exactly the §4.4 cost model.
        """
        current_core, current_mem = self.backend.current_clocks()
        if (current_core, current_mem) == (core_mhz, mem_mhz):
            return False
        if self.switch_overhead_s > 0.0:
            self.device.clock.advance(self.switch_overhead_s)
        self.backend.set_clocks(mem_mhz, core_mhz)
        self.switch_count += 1
        self.total_overhead_s += self.switch_overhead_s
        return True

    def reset(self) -> None:
        """Restore driver-default clocks (counts as one switch if effective)."""
        spec = self.device.spec
        self.set_frequency(spec.default_mem_mhz, spec.default_core_mhz)

    def supported_core_freqs(self) -> tuple[int, ...]:
        """Core clock table from the vendor backend (MHz, ascending)."""
        return self.backend.supported_core_freqs()

    def supported_mem_freqs(self) -> tuple[int, ...]:
        """Memory clock table from the vendor backend (MHz, ascending)."""
        return self.backend.supported_mem_freqs()
