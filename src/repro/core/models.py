"""The four single-target energy models of §6.

Training workflow (Fig. 6, steps ①–③):

1. micro-benchmarks are described by their static feature vectors,
2. each is executed at every core frequency of the target device to
   measure per-task time and energy, from which EDP and ED2P follow,
3. four regressors are fitted: ``F_t(k, f)``, ``F_e(k, f)``,
   ``F_edp(k, f)``, ``F_ed2p(k, f)``.

The design matrix row is ``[k₁..k₁₀, f_core_mhz]``; the memory clock is
fixed per device (HBM boards, §7.1) and therefore not a feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.core.sweepcache import SweepCache, resolve_cache
from repro.hw.cache import models_for
from repro.hw.power import PowerModel
from repro.hw.specs import GPUSpec
from repro.hw.timing import TimingModel
from repro.kernelir.features import FEATURE_NAMES, extract_features
from repro.kernelir.kernel import KernelIR
from repro.metrics.energy import ed2p, edp
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression

#: Column labels of the training design matrix.
DESIGN_COLUMNS: tuple[str, ...] = FEATURE_NAMES + ("core_mhz",)


@dataclass(frozen=True)
class TrainingSet:
    """The paper's ``T = (k, f, e, t, edp, ed2p)`` in matrix form.

    ``X`` has shape ``(n, 11)`` (ten static features + core clock in MHz);
    target vectors are per-task measurements at that clock. ``kernel_ids``
    tags each row with the micro-benchmark it was measured on, which the
    model bundle uses to normalize per-kernel magnitudes away.
    """

    X: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray
    edp_js: np.ndarray
    ed2p_js2: np.ndarray
    device_name: str
    kernel_ids: np.ndarray

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if self.X.ndim != 2 or self.X.shape[1] != len(DESIGN_COLUMNS):
            raise ValidationError(
                f"X must have {len(DESIGN_COLUMNS)} columns, got {self.X.shape}"
            )
        for name in ("time_s", "energy_j", "edp_js", "ed2p_js2", "kernel_ids"):
            vec = getattr(self, name)
            if vec.shape != (n,):
                raise ValidationError(f"{name} must have shape ({n},), got {vec.shape}")

    @property
    def n_samples(self) -> int:
        """Number of (kernel, frequency) measurement rows."""
        return self.X.shape[0]

    def merged_with(self, other: "TrainingSet") -> "TrainingSet":
        """Concatenate two training sets measured on the same device."""
        if other.device_name != self.device_name:
            raise ValidationError(
                "cannot merge training sets from different devices "
                f"({self.device_name!r} vs {other.device_name!r})"
            )
        offset = int(self.kernel_ids.max()) + 1 if self.kernel_ids.size else 0
        return TrainingSet(
            X=np.vstack([self.X, other.X]),
            time_s=np.concatenate([self.time_s, other.time_s]),
            energy_j=np.concatenate([self.energy_j, other.energy_j]),
            edp_js=np.concatenate([self.edp_js, other.edp_js]),
            ed2p_js2=np.concatenate([self.ed2p_js2, other.ed2p_js2]),
            device_name=self.device_name,
            kernel_ids=np.concatenate([self.kernel_ids, other.kernel_ids + offset]),
        )


def _compute_sweep(
    spec: GPUSpec, kernel: KernelIR, freqs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One broadcasted evaluation of the full core-frequency sweep."""
    timing_model, power_model = models_for(spec)
    mem = float(spec.default_mem_mhz)
    timing = timing_model.sweep(kernel, freqs, mem)
    power = np.asarray(
        power_model.power(
            freqs, mem, timing.core_power_utilization, timing.u_mem
        ),
        dtype=float,
    )
    return freqs, timing.time_s, power * timing.time_s


def measure_sweep(
    spec: GPUSpec,
    kernel: KernelIR,
    core_freqs_mhz: Sequence[int] | None = None,
    *,
    cache: bool | SweepCache | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-task ``(freqs, time, energy)`` over a core-frequency sweep.

    This is the measurement primitive of training step ② — equivalent to
    executing the kernel once per frequency on a quiet device and reading
    per-kernel time/energy, but computed directly from the analytic models
    (the simulation's ground truth) in one vectorized pass.

    Results are memoized in the keyed sweep cache (device fingerprint ×
    kernel fingerprint × frequency-table hash); cached arrays come back
    read-only and shared. ``cache=False`` bypasses caching, ``cache`` may
    also be an explicit :class:`~repro.core.sweepcache.SweepCache`.
    """
    freqs = np.asarray(
        core_freqs_mhz if core_freqs_mhz is not None else spec.core_freqs_mhz,
        dtype=float,
    )
    store = resolve_cache(cache)
    if store is None:
        return _compute_sweep(spec, kernel, freqs)
    return store.get_or_compute(
        store.sweep_key(spec, kernel, freqs),
        lambda: _compute_sweep(spec, kernel, freqs),
    )


def measure_sweep_scalar(
    spec: GPUSpec, kernel: KernelIR, core_freqs_mhz: Sequence[int] | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-vectorization reference sweep (per-clock combine + power calls).

    Kept callable as the baseline the perf benchmark suite measures
    :func:`measure_sweep` against; results are identical.
    """
    freqs = np.asarray(
        core_freqs_mhz if core_freqs_mhz is not None else spec.core_freqs_mhz,
        dtype=float,
    )
    timing_model = TimingModel(spec)
    power_model = PowerModel(spec)
    mem = float(spec.default_mem_mhz)
    times = np.empty(freqs.shape)
    energies = np.empty(freqs.shape)
    for i, timing in enumerate(timing_model.sweep_scalar(kernel, freqs, mem)):
        power = float(
            power_model.power(
                freqs[i], mem, timing.core_power_utilization, timing.u_mem
            )
        )
        times[i] = timing.time_s
        energies[i] = power * timing.time_s
    return freqs, times, energies


def build_training_set(
    spec: GPUSpec,
    kernels: Sequence[KernelIR],
    core_freqs_mhz: Sequence[int] | None = None,
) -> TrainingSet:
    """Run training step ①–②: sweep every kernel, assemble the matrix."""
    if not kernels:
        raise ValidationError("training set needs at least one kernel")
    rows: list[np.ndarray] = []
    t_all: list[np.ndarray] = []
    e_all: list[np.ndarray] = []
    ids: list[np.ndarray] = []
    for kernel_id, kernel in enumerate(kernels):
        features = extract_features(kernel)
        freqs, times, energies = measure_sweep(spec, kernel, core_freqs_mhz)
        block = np.empty((freqs.size, len(DESIGN_COLUMNS)))
        block[:, :-1] = features
        block[:, -1] = freqs
        rows.append(block)
        t_all.append(times)
        e_all.append(energies)
        ids.append(np.full(freqs.size, kernel_id, dtype=int))
    X = np.vstack(rows)
    time_s = np.concatenate(t_all)
    energy_j = np.concatenate(e_all)
    return TrainingSet(
        X=X,
        time_s=time_s,
        energy_j=energy_j,
        edp_js=np.asarray(edp(energy_j, time_s)),
        ed2p_js2=np.asarray(ed2p(energy_j, time_s)),
        device_name=spec.name,
        kernel_ids=np.concatenate(ids),
    )


#: Factory signature for fresh estimators (one per target).
EstimatorFactory = Callable[[], Estimator]


#: Canonical GPU issue rates (ops per cycle) used to weight the static
#: instruction counts into a latency-proxy column. These are architectural
#: common knowledge (full-rate ALU, half-rate integer multiply, slow
#: dividers, quarter-rate SFU), not a peek at the simulated device's table.
_CANONICAL_RATES: tuple[float, ...] = (
    64.0,  # int_add
    32.0,  # int_mul
    4.0,   # int_div
    64.0,  # int_bw
    64.0,  # float_add
    64.0,  # float_mul
    8.0,   # float_div
    16.0,  # sf
    32.0,  # gl_access (issue slot only)
    32.0,  # loc_access
)


def expand_design(X: np.ndarray) -> np.ndarray:
    """Physically-motivated basis expansion of the raw ``(k, f)`` matrix.

    Kernel time behaves like ``cycles(k)/f`` and dynamic energy like
    ``cycles(k)·g(f)``, so alongside the raw columns we add ``1/f``,
    ``log f`` and the interaction blocks ``k·(1/f)`` and ``k·f``. Two
    derived columns expose the roofline position directly: a latency-
    weighted cycle proxy and the bytes-per-cycle ratio (memory accesses
    over weighted cycles) — without them tree models must rediscover
    compute- vs memory-boundedness from raw counts at every scale.

    The expansion is applied identically to every estimator family, so the
    §8.3 algorithm comparison stays fair.
    """
    if X.ndim != 2 or X.shape[1] != len(DESIGN_COLUMNS):
        raise ValidationError(
            f"raw design matrix must have {len(DESIGN_COLUMNS)} columns, "
            f"got {X.shape}"
        )
    k = X[:, :-1]
    f = X[:, -1:] / 1000.0  # MHz -> GHz scale
    inv_f = 1.0 / np.maximum(f, 1e-9)
    log_f = np.log(np.maximum(f, 1e-9))
    rates = np.asarray(_CANONICAL_RATES)
    cycles = (k / rates).sum(axis=1, keepdims=True)
    gl_index = FEATURE_NAMES.index("gl_access")
    intensity = k[:, gl_index : gl_index + 1] / np.maximum(cycles, 1e-12)
    return np.hstack(
        [k, f, inv_f, log_f, cycles, intensity, intensity * inv_f,
         k * inv_f, k * f]
    )


class EnergyModelBundle:
    """The four fitted single-target models (training step ③).

    The default factories follow Table 2's winners: linear regression for
    execution time and ED2P (near-monotone objectives), random forest for
    energy and EDP (objectives with interior optima).

    The models are trained on **normalized log shapes**: for each training
    kernel, each metric is divided by that kernel's value at the top of the
    frequency table before taking logs. Per-kernel magnitude (which spans
    many orders and carries no information about the *optimal clock*) is
    normalized away, so the estimators' full capacity goes to the frequency
    shape. Every target resolution of §5 — argmins, ES_x, PL_x — is
    invariant under per-kernel scaling, so shape prediction is exactly
    sufficient for the §6.2 frequency search; predicted curves are in
    units of "relative to this kernel at maximum clock".
    """

    def __init__(
        self,
        time_factory: EstimatorFactory | None = None,
        energy_factory: EstimatorFactory | None = None,
        edp_factory: EstimatorFactory | None = None,
        ed2p_factory: EstimatorFactory | None = None,
        seed: int = 11,
    ) -> None:
        forest = lambda: RandomForestRegressor(n_estimators=60, seed=seed)  # noqa: E731
        self._factories: dict[str, EstimatorFactory] = {
            "time": time_factory or LinearRegression,
            "energy": energy_factory or forest,
            "edp": edp_factory or forest,
            "ed2p": ed2p_factory or LinearRegression,
        }
        self.models_: dict[str, Estimator] | None = None
        self.device_name: str | None = None

    @staticmethod
    def _reference_values(training: TrainingSet, y: np.ndarray) -> np.ndarray:
        """Per-row reference: the row's kernel's metric at its top clock."""
        freqs = training.X[:, -1]
        reference = np.empty_like(y)
        for kernel_id in np.unique(training.kernel_ids):
            rows = training.kernel_ids == kernel_id
            top = np.flatnonzero(rows)[int(np.argmax(freqs[rows]))]
            reference[rows] = y[top]
        return reference

    def fit(self, training: TrainingSet) -> "EnergyModelBundle":
        """Fit all four models on a training set."""
        targets = {
            "time": training.time_s,
            "energy": training.energy_j,
            "edp": training.edp_js,
            "ed2p": training.ed2p_js2,
        }
        X = expand_design(training.X)
        self.models_ = {
            name: self._factories[name]().fit(
                X,
                np.log(
                    np.maximum(y, 1e-300)
                    / np.maximum(self._reference_values(training, y), 1e-300)
                ),
            )
            for name, y in targets.items()
        }
        self.device_name = training.device_name
        return self

    def _require_fitted(self) -> dict[str, Estimator]:
        if self.models_ is None:
            raise ValidationError("EnergyModelBundle is not fitted")
        return self.models_

    def refresh(
        self, window: TrainingSet, *, fraction: float = 0.5
    ) -> "EnergyModelBundle":
        """Refresh the fitted models from a recent measurement window.

        The adaptation path of the degradation ladder: ``window`` holds
        live per-launch measurements collected *after* a drift signal.
        Targets are normalized exactly like :meth:`fit` (per-kernel value
        at the window's top measured clock, then log). Estimators exposing
        an incremental ``refresh`` (the random forest) replace ``fraction``
        of their members; closed-form estimators are refitted on the
        window outright — both deterministic.
        """
        models = self._require_fitted()
        if window.device_name != self.device_name:
            raise ValidationError(
                "refresh window measured on a different device "
                f"({window.device_name!r} vs {self.device_name!r})"
            )
        targets = {
            "time": window.time_s,
            "energy": window.energy_j,
            "edp": window.edp_js,
            "ed2p": window.ed2p_js2,
        }
        X = expand_design(window.X)
        for name, y in targets.items():
            y_log = np.log(
                np.maximum(y, 1e-300)
                / np.maximum(self._reference_values(window, y), 1e-300)
            )
            model = models[name]
            refresh = getattr(model, "refresh", None)
            if callable(refresh):
                refresh(X, y_log, fraction=fraction)
            else:
                models[name] = self._factories[name]().fit(X, y_log)
        return self

    def predict_curves(
        self, kernel: KernelIR, core_freqs_mhz: Sequence[int] | np.ndarray
    ) -> dict[str, np.ndarray]:
        """Predict all four metrics across a frequency sweep for a kernel.

        Returns ``{"time", "energy", "edp", "ed2p"}`` arrays aligned with
        ``core_freqs_mhz`` — prediction step ④–⑤ of Fig. 6.
        """
        models = self._require_fitted()
        freqs = np.asarray(core_freqs_mhz, dtype=float)
        features = extract_features(kernel)
        P = np.empty((freqs.size, len(DESIGN_COLUMNS)))
        P[:, :-1] = features
        P[:, -1] = freqs
        Pe = expand_design(P)
        return {name: np.exp(model.predict(Pe)) for name, model in models.items()}
