"""Per-target frequency search (paper §6.2 step ⑥).

Given the four predicted metric curves for a kernel, resolve each energy
target to a concrete clock from the device's frequency table:

- MAX_PERF / MIN_ENERGY / MIN_EDP / MIN_ED2P minimize the corresponding
  predicted curve directly,
- ES_x / PL_x run their §5 selection rule on the predicted energy and time
  curves with the device default as the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError, ValidationError
from repro.core.models import EnergyModelBundle
from repro.core.sweepcache import CURVE_STATS, kernel_fingerprint
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget, TargetKind
from repro.obs.session import TraceSession, resolve_trace


class FrequencyPredictor:
    """Maps ``(kernel, target)`` to a predicted-optimal clock pair.

    Predicted metric curves are memoized per kernel fingerprint: one
    experiment run asks for the same kernel's curves once per energy
    target, and the curves depend only on the kernel's model inputs (the
    frequency table is fixed per predictor). Hits and misses are counted
    in :data:`repro.core.sweepcache.CURVE_STATS`.
    """

    def __init__(
        self,
        bundle: EnergyModelBundle,
        spec: GPUSpec,
        trace: TraceSession | None = None,
    ) -> None:
        self.bundle = bundle
        self.spec = spec
        self.trace = resolve_trace(trace)
        self._freqs = np.asarray(spec.core_freqs_mhz, dtype=float)
        self._default_index = int(
            np.argmin(np.abs(self._freqs - spec.default_core_mhz))
        )
        self._curve_memo: dict[str, dict[str, np.ndarray]] = {}
        # Per-kernel absolute scales (time s, energy J at the predicted
        # shape's reference point), installed by `calibrate`. Only needed
        # for DEADLINE targets; every §5 target is scale-invariant.
        self._scales: dict[str, tuple[float, float]] = {}

    def invalidate(self) -> None:
        """Drop memoized curves (call after the model bundle is refreshed).

        Calibration scales survive: they tie predicted shapes to measured
        magnitudes and stay meaningful across a model refresh.
        """
        self._curve_memo.clear()

    def calibrate(
        self, kernel: KernelIR, time_scale_s: float, energy_scale_j: float
    ) -> None:
        """Attach measured absolute scales to a kernel's predicted shapes.

        ``time_scale_s``/``energy_scale_j`` multiply the normalized curves
        into seconds/joules, enabling DEADLINE resolution. The adaptive
        controller derives them from live measurements.
        """
        if not (time_scale_s > 0.0 and energy_scale_j > 0.0):
            raise ValidationError(
                f"calibration scales must be positive "
                f"({time_scale_s!r}, {energy_scale_j!r})"
            )
        self._scales[kernel_fingerprint(kernel)] = (
            float(time_scale_s),
            float(energy_scale_j),
        )

    def is_calibrated(self, kernel: KernelIR) -> bool:
        """Whether absolute scales are attached for this kernel."""
        return kernel_fingerprint(kernel) in self._scales

    def _curves(self, kernel: KernelIR) -> dict[str, np.ndarray]:
        key = kernel_fingerprint(kernel)
        cached = self._curve_memo.get(key)
        if cached is not None:
            CURVE_STATS.hits += 1
            self.trace.count("predict.curve_hits")
            return cached
        CURVE_STATS.misses += 1
        self.trace.count("predict.curve_misses")
        curves = self.bundle.predict_curves(kernel, self._freqs)
        for arr in curves.values():
            arr.setflags(write=False)
        self._curve_memo[key] = curves
        return curves

    def metric_curves(self, kernel: KernelIR) -> dict[str, np.ndarray]:
        """Memoized predicted metric curves for ``kernel`` (read-only arrays).

        Keys ``{"time", "energy", "edp", "ed2p"}``, aligned with the
        device core-frequency table. The adaptive controller combines
        these shapes with its live calibration scales.
        """
        return self._curves(kernel)

    def predict_index(self, kernel: KernelIR, target: EnergyTarget) -> int:
        """Index into the device core-clock table realizing ``target``."""
        curves = self._curves(kernel)
        time = np.maximum(curves["time"], 1e-12)
        energy = np.maximum(curves["energy"], 1e-12)
        if target.kind is TargetKind.MIN_EDP:
            return int(np.argmin(curves["edp"]))
        if target.kind is TargetKind.MIN_ED2P:
            return int(np.argmin(curves["ed2p"]))
        if target.kind is TargetKind.DEADLINE:
            # Deadlines are absolute; predicted shapes need measured scales.
            scales = self._scales.get(kernel_fingerprint(kernel))
            if scales is None:
                raise ConfigurationError(
                    f"kernel {kernel.name!r}: DEADLINE targets need absolute "
                    "predicted time — calibrate() the predictor from a "
                    "measurement, or use the scale-free SLA_SLACK form"
                )
            time = time * scales[0]
            energy = energy * scales[1]
        # MAX_PERF, MIN_ENERGY, ES_x, PL_x and SLA_SLACK are invariant
        # under per-kernel scaling and resolve on the shapes directly.
        return target.resolve_index(self._freqs, time, energy, self._default_index)

    def predict_frequency(
        self, kernel: KernelIR, target: EnergyTarget
    ) -> tuple[int, int]:
        """Predicted-optimal ``(mem_mhz, core_mhz)`` for a kernel and target."""
        self.trace.count("predict.calls")
        idx = self.predict_index(kernel, target)
        return self.spec.default_mem_mhz, int(self.spec.core_freqs_mhz[idx])
