"""Per-target frequency search (paper §6.2 step ⑥).

Given the four predicted metric curves for a kernel, resolve each energy
target to a concrete clock from the device's frequency table:

- MAX_PERF / MIN_ENERGY / MIN_EDP / MIN_ED2P minimize the corresponding
  predicted curve directly,
- ES_x / PL_x run their §5 selection rule on the predicted energy and time
  curves with the device default as the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import EnergyModelBundle
from repro.core.sweepcache import CURVE_STATS, kernel_fingerprint
from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget, TargetKind
from repro.obs.session import TraceSession, resolve_trace


class FrequencyPredictor:
    """Maps ``(kernel, target)`` to a predicted-optimal clock pair.

    Predicted metric curves are memoized per kernel fingerprint: one
    experiment run asks for the same kernel's curves once per energy
    target, and the curves depend only on the kernel's model inputs (the
    frequency table is fixed per predictor). Hits and misses are counted
    in :data:`repro.core.sweepcache.CURVE_STATS`.
    """

    def __init__(
        self,
        bundle: EnergyModelBundle,
        spec: GPUSpec,
        trace: TraceSession | None = None,
    ) -> None:
        self.bundle = bundle
        self.spec = spec
        self.trace = resolve_trace(trace)
        self._freqs = np.asarray(spec.core_freqs_mhz, dtype=float)
        self._default_index = int(
            np.argmin(np.abs(self._freqs - spec.default_core_mhz))
        )
        self._curve_memo: dict[str, dict[str, np.ndarray]] = {}

    def _curves(self, kernel: KernelIR) -> dict[str, np.ndarray]:
        key = kernel_fingerprint(kernel)
        cached = self._curve_memo.get(key)
        if cached is not None:
            CURVE_STATS.hits += 1
            self.trace.count("predict.curve_hits")
            return cached
        CURVE_STATS.misses += 1
        self.trace.count("predict.curve_misses")
        curves = self.bundle.predict_curves(kernel, self._freqs)
        for arr in curves.values():
            arr.setflags(write=False)
        self._curve_memo[key] = curves
        return curves

    def predict_index(self, kernel: KernelIR, target: EnergyTarget) -> int:
        """Index into the device core-clock table realizing ``target``."""
        curves = self._curves(kernel)
        time = np.maximum(curves["time"], 1e-12)
        energy = np.maximum(curves["energy"], 1e-12)
        if target.kind is TargetKind.MIN_EDP:
            return int(np.argmin(curves["edp"]))
        if target.kind is TargetKind.MIN_ED2P:
            return int(np.argmin(curves["ed2p"]))
        # MAX_PERF, MIN_ENERGY, ES_x and PL_x resolve on time/energy curves.
        return target.resolve_index(self._freqs, time, energy, self._default_index)

    def predict_frequency(
        self, kernel: KernelIR, target: EnergyTarget
    ) -> tuple[int, int]:
        """Predicted-optimal ``(mem_mhz, core_mhz)`` for a kernel and target."""
        self.trace.count("predict.calls")
        idx = self.predict_index(kernel, target)
        return self.spec.default_mem_mhz, int(self.spec.core_freqs_mhz[idx])
