"""Energy profiling (paper §4.2).

Two granularities, both built on the sampled power sensor:

- *coarse-grained*: device energy over the queue's lifetime window (from
  queue construction to the query), capturing everything including idle
  gaps — the paper's fallback for applications with many tiny kernels,
- *fine-grained*: per-kernel energy over the kernel's event window, the
  profiling mode the per-kernel tuning relies on. Accuracy degrades for
  kernels shorter than a few sensor sampling periods (§4.4), which the
  simulation reproduces.

Resilience: a real power sensor drops samples. When a measurement window
contains no usable samples the profiler falls back to the analytic model
estimate (the same physics the predictor is trained on) and flags the
result as *degraded* — measurements keep flowing, but reports can tell
sensor-backed numbers from model-backed ones.
"""

from __future__ import annotations

from repro.common.errors import TransientError, ValidationError
from repro.hw.device import SimulatedGPU
from repro.hw.sensor import PowerSensor
from repro.obs.session import TraceSession, resolve_trace
from repro.sycl.event import Event


class EnergyProfiler:
    """Sensor-based energy accounting for one device."""

    def __init__(
        self,
        device: SimulatedGPU,
        sensor: PowerSensor | None = None,
        trace: TraceSession | None = None,
    ) -> None:
        self.device = device
        self.trace = resolve_trace(trace)
        self.sensor = sensor if sensor is not None else PowerSensor(device, trace=trace)
        #: Start of the coarse-grained window (queue construction time).
        self.window_start_s = device.clock.now
        #: Measurements served from the analytic fallback (sensor dropout).
        self.fallback_count: int = 0
        #: Whether any measurement so far was degraded.
        self.degraded: bool = False
        #: Coarse-grained queries over a zero-width window (no virtual time
        #: elapsed since the window opened): answered as 0 J by definition,
        #: without consulting the sensor.
        self.zero_width_windows: int = 0

    def kernel_energy(self, event: Event, *, true_value: bool = False) -> float:
        """Energy (J) attributed to one kernel event.

        ``true_value=True`` bypasses the sensor and integrates the analytic
        power timeline — the simulation-only ground truth used by the
        benchmark harness; the default is the realistic sampled estimate.
        """
        if event.device is not self.device:
            raise ValidationError("event belongs to a different device")
        event.wait()
        self.trace.count("profiler.kernel_measurements")
        if true_value:
            return self.device.energy_between(event.start_s, event.end_s)
        return self._measure(event.start_s, event.end_s)

    def device_energy(self, *, true_value: bool = False) -> float:
        """Energy (J) of the whole device since the profiling window opened.

        A query before any virtual time has passed (``now`` equals the
        window start) is a *zero-width window*: the answer is 0 J by
        definition, the sensor is never consulted (a width-0 read would
        degenerate to a single noisy sample), and the occurrence is
        counted in :attr:`zero_width_windows` / the
        ``profiler.zero_width_windows`` metric so reports can tell "no
        energy drawn" from "no time elapsed".
        """
        now = self.device.clock.now
        if now <= self.window_start_s:
            self.zero_width_windows += 1
            self.trace.count("profiler.zero_width_windows")
            return 0.0
        self.trace.count("profiler.device_measurements")
        if true_value:
            return self.device.energy_between(self.window_start_s, now)
        return self._measure(self.window_start_s, now)

    def window_energies(self, events, *, true_value: bool = False):
        """Energies (J) of many kernel events in one accounting pass.

        The batched counterpart of looping :meth:`kernel_energy`: waits
        once (to the latest event end), counts every measurement, and —
        for ``true_value`` queries — integrates all windows in a single
        vectorized pass over the power timeline
        (:meth:`SimulatedGPU.energy_between_many`). Sampled queries stay
        per-window: the sensor derives its noise seed from each window,
        so batching must not change which samples a window sees.
        """
        import numpy as np

        events = list(events)
        for event in events:
            if event.device is not self.device:
                raise ValidationError("event belongs to a different device")
        if not events:
            return np.zeros(0)
        latest = max(event.end_s for event in events)
        if self.device.clock.now < latest:
            self.device.clock.advance_to(latest)
        self.trace.count("profiler.kernel_measurements", len(events))
        if true_value:
            return self.device.energy_between_many(
                np.asarray([e.start_s for e in events], dtype=float),
                np.asarray([e.end_s for e in events], dtype=float),
            )
        return np.asarray(
            [self._measure(e.start_s, e.end_s) for e in events], dtype=float
        )

    def _measure(self, t0: float, t1: float) -> float:
        """Sensor estimate with analytic fallback on sample dropout."""
        try:
            return self.sensor.measure_energy(t0, t1)
        except TransientError as exc:
            self.fallback_count += 1
            self.degraded = True
            if self.trace.enabled:
                self.trace.count("profiler.fallbacks")
                self.trace.instant(
                    t1,
                    f"sensor{self.device.index}",
                    "profiler.fallback",
                    "analytic fallback",
                    t0=t0,
                    t1=t1,
                )
            injector = self.device.fault_injector
            if injector is not None:
                injector.log.record_recovery(
                    t1,
                    "hw.sensor_dropout",
                    self.device.index,
                    f"sensor window [{t0:.6f}, {t1:.6f}]s unusable ({exc}); "
                    "served analytic estimate (degraded)",
                )
            return self.device.energy_between(t0, t1)

    def reset_window(self) -> None:
        """Restart the coarse-grained window at the current virtual time."""
        self.window_start_s = self.device.clock.now


def fastpath_cache_report() -> dict[str, dict[str, float | int]]:
    """Hit/miss counters of the vectorized fast-path caches.

    Surfaces :func:`repro.core.sweepcache.cache_report` next to the energy
    profiling utilities so experiment drivers have one place to read
    measurement *and* measurement-avoidance statistics. Keys: ``"sweep"``
    (the keyed analytic sweep cache, with its current entry count) and
    ``"predict_curves"`` (the predictor-side curve memo).
    """
    from repro.core.sweepcache import cache_report

    return cache_report()
