"""``synergy::queue`` (paper §4, Listings 1–4).

:class:`SynergyQueue` extends the SYCL queue with:

- energy profiling: :meth:`kernel_energy_consumption` (fine-grained, per
  event) and :meth:`device_energy_consumption` (coarse-grained, queue
  lifetime window),
- frequency scaling: construction-time clocks
  (``SynergyQueue(1215, 210, gpu_selector_v)``), per-submission clocks
  (``q.submit(877, 1530, cgf)``), and per-kernel energy targets
  (``q.submit(MIN_EDP, cgf)``) resolved through the compiled frequency
  plan or a live predictor,
- all clock changes land *just before the kernel starts* and are skipped
  when redundant, with the §4.4 switch overhead charged otherwise.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError, ValidationError
from repro.core.compiler import FrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S, FrequencyScaler
from repro.core.predictor import FrequencyPredictor
from repro.core.profiling import EnergyProfiler
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget
from repro.obs.session import TraceSession, resolve_trace
from repro.sycl.event import Event
from repro.validate.inline import InlineValidator, resolve_validator
from repro.sycl.handler import Handler
from repro.sycl.queue import CommandGroupFn, Queue


class SynergyQueue(Queue):
    """A SYCL queue with energy capabilities.

    Construction forms::

        SynergyQueue(gpu_selector_v)                 # plain (Listing 1)
        SynergyQueue(1215, 210, gpu_selector_v)      # fixed clocks (Listing 2)

    Keyword-only extras: ``plan`` (compiled frequency plan), ``predictor``
    (live model inference for targets), ``switch_overhead_s``.
    """

    def __init__(
        self,
        *args,
        plan: FrequencyPlan | None = None,
        predictor: FrequencyPredictor | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
        trace: TraceSession | None = None,
        validate: InlineValidator | bool | None = None,
        owner: str | None = None,
    ) -> None:
        queue_clocks: tuple[int, int] | None = None
        if len(args) >= 2 and isinstance(args[0], int) and isinstance(args[1], int):
            mem_mhz, core_mhz = args[0], args[1]
            queue_clocks = (mem_mhz, core_mhz)
            selector_args = args[2:]
        else:
            selector_args = args
        if len(selector_args) > 1:
            raise ValidationError(
                "SynergyQueue accepts (selector), (mem, core) or "
                "(mem, core, selector)"
            )
        super().__init__(selector_args[0] if selector_args else None)

        self.plan = plan
        self.predictor = predictor
        #: Optional tenancy tag: when set (the service plane sets it to the
        #: tenant name), every ``queue.kernel`` span carries an ``owner``
        #: attribute so per-tenant energy can be attributed from traces.
        self.owner = owner
        self.trace = resolve_trace(trace)
        #: Opt-in inline invariant checks (no-op by default, like the trace).
        self.validator = resolve_validator(validate)
        self._track = f"gpu{self.device.gpu.index}"
        self.scaler = FrequencyScaler(
            self.device.gpu, switch_overhead_s=switch_overhead_s, trace=trace
        )
        self.profiler = EnergyProfiler(self.device.gpu, trace=trace)
        self._queue_clocks = queue_clocks
        if queue_clocks is not None:
            self.device.gpu.spec.validate_clocks(*queue_clocks)
        # Pending clock request consumed by _pre_kernel for one submission.
        self._pending: tuple[int, int] | EnergyTarget | None = None
        # Events whose requested clocks could not be applied (retry
        # exhaustion): their energy targets were best-effort only.
        self._degraded_events: set[Event] = set()
        self._pending_degraded = False

    # ------------------------------------------------------------ submission

    def submit(self, *args) -> Event:
        """Submit a command group, optionally with a target or clock pair.

        Forms: ``submit(cgf)``, ``submit(target, cgf)``,
        ``submit(mem_mhz, core_mhz, cgf)``.
        """
        if len(args) == 1:
            cgf = args[0]
            self._pending = None
        elif len(args) == 2 and isinstance(args[0], EnergyTarget):
            target, cgf = args
            self._pending = target
        elif (
            len(args) == 3
            and isinstance(args[0], int)
            and isinstance(args[1], int)
        ):
            mem_mhz, core_mhz, cgf = args
            # Validate at submit time, like the constructor does — an
            # invalid pair must not surface later inside _pre_kernel.
            self.device.gpu.spec.validate_clocks(mem_mhz, core_mhz)
            self._pending = (mem_mhz, core_mhz)
        else:
            raise ValidationError(
                "submit accepts (cgf), (EnergyTarget, cgf) or (mem, core, cgf)"
            )
        if not callable(cgf):
            raise ValidationError("command group must be callable")
        tr = self.trace
        try:
            if not tr.enabled:
                return super().submit(cgf)
            with tr.span(
                self.device.gpu.clock, self._track, "queue.submit", "submit"
            ) as sp:
                event = super().submit(cgf)
                if event.record is not None:
                    sp.set(kernel=event.record.kernel_name)
                return event
        finally:
            self._pending = None

    def submit_batch(self, requests) -> "BatchResult":
        """Submit a whole batch of kernels through the vectorized engine.

        ``requests`` is an iterable of submit-style items — a bare
        :class:`KernelIR`, ``(EnergyTarget, kernel)`` or
        ``(mem_mhz, core_mhz, kernel)`` — or an already-assembled
        :class:`~repro.engine.batch.KernelBatch`. Semantically equivalent
        to looping :meth:`submit` over the items (and validated to be, by
        ``repro-synergy validate --only engine``), but resolves clock
        plans, switch charges and per-event energy integration in
        broadcasted passes. ``submit_batch([])`` is a well-formed no-op.
        """
        from repro.engine.batch import KernelBatch
        from repro.engine.executor import execute_batch

        batch = (
            requests
            if isinstance(requests, KernelBatch)
            else KernelBatch.from_requests(requests)
        )
        return execute_batch(self, batch)

    def _pre_kernel(self, kernel: KernelIR) -> None:
        """Apply the frequency configuration just before the kernel starts."""
        tr = self.trace
        if not tr.enabled:
            self._apply_clocks(kernel)
            return
        with tr.span(
            self.device.gpu.clock, self._track, "queue.pre_kernel", kernel.name
        ) as sp:
            clocks = self._apply_clocks(kernel)
            sp.set(
                clocks=None if clocks is None else list(clocks),
                degraded=self._pending_degraded,
            )

    def _apply_clocks(self, kernel: KernelIR) -> tuple[int, int] | None:
        """Resolve and apply the pending clock request; None when there is none."""
        self._pending_degraded = False
        request = self._pending
        if isinstance(request, EnergyTarget):
            mem, core = self._resolve_target(kernel, request)
        elif isinstance(request, tuple):
            mem, core = request
        elif self._queue_clocks is not None:
            mem, core = self._queue_clocks
        else:
            return None
        self.scaler.set_frequency(mem, core)
        self._pending_degraded = self.scaler.last_degraded
        return mem, core

    def _post_kernel(self, kernel: KernelIR, event: Event) -> None:
        """Tag degraded events and record the kernel's execution window."""
        degraded = self._pending_degraded
        if degraded:
            self._degraded_events.add(event)
            self._pending_degraded = False
        if self.validator.enabled:
            self.validator.check_kernel_event(self.device.gpu, event)
        tr = self.trace
        if not tr.enabled or event.record is None:
            return
        record = event.record
        # ``owner`` rides along only when set, keeping ownerless traces
        # (and their golden snapshots) byte-identical.
        extra = {} if self.owner is None else {"owner": self.owner}
        tr.add_span(
            self._track,
            "queue.kernel",
            kernel.name,
            event.start_s,
            event.end_s,
            core_mhz=record.core_mhz,
            mem_mhz=record.mem_mhz,
            energy_j=record.energy_j,
            degraded=degraded,
            **extra,
        )
        tr.count("queue.kernels_executed")
        tr.observe("kernel.time_s", record.time_s)
        tr.observe("kernel.energy_j", record.energy_j)

    def _resolve_target(
        self, kernel: KernelIR, target: EnergyTarget
    ) -> tuple[int, int]:
        if self.plan is not None and self.plan.has(kernel.name, target):
            self.trace.count("predict.plan_lookups")
            return self.plan.lookup(kernel.name, target)
        if self.predictor is not None:
            tr = self.trace
            if not tr.enabled:
                return self.predictor.predict_frequency(kernel, target)
            with tr.span(
                self.device.gpu.clock,
                self._track,
                "predict",
                kernel.name,
                target=target.name,
            ) as sp:
                mem, core = self.predictor.predict_frequency(kernel, target)
                sp.set(mem_mhz=mem, core_mhz=core)
                return mem, core
        raise ConfigurationError(
            f"kernel {kernel.name!r} submitted with target {target.name} but "
            "the queue has neither a compiled frequency plan nor a predictor"
        )

    # ------------------------------------------------------------- profiling

    def kernel_energy_consumption(
        self, event: Event, *, true_value: bool = False
    ) -> float:
        """Fine-grained energy (J) of one kernel event (§4.2)."""
        return self.profiler.kernel_energy(event, true_value=true_value)

    def device_energy_consumption(self, *, true_value: bool = False) -> float:
        """Coarse-grained device energy (J) since queue construction (§4.2)."""
        self.wait()
        return self.profiler.device_energy(true_value=true_value)

    # --------------------------------------------------------------- control

    def kernel_stats(self) -> list[dict[str, float | str]]:
        """Per-kernel execution statistics, in submission order.

        One row per event: kernel name, applied clocks, wall time and true
        energy — the raw material of a per-kernel tuning report. The
        ``degraded`` flag marks kernels whose requested clocks could not be
        applied (clock-set retry exhaustion): their energy target was
        best-effort only.
        """
        rows: list[dict[str, float | str]] = []
        for event in self.events:
            record = event.record
            if record is None:
                continue
            rows.append(
                {
                    "kernel": record.kernel_name,
                    "core_mhz": record.core_mhz,
                    "mem_mhz": record.mem_mhz,
                    "time_s": record.time_s,
                    "energy_j": record.energy_j,
                    "avg_power_w": record.avg_power_w,
                    "degraded": event in self._degraded_events,
                }
            )
        return rows

    def summary(self) -> dict[str, float]:
        """Aggregate queue statistics: totals plus switch-overhead cost."""
        stats = self.kernel_stats()
        return {
            "kernels": float(len(stats)),
            "kernel_time_s": float(sum(r["time_s"] for r in stats)),
            "kernel_energy_j": float(sum(r["energy_j"] for r in stats)),
            "clock_switches": float(self.scaler.switch_count),
            "switch_overhead_s": self.scaler.total_overhead_s,
            "clock_retries": float(self.scaler.retry_count),
            "degraded_kernels": float(sum(bool(r["degraded"]) for r in stats)),
        }

    def set_frequency(self, mem_mhz: int, core_mhz: int) -> None:
        """Manually pin clocks for subsequent submissions."""
        self._queue_clocks = (mem_mhz, core_mhz)
        self.scaler.set_frequency(mem_mhz, core_mhz)

    def reset_frequency(self) -> None:
        """Drop any pinned clocks and restore driver defaults."""
        self._queue_clocks = None
        self.scaler.reset()
