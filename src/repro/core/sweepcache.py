"""Keyed cache for analytic frequency sweeps and predicted metric curves.

Characterization, accuracy analysis, weak scaling and training-set
construction all re-measure identical ``(device, kernel, frequency-table)``
sweeps — and the analytic sweep is a pure function of exactly those three
inputs. Entries are keyed on content fingerprints:

- **device spec fingerprint** — every physical field of the
  :class:`~repro.hw.specs.GPUSpec` (catalog constants included), so two
  structurally identical specs share entries while any model-parameter
  tweak misses,
- **kernel fingerprint** — the instruction mix, launch geometry, word size
  and locality; deliberately *not* the kernel name, so per-iteration
  renames (``kernel.with_name``) still hit,
- **frequency-table hash** — the exact clock values swept.

Cached arrays are frozen (``writeable=False``) and shared by reference;
hit/miss counters are surfaced through
:func:`repro.core.profiling.fastpath_cache_report` and the
``repro-synergy perf`` report. Set ``REPRO_SWEEP_CACHE=0`` to disable the
global cache.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.hw.specs import GPUSpec
from repro.kernelir.kernel import KernelIR

#: Environment knob: "0" disables the process-global sweep cache.
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"


def _digest(*parts: object) -> str:
    payload = "\x1f".join(repr(p) for p in parts).encode()
    return hashlib.sha256(payload).hexdigest()


#: Fingerprint memos keyed by object identity. The object itself is pinned
#: in the value, so an id cannot be reused while its entry exists; the
#: kernel memo is LRU-bounded because experiment runs mint many transient
#: kernels (e.g. per-iteration renames).
_SPEC_FP_MEMO: dict[int, tuple[GPUSpec, str]] = {}
_KERNEL_FP_MEMO: "OrderedDict[int, tuple[KernelIR, str]]" = OrderedDict()
_KERNEL_FP_MEMO_MAX = 4096


def spec_fingerprint(spec: GPUSpec) -> str:
    """Content hash of every model-relevant field of a device spec."""
    entry = _SPEC_FP_MEMO.get(id(spec))
    if entry is not None and entry[0] is spec:
        return entry[1]
    fp = _spec_fingerprint_uncached(spec)
    _SPEC_FP_MEMO[id(spec)] = (spec, fp)
    return fp


def _spec_fingerprint_uncached(spec: GPUSpec) -> str:
    return _digest(
        "spec",
        spec.name,
        spec.vendor,
        spec.compute_units,
        tuple(spec.core_freqs_mhz),
        tuple(spec.mem_freqs_mhz),
        spec.default_core_mhz,
        spec.default_mem_mhz,
        spec.peak_bandwidth_gbs,
        spec.idle_power_w,
        spec.core_power_w,
        spec.mem_power_w,
        spec.v_min,
        spec.v_max,
        spec.v_gamma,
        spec.bw_knee,
        spec.launch_overhead_s,
        spec.pcie_bandwidth_gbs,
        tuple(sorted(spec.throughput.items())),
    )


def kernel_fingerprint(kernel: KernelIR) -> str:
    """Content hash of a kernel's model inputs (name excluded by design)."""
    entry = _KERNEL_FP_MEMO.get(id(kernel))
    if entry is not None and entry[0] is kernel:
        _KERNEL_FP_MEMO.move_to_end(id(kernel))
        return entry[1]
    fp = _digest(
        "kernel",
        tuple(sorted(kernel.mix.as_dict().items())),
        kernel.work_items,
        kernel.word_bytes,
        kernel.locality,
    )
    _KERNEL_FP_MEMO[id(kernel)] = (kernel, fp)
    while len(_KERNEL_FP_MEMO) > _KERNEL_FP_MEMO_MAX:
        _KERNEL_FP_MEMO.popitem(last=False)
    return fp


def freq_fingerprint(freqs_mhz: np.ndarray) -> str:
    """Content hash of a frequency table."""
    arr = np.ascontiguousarray(np.asarray(freqs_mhz, dtype=float))
    return hashlib.sha256(b"freqs\x1f" + arr.tobytes()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache domain."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


def _freeze(value):
    """Mark every ndarray inside a cached value read-only."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _freeze(item)
    elif isinstance(value, dict):
        for item in value.values():
            _freeze(item)
    return value


@dataclass
class SweepCache:
    """Thread-safe LRU cache for deterministic sweep results."""

    max_entries: int = 2048
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        self.stats.reset()

    def get_or_compute(self, key: tuple, compute: Callable[[], object]):
        """Return the cached value for ``key``, computing it on first use.

        The computation runs outside the lock (it is deterministic, so a
        rare duplicate computation under contention is harmless); cached
        arrays are frozen so shared results cannot be mutated in place.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = _freeze(compute())
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def sweep_key(
        self, spec: GPUSpec, kernel: KernelIR, freqs_mhz: np.ndarray
    ) -> tuple:
        return (
            "sweep",
            spec_fingerprint(spec),
            kernel_fingerprint(kernel),
            freq_fingerprint(freqs_mhz),
        )

    def sweep2d_key(
        self,
        spec: GPUSpec,
        kernel: KernelIR,
        core_mhz: np.ndarray,
        mem_mhz: np.ndarray,
    ) -> tuple:
        return (
            "sweep2d",
            spec_fingerprint(spec),
            kernel_fingerprint(kernel),
            freq_fingerprint(core_mhz),
            freq_fingerprint(mem_mhz),
        )

    def engine_key(
        self,
        spec: GPUSpec,
        kernel: KernelIR,
        core_mhz: np.ndarray,
        mem_mhz: float,
    ) -> tuple:
        """Key for the batched engine's per-kernel operating-point tables.

        One entry per ``(device, kernel, core table, memory clock)``: the
        engine gathers per-submission timing/power columns from these
        tables, so repeated batches over the same kernel mix hit instead
        of re-sweeping.
        """
        return (
            "engine-op",
            spec_fingerprint(spec),
            kernel_fingerprint(kernel),
            freq_fingerprint(core_mhz),
            float(mem_mhz),
        )


#: Process-global cache instance shared by all sweep call sites.
_GLOBAL_CACHE = SweepCache()

#: Counters for the predictor-side memoized curve predictions.
CURVE_STATS = CacheStats()


def default_sweep_cache() -> SweepCache:
    """The process-global sweep cache."""
    return _GLOBAL_CACHE


def cache_enabled() -> bool:
    """Whether the global cache participates (``REPRO_SWEEP_CACHE`` != 0)."""
    return os.environ.get(CACHE_ENV_VAR, "1").strip() != "0"


def resolve_cache(cache: "bool | SweepCache | None") -> SweepCache | None:
    """Map a call-site ``cache`` argument onto an actual cache (or None).

    ``None`` → the global cache when enabled; ``True`` → the global cache
    unconditionally; ``False`` → no caching; a :class:`SweepCache` → that
    instance.
    """
    if isinstance(cache, SweepCache):
        return cache
    if cache is None:
        return _GLOBAL_CACHE if cache_enabled() else None
    return _GLOBAL_CACHE if cache else None


def reset_caches() -> None:
    """Clear the global sweep cache and all counters (test hook)."""
    _GLOBAL_CACHE.clear()
    CURVE_STATS.reset()


def cache_report() -> dict[str, dict[str, float | int]]:
    """Hit/miss counters of all fast-path caches."""
    sweep = dict(_GLOBAL_CACHE.stats.as_dict())
    sweep["entries"] = len(_GLOBAL_CACHE)
    return {"sweep": sweep, "predict_curves": dict(CURVE_STATS.as_dict())}


@contextlib.contextmanager
def scoped_cache(max_entries: int = 2048) -> Iterator[SweepCache]:
    """Run a block against a fresh global cache and curve counters.

    Deterministic replays (the golden-trace scenarios) need cache *state*
    to be part of the run's inputs: a second same-seed run in a warm
    process would otherwise see different hit/miss counts than the first.
    Inside the block the process-global sweep cache is swapped for an
    empty one and ``CURVE_STATS`` is zeroed; both are restored on exit.

    Not thread-safe: the swap is process-global by design (call sites
    reach the cache through module state, not parameters).
    """
    global _GLOBAL_CACHE
    prev_cache = _GLOBAL_CACHE
    prev_stats = (CURVE_STATS.hits, CURVE_STATS.misses)
    _GLOBAL_CACHE = SweepCache(max_entries=max_entries)
    CURVE_STATS.reset()
    try:
        yield _GLOBAL_CACHE
    finally:
        _GLOBAL_CACHE = prev_cache
        CURVE_STATS.hits, CURVE_STATS.misses = prev_stats
