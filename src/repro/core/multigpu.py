"""Multi-GPU single-node execution (Celerity-inspired, paper §4).

The SYnergy API is "inspired by the SYCL extension Celerity", which splits
work transparently across accelerators. :class:`MultiGpuSynergyQueue`
provides the single-node version of that idea: one logical queue over all
the node's boards, splitting each ``parallel_for`` range evenly, applying
the same per-kernel energy target on every board, and aggregating energy
across them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.core.compiler import FrequencyPlan
from repro.core.frequency import DEFAULT_SWITCH_OVERHEAD_S
from repro.core.predictor import FrequencyPredictor
from repro.core.queue import SynergyQueue
from repro.hw.device import SimulatedGPU
from repro.kernelir.kernel import KernelIR
from repro.metrics.targets import EnergyTarget
from repro.sycl.event import Event


@dataclass(frozen=True)
class DistributedEvent:
    """Completion handle covering one kernel's per-device sub-launches."""

    kernel_name: str
    events: tuple[Event, ...]

    def wait(self) -> None:
        """Wait for every sub-launch."""
        for event in self.events:
            event.wait()

    @property
    def end_s(self) -> float:
        """Completion time of the slowest sub-launch."""
        return max(e.end_s for e in self.events)

    @property
    def time_s(self) -> float:
        """Distributed wall time: earliest start to latest end."""
        return self.end_s - min(e.start_s for e in self.events)

    @property
    def energy_j(self) -> float:
        """True energy summed over the sub-launches."""
        return sum(e.record.energy_j for e in self.events if e.record)


class MultiGpuSynergyQueue:
    """A logical SYnergy queue spanning several boards of one node."""

    def __init__(
        self,
        gpus: list[SimulatedGPU],
        plan: FrequencyPlan | None = None,
        predictor: FrequencyPredictor | None = None,
        switch_overhead_s: float = DEFAULT_SWITCH_OVERHEAD_S,
    ) -> None:
        if not gpus:
            raise ValidationError("multi-GPU queue needs at least one device")
        self.queues = [
            SynergyQueue(
                gpu,
                plan=plan,
                predictor=predictor,
                switch_overhead_s=switch_overhead_s,
            )
            for gpu in gpus
        ]

    @property
    def n_devices(self) -> int:
        """Number of boards behind the logical queue."""
        return len(self.queues)

    def parallel_for(
        self, size: int, kernel: KernelIR, target: EnergyTarget | None = None
    ) -> DistributedEvent:
        """Launch a kernel split evenly across all devices.

        The last device absorbs the remainder of a non-divisible range.
        Each sub-launch carries the energy target (when given), so every
        board independently applies the kernel's compiled clocks.
        """
        if size < self.n_devices:
            raise ValidationError(
                f"range {size} smaller than device count {self.n_devices}"
            )
        share = size // self.n_devices
        events = []
        for i, queue in enumerate(self.queues):
            local = share if i < self.n_devices - 1 else size - share * i
            if target is None:
                event = queue.submit(lambda h, n=local: h.parallel_for(n, kernel))
            else:
                event = queue.submit(
                    target, lambda h, n=local: h.parallel_for(n, kernel)
                )
            events.append(event)
        return DistributedEvent(kernel_name=kernel.name, events=tuple(events))

    def wait(self) -> None:
        """Drain every device and synchronize their clocks to the slowest."""
        for queue in self.queues:
            queue.wait()
        horizon = max(q.gpu.clock.now for q in self.queues)
        for queue in self.queues:
            if queue.gpu.clock.now < horizon:
                queue.gpu.clock.advance_to(horizon)

    def device_energy_consumption(self, *, true_value: bool = True) -> float:
        """Aggregate device energy since the queue was built."""
        self.wait()
        return sum(
            q.profiler.device_energy(true_value=true_value) for q in self.queues
        )

    def reset_frequency(self) -> None:
        """Restore default clocks on all boards."""
        for queue in self.queues:
            queue.reset_frequency()
